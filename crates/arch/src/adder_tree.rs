//! The CSD-based adder tree.
//!
//! A conventional digital-PIM adder tree sums same-weighted bit products. In
//! DB-PIM the products arriving from the compartments carry *randomly
//! distributed* significances: each occupied cell's contribution must first
//! be shifted by its dyadic-block index (from the metadata RF), selected
//! between the block's high/low position (from the `O_Q`/`O_Q̄` pair) and
//! negated when the stored digit is `1̄`. Only then can the tree accumulate
//! across compartments. This module models that reduction bit-accurately.

use dbpim_csd::Sign;
use serde::{Deserialize, Serialize};

use crate::lpu::LpuOutput;

/// Metadata attached to one occupied cell, as held in the metadata register
/// file: the dyadic-block index (two bits for the paper's INT8 layout,
/// `OperandWidth::index_bits` in general) and the digit sign (one bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellMeta {
    /// Dyadic-block index (`0..=3` at INT8, up to `0..=7` at INT16). The
    /// reduction shifts by `2 * db_index (+ 1)`, so the tree's precision
    /// follows the operand width automatically.
    pub db_index: u8,
    /// Sign of the stored non-zero digit.
    pub sign: Sign,
}

impl CellMeta {
    /// Creates cell metadata.
    #[must_use]
    pub fn new(db_index: u8, sign: Sign) -> Self {
        Self { db_index, sign }
    }
}

/// Per-cycle statistics of one adder-tree reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdderTreeStats {
    /// Number of (cell, input-bit) products examined.
    pub operands: usize,
    /// Number of operands that actually contributed a non-zero value.
    pub effective_operands: usize,
}

/// The CSD-based adder tree of one filter column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CsdAdderTree;

impl CsdAdderTree {
    /// Reduces one cycle's LPU outputs into a signed partial sum.
    ///
    /// `operands` carries, per contributing cell, the LPU output pair, the
    /// cell's metadata and whether the cell is occupied (padded slots pass
    /// `None` metadata and are ignored).
    #[must_use]
    pub fn reduce(self, operands: &[(LpuOutput, Option<CellMeta>)]) -> (i32, AdderTreeStats) {
        let mut sum = 0i32;
        let mut stats = AdderTreeStats { operands: operands.len(), effective_operands: 0 };
        for (out, meta) in operands {
            let Some(meta) = meta else { continue };
            let magnitude = i32::from(out.o_q) << (2 * u32::from(meta.db_index) + 1)
                | i32::from(out.o_q_bar) << (2 * u32::from(meta.db_index));
            if magnitude != 0 {
                stats.effective_operands += 1;
            }
            sum += meta.sign.factor() * magnitude;
        }
        (sum, stats)
    }

    /// Reduces a dense (baseline) cycle: every operand is an unsigned weight
    /// bit of significance `bit_position`, except the most significant bit of
    /// a two's-complement weight which carries negative weight.
    #[must_use]
    pub fn reduce_dense(
        self,
        products: &[bool],
        bit_position: u32,
        signed_msb: bool,
    ) -> (i32, AdderTreeStats) {
        let ones = products.iter().filter(|&&p| p).count() as i32;
        let magnitude = ones << bit_position;
        let stats = AdderTreeStats { operands: products.len(), effective_operands: ones as usize };
        (if signed_msb { -magnitude } else { magnitude }, stats)
    }

    /// Word-packed reduction of one `(filter, row)` pair against a packed
    /// input mask.
    ///
    /// `sign_planes` holds `2 × words` words per CSD shift amount `k`,
    /// positive plane first: bit `c` of plane `(k, sign)` is set when
    /// compartment `c` holds an occupied cell contributing `sign · 2^k` (see
    /// the bit-plane layout in [`PimMacro`](crate::PimMacro)). The mask may
    /// carry fewer words than `words` for a ragged final row group; missing
    /// words are all-zero by construction.
    ///
    /// Returns the signed partial sum `Σ_k (popcount(mask ∧ pos_k) −
    /// popcount(mask ∧ neg_k)) · 2^k` together with the number of effective
    /// cell operations (every AND survivor), exactly the values the
    /// cell-at-a-time [`reduce`](Self::reduce) accumulates one operand at a
    /// time.
    #[must_use]
    pub fn reduce_planes(self, mask: &[u64], sign_planes: &[u64], words: usize) -> (i32, u64) {
        debug_assert!(words > 0 && sign_planes.len().is_multiple_of(2 * words));
        let mut sum = 0i32;
        let mut effective = 0u64;
        for (k, pair) in sign_planes.chunks_exact(2 * words).enumerate() {
            let (pos, neg) = pair.split_at(words);
            let mut ones_pos = 0u32;
            let mut ones_neg = 0u32;
            for (w, &m) in mask.iter().enumerate().take(words) {
                ones_pos += (m & pos[w]).count_ones();
                ones_neg += (m & neg[w]).count_ones();
            }
            sum += (ones_pos as i32 - ones_neg as i32) << k;
            effective += u64::from(ones_pos + ones_neg);
        }
        (sum, effective)
    }

    /// Word-packed dense reduction of one `(filter, row)` pair: one plane of
    /// `words` words per weight bit, least significant first, the last plane
    /// being the negatively weighted two's-complement MSB.
    ///
    /// Returns the signed partial sum and the effective cell operations, the
    /// values [`reduce_dense`](Self::reduce_dense) produces per bit.
    #[must_use]
    pub fn reduce_dense_planes(self, mask: &[u64], bit_planes: &[u64], words: usize) -> (i32, u64) {
        debug_assert!(words > 0 && bit_planes.len().is_multiple_of(words));
        let bits = bit_planes.len() / words;
        let mut sum = 0i32;
        let mut effective = 0u64;
        for (b, plane) in bit_planes.chunks_exact(words).enumerate() {
            let mut ones = 0u32;
            for (w, &m) in mask.iter().enumerate().take(words) {
                ones += (m & plane[w]).count_ones();
            }
            let magnitude = (ones as i32) << b;
            sum += if b == bits - 1 { -magnitude } else { magnitude };
            effective += u64::from(ones);
        }
        (sum, effective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(o_q: bool, o_q_bar: bool) -> LpuOutput {
        LpuOutput { o_q, o_q_bar }
    }

    #[test]
    fn paper_example_sums_correctly() {
        // Section 3.3's example: f0(0) = 0001_0000 (CSD, +16, DB#2 low) and
        // f0(1) = 1000_0000 (CSD, +128 as -? no: +2^7, DB#3 high). With both
        // inputs equal to 1 the sum must be 16 + 128 = 144, not the naive 11b.
        let tree = CsdAdderTree;
        let operands = [
            (out(false, true), Some(CellMeta::new(2, Sign::Positive))), // low digit of DB#2 -> 2^4
            (out(true, false), Some(CellMeta::new(3, Sign::Positive))), // high digit of DB#3 -> 2^7
        ];
        let (sum, stats) = tree.reduce(&operands);
        assert_eq!(sum, 16 + 128);
        assert_eq!(stats.effective_operands, 2);
        assert_eq!(stats.operands, 2);
    }

    #[test]
    fn negative_digits_subtract() {
        let tree = CsdAdderTree;
        let operands = [
            (out(true, false), Some(CellMeta::new(0, Sign::Negative))), // -2
            (out(false, true), Some(CellMeta::new(1, Sign::Positive))), // +4
        ];
        let (sum, _) = tree.reduce(&operands);
        assert_eq!(sum, 2);
    }

    #[test]
    fn padded_and_idle_operands_are_ignored() {
        let tree = CsdAdderTree;
        let operands = [
            (out(false, false), Some(CellMeta::new(3, Sign::Positive))), // input bit was 0
            (out(true, false), None),                                    // padded slot
        ];
        let (sum, stats) = tree.reduce(&operands);
        assert_eq!(sum, 0);
        assert_eq!(stats.effective_operands, 0);
    }

    #[test]
    fn dense_reduction_counts_ones_with_shift_and_sign() {
        let tree = CsdAdderTree;
        let (sum, stats) = tree.reduce_dense(&[true, false, true, true], 3, false);
        assert_eq!(sum, 3 << 3);
        assert_eq!(stats.effective_operands, 3);
        let (sum, _) = tree.reduce_dense(&[true, true], 7, true);
        assert_eq!(sum, -(2 << 7));
    }

    #[test]
    fn empty_reduction_is_zero() {
        let tree = CsdAdderTree;
        let (sum, stats) = tree.reduce(&[]);
        assert_eq!(sum, 0);
        assert_eq!(stats.operands, 0);
    }

    #[test]
    fn packed_reduction_matches_the_scalar_reduce() {
        // Three compartments holding cells of shift 1 (+), 4 (−) and 1 (+);
        // input mask selects compartments 0 and 2.
        let tree = CsdAdderTree;
        let words = 1usize;
        let shifts = 6usize;
        let mut planes = vec![0u64; shifts * 2 * words];
        planes[2 * words] |= 1; // k=1, positive, compartment 0
        planes[2 * 4 * words + words] |= 1 << 1; // k=4, negative, compartment 1
        planes[2 * words] |= 1 << 2; // k=1, positive, compartment 2
        let (sum, effective) = tree.reduce_planes(&[0b101u64], &planes, words);
        assert_eq!(sum, 2 + 2);
        assert_eq!(effective, 2);
        // All three selected: the negative cell now contributes −16.
        let (sum, effective) = tree.reduce_planes(&[0b111u64], &planes, words);
        assert_eq!(sum, 2 + 2 - 16);
        assert_eq!(effective, 3);
    }

    #[test]
    fn packed_reduction_spans_word_boundaries() {
        // Compartment 70 lives in the second mask word.
        let tree = CsdAdderTree;
        let words = 2usize;
        let mut planes = vec![0u64; 2 * words]; // single shift k=0
        planes[1] |= 1 << (70 - 64); // k=0, positive, compartment 70
        let (sum, effective) = tree.reduce_planes(&[0, 1 << (70 - 64)], &planes, words);
        assert_eq!((sum, effective), (1, 1));
        // A short (ragged) mask leaves the second word unselected.
        let (sum, effective) = tree.reduce_planes(&[u64::MAX], &planes, words);
        assert_eq!((sum, effective), (0, 0));
    }

    #[test]
    fn packed_dense_reduction_matches_reduce_dense() {
        let tree = CsdAdderTree;
        let words = 1usize;
        // 4-bit planes; compartments 0 and 1 both store weight bits {0, 3}.
        let planes = vec![0b11u64, 0, 0, 0b11u64];
        let mask = [0b11u64];
        let (sum, effective) = tree.reduce_dense_planes(&mask, &planes, words);
        // Per compartment: +1 (bit 0) − 8 (signed MSB) = −7, twice.
        assert_eq!(sum, -14);
        assert_eq!(effective, 4);
        let (scalar_bit0, _) = tree.reduce_dense(&[true, true], 0, false);
        let (scalar_bit3, _) = tree.reduce_dense(&[true, true], 3, true);
        assert_eq!(sum, scalar_bit0 + scalar_bit3);
    }
}
