//! Access-tracked on-chip buffer and register-file models.
//!
//! The performance simulator charges energy per byte moved in and out of the
//! feature, weight, metadata and instruction buffers. This module provides a
//! minimal capacity-checked buffer model that counts those accesses.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// An access-counting on-chip buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackedBuffer {
    name: String,
    capacity_bytes: usize,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl TrackedBuffer {
    /// Creates a buffer with the given name and capacity.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity_bytes: usize) -> Self {
        Self {
            name: name.into(),
            capacity_bytes,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// The buffer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Records a read of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BufferOverflow`] when a single access exceeds the
    /// buffer capacity (the working set cannot possibly be resident).
    pub fn read(&mut self, bytes: usize) -> Result<(), ArchError> {
        self.check(bytes)?;
        self.reads += 1;
        self.bytes_read += bytes as u64;
        Ok(())
    }

    /// Records a write of `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::BufferOverflow`] when a single access exceeds the
    /// buffer capacity.
    pub fn write(&mut self, bytes: usize) -> Result<(), ArchError> {
        self.check(bytes)?;
        self.writes += 1;
        self.bytes_written += bytes as u64;
        Ok(())
    }

    fn check(&self, bytes: usize) -> Result<(), ArchError> {
        if bytes > self.capacity_bytes {
            return Err(ArchError::BufferOverflow {
                buffer: self.name.clone(),
                requested: bytes,
                capacity: self.capacity_bytes,
            });
        }
        Ok(())
    }

    /// Number of read transactions.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes read.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes moved (read + written).
    #[must_use]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut b = TrackedBuffer::new("feature", 1024);
        b.read(100).unwrap();
        b.read(24).unwrap();
        b.write(512).unwrap();
        assert_eq!(b.reads(), 2);
        assert_eq!(b.writes(), 1);
        assert_eq!(b.bytes_read(), 124);
        assert_eq!(b.bytes_written(), 512);
        assert_eq!(b.bytes_total(), 636);
        assert_eq!(b.name(), "feature");
        assert_eq!(b.capacity_bytes(), 1024);
        b.reset();
        assert_eq!(b.bytes_total(), 0);
    }

    #[test]
    fn oversized_accesses_are_rejected() {
        let mut b = TrackedBuffer::new("weight", 16);
        assert!(b.read(17).is_err());
        assert!(b.write(1024).is_err());
        assert_eq!(b.reads(), 0);
    }
}
