//! The 6T SRAM bit-cell and its cross-coupled complementary pair.
//!
//! The key observation of the paper: a 6T cell natively holds two
//! complementary node voltages `Q` and `Q̄`. DB-PIM stores one Complementary
//! Pattern block per cell — the cell value selects which of the block's two
//! digit positions carries the non-zero digit — and reads both nodes through
//! the local processing unit, turning one cell into two usable compute bits.

use serde::{Deserialize, Serialize};

/// One 6T SRAM cell. `q == true` stores the pattern whose non-zero digit sits
/// in the dyadic block's *high* position; `q == false` stores the low
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SixTCell {
    q: bool,
}

impl SixTCell {
    /// Creates a cell storing the given `Q` value.
    #[must_use]
    pub fn new(q: bool) -> Self {
        Self { q }
    }

    /// The `Q` node value.
    #[must_use]
    pub fn q(&self) -> bool {
        self.q
    }

    /// The complementary `Q̄` node value.
    #[must_use]
    pub fn q_bar(&self) -> bool {
        !self.q
    }

    /// Writes a new value through the word line.
    pub fn write(&mut self, q: bool) {
        self.q = q;
    }

    /// Reads both complementary nodes (the state a DBMU's LPU multiplies
    /// against the broadcast input bit).
    #[must_use]
    pub fn read_pair(&self) -> (bool, bool) {
        (self.q, !self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_always_complementary() {
        for q in [false, true] {
            let cell = SixTCell::new(q);
            assert_eq!(cell.q(), q);
            assert_eq!(cell.q_bar(), !q);
            let (a, b) = cell.read_pair();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn write_flips_both_nodes() {
        let mut cell = SixTCell::default();
        assert!(!cell.q());
        cell.write(true);
        assert!(cell.q());
        assert!(!cell.q_bar());
    }
}
