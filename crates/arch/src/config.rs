//! Architecture geometry and clocking parameters.
//!
//! The defaults reproduce Section 4.1 of the paper: four 16 Kb PIM macros at
//! 500 MHz in 28 nm, a 128 KB feature buffer, 16 KB instruction buffer, 32 KB
//! weight buffer, 96 KB meta buffer and four 6 KB metadata register files.

use dbpim_csd::OperandWidth;
use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// Number of dyadic blocks per INT8 weight (8 digits / 2 digits per block);
/// the `OperandWidth::Int8` instance of [`OperandWidth::blocks`].
pub const BLOCKS_PER_WEIGHT: usize = OperandWidth::Int8.blocks();
/// Bit width of the paper's 8b/8b evaluation. Input features are always
/// streamed at this width; weight widths vary per [`OperandWidth`].
pub const OPERAND_BITS: usize = OperandWidth::Int8.bits() as usize;

/// Geometry and clocking of the DB-PIM accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Number of PIM macros in the PIM core.
    pub macros: usize,
    /// Compartments per macro; each compartment receives one broadcast input
    /// feature per cycle.
    pub compartments_per_macro: usize,
    /// DBMU columns per compartment; filters share these columns
    /// (`φ_th` cells per filter and compartment).
    pub dbmus_per_compartment: usize,
    /// Weight rows per DBMU (word lines).
    pub rows_per_dbmu: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Feature (activation) buffer capacity in bytes.
    pub feature_buffer_bytes: usize,
    /// Weight buffer capacity in bytes.
    pub weight_buffer_bytes: usize,
    /// Metadata buffer capacity in bytes.
    pub meta_buffer_bytes: usize,
    /// Instruction buffer capacity in bytes.
    pub instruction_buffer_bytes: usize,
    /// Metadata register-file capacity per macro in bytes.
    pub meta_rf_bytes: usize,
    /// Output register-file capacity in bytes.
    pub output_rf_bytes: usize,
    /// Number of filters the dense baseline processes per macro (8-bit cells
    /// per weight leave room for only two filters plus two post-processing
    /// units, as in the reference design the paper extends).
    pub dense_filters_per_macro: usize,
}

impl ArchConfig {
    /// The paper's configuration (Section 4.1).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            macros: 4,
            compartments_per_macro: 16,
            dbmus_per_compartment: 16,
            rows_per_dbmu: 64,
            frequency_mhz: 500.0,
            feature_buffer_bytes: 128 * 1024,
            weight_buffer_bytes: 32 * 1024,
            meta_buffer_bytes: 96 * 1024,
            instruction_buffer_bytes: 16 * 1024,
            meta_rf_bytes: 6 * 1024,
            output_rf_bytes: 2 * 1024 / 8,
            dense_filters_per_macro: 2,
        }
    }

    /// 6T cells per macro.
    #[must_use]
    pub fn cells_per_macro(&self) -> usize {
        self.compartments_per_macro * self.dbmus_per_compartment * self.rows_per_dbmu
    }

    /// Macro storage capacity in kibibits (16 Kb for the paper's geometry).
    #[must_use]
    pub fn macro_kib(&self) -> f64 {
        self.cells_per_macro() as f64 / 1024.0
    }

    /// Total PIM storage across all macros, in bytes.
    #[must_use]
    pub fn pim_bytes(&self) -> usize {
        self.macros * self.cells_per_macro() / 8
    }

    /// Number of filters a macro processes in parallel for a filter threshold.
    ///
    /// Each filter occupies `φ_th` DBMU columns per compartment, so a macro
    /// fits `dbmus_per_compartment / φ_th` filters: 16 at `φ_th = 1`, 8 at
    /// `φ_th = 2`. Threshold-0 filters need no computation at all; by
    /// convention they report the full column count.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnsupportedThreshold`] when the threshold exceeds
    /// the number of DBMU columns.
    pub fn filters_per_macro(&self, threshold: u32) -> Result<usize, ArchError> {
        if threshold == 0 {
            return Ok(self.dbmus_per_compartment);
        }
        if threshold as usize > self.dbmus_per_compartment {
            return Err(ArchError::UnsupportedThreshold { threshold });
        }
        Ok(self.dbmus_per_compartment / threshold as usize)
    }

    /// Number of weights of one filter a fully loaded macro holds
    /// (`rows * compartments`).
    #[must_use]
    pub fn weights_per_filter_capacity(&self) -> usize {
        self.rows_per_dbmu * self.compartments_per_macro
    }

    /// Number of filters the *dense* baseline packs per macro at a weight
    /// width: the reference design's [`dense_filters_per_macro`]
    /// (`ArchConfig::dense_filters_per_macro`), capped by how many
    /// `width.bits()`-column weights fit the compartment.
    ///
    /// At INT8 on the paper geometry this is the historical 2; INT12/INT16
    /// weights leave room for only one filter.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CapacityExceeded`] when even a single weight's
    /// bit columns exceed the compartment.
    pub fn dense_filters_per_macro_for(&self, width: OperandWidth) -> Result<usize, ArchError> {
        let bits = width.bits() as usize;
        if bits > self.dbmus_per_compartment {
            return Err(ArchError::CapacityExceeded {
                resource: "weight bit columns",
                requested: bits,
                available: self.dbmus_per_compartment,
            });
        }
        Ok(self.dense_filters_per_macro.min(self.dbmus_per_compartment / bits))
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn clock_period_ns(&self) -> f64 {
        1e3 / self.frequency_mhz
    }

    /// Total on-chip SRAM buffer capacity in bytes, the "SRAM Size" row of
    /// Table 3 (feature + weight + meta + instruction buffers; register files
    /// are reported separately).
    #[must_use]
    pub fn sram_bytes(&self) -> usize {
        self.feature_buffer_bytes
            + self.weight_buffer_bytes
            + self.meta_buffer_bytes
            + self.instruction_buffer_bytes
    }

    /// Total register-file capacity (metadata RFs of every macro plus the
    /// output RF) in bytes.
    #[must_use]
    pub fn register_file_bytes(&self) -> usize {
        self.macros * self.meta_rf_bytes + self.output_rf_bytes
    }

    /// Validates the configuration.
    ///
    /// Beyond rejecting zero structural parameters, every buffer must be
    /// large enough for a single tile of its stream — a geometry whose
    /// weight buffer cannot hold one `rows × compartments` weight tile (or
    /// whose feature buffer cannot hold one broadcast input vector, or whose
    /// meta buffer cannot hold one macro's worth of cell metadata) can never
    /// execute a layer, and rejecting it here gives sweeps and the serving
    /// layer a structured error instead of a mid-compile failure.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CapacityExceeded`] naming the zero parameter, or
    /// [`ArchError::BufferOverflow`] naming the undersized buffer and the
    /// single-tile minimum it must hold.
    pub fn validate(&self) -> Result<(), ArchError> {
        let check = |value: usize, resource: &'static str| {
            if value == 0 {
                Err(ArchError::CapacityExceeded { resource, requested: 1, available: 0 })
            } else {
                Ok(())
            }
        };
        check(self.macros, "macros")?;
        check(self.compartments_per_macro, "compartments")?;
        check(self.dbmus_per_compartment, "dbmu columns")?;
        check(self.rows_per_dbmu, "rows")?;
        check(self.dense_filters_per_macro, "dense filters")?;
        if !(self.frequency_mhz > 0.0 && self.frequency_mhz.is_finite()) {
            return Err(ArchError::CapacityExceeded {
                resource: "frequency",
                requested: 1,
                available: 0,
            });
        }
        // Single-tile buffer floors. One weight tile is `rows × compartments`
        // weights at one byte each; one input vector broadcasts one byte per
        // compartment; one macro load carries at least one metadata bit per
        // allocated cell.
        let tile = |buffer: &'static str, capacity: usize, minimum: usize| {
            if capacity < minimum {
                Err(ArchError::BufferOverflow {
                    buffer: format!("{buffer} (single-tile minimum)"),
                    requested: minimum,
                    capacity,
                })
            } else {
                Ok(())
            }
        };
        tile("weight buffer", self.weight_buffer_bytes, self.weights_per_filter_capacity())?;
        tile("feature buffer", self.feature_buffer_bytes, self.compartments_per_macro)?;
        tile("meta buffer", self.meta_buffer_bytes, self.cells_per_macro().div_ceil(8))?;
        tile("instruction buffer", self.instruction_buffer_bytes, 1)?;
        tile("meta register file", self.meta_rf_bytes, 1)?;
        tile("output register file", self.output_rf_bytes, 1)?;
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_section_4_1() {
        let cfg = ArchConfig::paper();
        assert_eq!(cfg.cells_per_macro(), 16 * 1024);
        assert!((cfg.macro_kib() - 16.0).abs() < f64::EPSILON);
        assert_eq!(cfg.pim_bytes(), 8 * 1024); // 8 KB "PIM size" in Table 3
        assert_eq!(cfg.filters_per_macro(1).unwrap(), 16);
        assert_eq!(cfg.filters_per_macro(2).unwrap(), 8);
        assert_eq!(cfg.filters_per_macro(0).unwrap(), 16);
        assert_eq!(cfg.weights_per_filter_capacity(), 1024);
        assert!((cfg.clock_period_ns() - 2.0).abs() < 1e-9);
        // 272 KB of SRAM buffers as reported in Table 3, plus 4 x 6 KB meta
        // RFs and a 2 Kb output RF.
        assert_eq!(cfg.sram_bytes(), 272 * 1024);
        assert_eq!(cfg.register_file_bytes(), 4 * 6 * 1024 + 256);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn dense_filters_scale_down_with_operand_width() {
        let cfg = ArchConfig::paper();
        assert_eq!(cfg.dense_filters_per_macro_for(OperandWidth::Int4).unwrap(), 2);
        assert_eq!(cfg.dense_filters_per_macro_for(OperandWidth::Int8).unwrap(), 2);
        assert_eq!(cfg.dense_filters_per_macro_for(OperandWidth::Int12).unwrap(), 1);
        assert_eq!(cfg.dense_filters_per_macro_for(OperandWidth::Int16).unwrap(), 1);
        let mut narrow = ArchConfig::paper();
        narrow.dbmus_per_compartment = 8;
        assert!(narrow.dense_filters_per_macro_for(OperandWidth::Int16).is_err());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut cfg = ArchConfig::paper();
        cfg.macros = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ArchConfig::paper();
        cfg.frequency_mhz = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = ArchConfig::paper();
        cfg.frequency_mhz = f64::NAN;
        assert!(cfg.validate().is_err());
        let cfg = ArchConfig::paper();
        assert!(cfg.filters_per_macro(17).is_err());
    }

    #[test]
    fn zero_structural_parameters_are_each_rejected() {
        for mutate in [
            (|c: &mut ArchConfig| c.compartments_per_macro = 0) as fn(&mut ArchConfig),
            |c| c.dbmus_per_compartment = 0,
            |c| c.rows_per_dbmu = 0,
            |c| c.dense_filters_per_macro = 0,
        ] {
            let mut cfg = ArchConfig::paper();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert!(matches!(err, ArchError::CapacityExceeded { available: 0, .. }), "{err}");
        }
    }

    #[test]
    fn buffers_too_small_for_a_single_tile_are_rejected() {
        // A zero-sized buffer of any kind is unusable.
        for mutate in [
            (|c: &mut ArchConfig| c.feature_buffer_bytes = 0) as fn(&mut ArchConfig),
            |c| c.weight_buffer_bytes = 0,
            |c| c.meta_buffer_bytes = 0,
            |c| c.instruction_buffer_bytes = 0,
            |c| c.meta_rf_bytes = 0,
            |c| c.output_rf_bytes = 0,
        ] {
            let mut cfg = ArchConfig::paper();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert!(matches!(err, ArchError::BufferOverflow { .. }), "{err}");
        }

        // The weight buffer must hold one rows × compartments tile: 1024
        // bytes on the paper geometry.
        let mut cfg = ArchConfig::paper();
        cfg.weight_buffer_bytes = cfg.weights_per_filter_capacity() - 1;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("weight buffer"), "{err}");
        cfg.weight_buffer_bytes = cfg.weights_per_filter_capacity();
        assert!(cfg.validate().is_ok(), "exactly one tile is acceptable");

        // The feature buffer must hold one broadcast input vector.
        let mut cfg = ArchConfig::paper();
        cfg.feature_buffer_bytes = cfg.compartments_per_macro - 1;
        assert!(cfg.validate().unwrap_err().to_string().contains("feature buffer"));

        // The meta buffer must hold one macro's worth of cell metadata.
        let mut cfg = ArchConfig::paper();
        cfg.meta_buffer_bytes = cfg.cells_per_macro() / 8 - 1;
        assert!(cfg.validate().unwrap_err().to_string().contains("meta buffer"));

        // Fewer than 8 cells per macro still needs a non-zero meta buffer
        // (the minimum rounds up, never down to zero).
        let mut cfg = ArchConfig::paper();
        cfg.compartments_per_macro = 1;
        cfg.dbmus_per_compartment = 1;
        cfg.rows_per_dbmu = 4;
        cfg.meta_buffer_bytes = 0;
        assert!(cfg.validate().unwrap_err().to_string().contains("meta buffer"));
        cfg.meta_buffer_bytes = 1;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn default_is_the_paper_configuration() {
        assert_eq!(ArchConfig::default(), ArchConfig::paper());
    }
}
