//! The dyadic block multiplication unit (DBMU): a column of 6T cells plus
//! one local processing unit.
//!
//! A DBMU stores up to `rows_per_dbmu` Complementary Pattern blocks, one per
//! word line. In any cycle at most one word line is active; the LPU then
//! multiplies the broadcast input bit against the selected cell's `Q`/`Q̄`
//! pair. Idle (padded) rows are tracked explicitly so that utilization can be
//! charged exactly as Eq. (1) of the paper defines it.

use serde::{Deserialize, Serialize};

use crate::cell::SixTCell;
use crate::error::ArchError;
use crate::lpu::{LocalProcessingUnit, LpuOutput};

/// One DBMU: `rows` 6T cells sharing a single LPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dbmu {
    cells: Vec<SixTCell>,
    occupied: Vec<bool>,
    lpu: LocalProcessingUnit,
}

impl Dbmu {
    /// Creates a DBMU with `rows` cells, all idle.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        Self {
            cells: vec![SixTCell::default(); rows],
            occupied: vec![false; rows],
            lpu: LocalProcessingUnit,
        }
    }

    /// Number of word lines (rows).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.cells.len()
    }

    /// Number of rows currently holding a Complementary Pattern block.
    #[must_use]
    pub fn occupied_rows(&self) -> usize {
        self.occupied.iter().filter(|&&o| o).count()
    }

    /// Writes a Complementary Pattern block into a row (`q == true` when the
    /// non-zero digit occupies the block's high position).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CapacityExceeded`] for an out-of-range row.
    pub fn write_row(&mut self, row: usize, q: bool) -> Result<(), ArchError> {
        let cell = self.cells.get_mut(row).ok_or(ArchError::CapacityExceeded {
            resource: "rows",
            requested: row + 1,
            available: self.occupied.len(),
        })?;
        cell.write(q);
        self.occupied[row] = true;
        Ok(())
    }

    /// Marks a row as idle (padding slot for a weight with fewer non-zero
    /// blocks than its filter's threshold).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CapacityExceeded`] for an out-of-range row.
    pub fn clear_row(&mut self, row: usize) -> Result<(), ArchError> {
        if row >= self.cells.len() {
            return Err(ArchError::CapacityExceeded {
                resource: "rows",
                requested: row + 1,
                available: self.cells.len(),
            });
        }
        self.cells[row] = SixTCell::default();
        self.occupied[row] = false;
        Ok(())
    }

    /// Returns `true` when the row currently holds a block.
    #[must_use]
    pub fn is_occupied(&self, row: usize) -> bool {
        self.occupied.get(row).copied().unwrap_or(false)
    }

    /// Evaluates the LPU for the selected row against the broadcast input
    /// bit. Idle rows contribute nothing (their output is gated off).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::CapacityExceeded`] for an out-of-range row.
    pub fn compute(&self, row: usize, input_bit: bool) -> Result<LpuOutput, ArchError> {
        let cell = self.cells.get(row).ok_or(ArchError::CapacityExceeded {
            resource: "rows",
            requested: row + 1,
            available: self.cells.len(),
        })?;
        if !self.occupied[row] {
            return Ok(LpuOutput::default());
        }
        Ok(self.lpu.multiply(input_bit, cell))
    }

    /// Clears every row.
    pub fn reset(&mut self) {
        for cell in &mut self.cells {
            cell.write(false);
        }
        self.occupied.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_computes_per_row() {
        let mut dbmu = Dbmu::new(4);
        assert_eq!(dbmu.rows(), 4);
        dbmu.write_row(0, true).unwrap();
        dbmu.write_row(2, false).unwrap();
        assert_eq!(dbmu.occupied_rows(), 2);
        assert!(dbmu.is_occupied(0));
        assert!(!dbmu.is_occupied(1));

        let out = dbmu.compute(0, true).unwrap();
        assert!(out.o_q && !out.o_q_bar);
        let out = dbmu.compute(2, true).unwrap();
        assert!(!out.o_q && out.o_q_bar);
        // Idle row: gated off even with a one input.
        let out = dbmu.compute(1, true).unwrap();
        assert_eq!(out, LpuOutput::default());
    }

    #[test]
    fn out_of_range_rows_error() {
        let mut dbmu = Dbmu::new(2);
        assert!(dbmu.write_row(2, true).is_err());
        assert!(dbmu.compute(5, true).is_err());
        assert!(dbmu.clear_row(9).is_err());
        assert!(!dbmu.is_occupied(7));
    }

    #[test]
    fn clear_and_reset_release_rows() {
        let mut dbmu = Dbmu::new(3);
        dbmu.write_row(0, true).unwrap();
        dbmu.write_row(1, true).unwrap();
        dbmu.clear_row(0).unwrap();
        assert_eq!(dbmu.occupied_rows(), 1);
        dbmu.reset();
        assert_eq!(dbmu.occupied_rows(), 0);
        assert_eq!(dbmu.compute(1, true).unwrap(), LpuOutput::default());
    }
}
