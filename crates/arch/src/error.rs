//! Error type for the architecture model.

use std::error::Error;
use std::fmt;

/// Errors produced by the bit-accurate architecture model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// A tile does not fit into the macro geometry.
    CapacityExceeded {
        /// What overflowed ("filters", "rows", "weights per filter", ...).
        resource: &'static str,
        /// Requested amount.
        requested: usize,
        /// Available amount.
        available: usize,
    },
    /// Mismatched operand lengths (e.g. weights vs inputs).
    LengthMismatch {
        /// Description of the left operand.
        left: &'static str,
        /// Length of the left operand.
        left_len: usize,
        /// Description of the right operand.
        right: &'static str,
        /// Length of the right operand.
        right_len: usize,
    },
    /// A filter threshold incompatible with the macro configuration.
    UnsupportedThreshold {
        /// The offending threshold.
        threshold: u32,
    },
    /// A weight value outside the operand width's two's-complement range.
    OperandOutOfRange {
        /// The offending weight value.
        value: i32,
        /// The operand bit width whose range was exceeded.
        bits: u32,
    },
    /// Execution was requested before any tile was loaded.
    NoTileLoaded,
    /// A buffer access beyond the modelled capacity.
    BufferOverflow {
        /// Buffer name.
        buffer: String,
        /// Requested bytes.
        requested: usize,
        /// Capacity in bytes.
        capacity: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::CapacityExceeded { resource, requested, available } => {
                write!(f, "macro capacity exceeded: {requested} {resource} requested, {available} available")
            }
            ArchError::LengthMismatch { left, left_len, right, right_len } => {
                write!(
                    f,
                    "length mismatch: {left} has {left_len} elements but {right} has {right_len}"
                )
            }
            ArchError::UnsupportedThreshold { threshold } => {
                write!(f, "filter threshold {threshold} is not supported by the macro geometry")
            }
            ArchError::OperandOutOfRange { value, bits } => {
                write!(f, "weight {value} is outside the {bits}-bit two's-complement range")
            }
            ArchError::NoTileLoaded => {
                write!(f, "no tile loaded: load a sparse or dense tile before executing")
            }
            ArchError::BufferOverflow { buffer, requested, capacity } => {
                write!(
                    f,
                    "buffer {buffer} overflow: {requested} bytes requested, capacity {capacity}"
                )
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_quantities() {
        let e = ArchError::CapacityExceeded { resource: "filters", requested: 20, available: 16 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("16"));
        let e =
            ArchError::BufferOverflow { buffer: "weight".to_string(), requested: 10, capacity: 5 };
        assert!(e.to_string().contains("weight"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
