//! Input pre-processing unit (IPU).
//!
//! The IPU converts a group of input features into bit-serial form, detects
//! bit columns that are zero across the *whole* group (zero-detection
//! module), and uses leading-one detection to emit only the non-zero columns
//! together with their bit-position indices (Fig. 6). The macro then spends
//! one compute cycle per emitted column instead of one per bit position,
//! which is where the input-sparsity speedup of Fig. 7 comes from.

use serde::{Deserialize, Serialize};

use crate::config::OPERAND_BITS;

/// One non-zero bit column selected by the IPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputColumn {
    /// Bit position (0 = least significant) of this column.
    pub position: u32,
    /// One bit per input feature in the group.
    pub bits: Vec<bool>,
}

impl InputColumn {
    /// Number of set bits in the column.
    #[must_use]
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

/// Result of pre-processing one group of input features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpuResult {
    /// Number of input features in the group.
    pub group_size: usize,
    /// The non-zero columns, most-significant first (the order the
    /// leading-one detector emits them).
    pub columns: Vec<InputColumn>,
    /// Number of all-zero columns that were skipped.
    pub skipped_columns: usize,
}

impl IpuResult {
    /// Fraction of bit columns skipped for this group.
    #[must_use]
    pub fn skip_ratio(&self) -> f64 {
        self.skipped_columns as f64 / OPERAND_BITS as f64
    }

    /// Number of compute cycles the macro spends on this group (one per
    /// emitted column).
    #[must_use]
    pub fn compute_cycles(&self) -> usize {
        self.columns.len()
    }
}

/// Bit-packed result of pre-processing one group: the emitted columns as
/// `u64` compartment masks instead of per-feature `Vec<bool>`s.
///
/// All buffers are reused across [`InputPreprocessor::process_packed`] calls,
/// so the bit-serial front end of a tile execution performs no per-column
/// allocation. Column `i` carries [`words`](Self::words) mask words; bit
/// `c % 64` of word `c / 64` is input feature `c`'s bit at
/// [`position(i)`](Self::position).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedColumns {
    group_size: usize,
    words: usize,
    skipped_columns: usize,
    positions: Vec<u32>,
    masks: Vec<u64>,
    scratch: Vec<u64>,
}

impl PackedColumns {
    /// Creates an empty, reusable column buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of emitted (non-skipped) columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when no column was emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of input features in the processed group.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Mask words per column (`ceil(group_size / 64)`).
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of all-zero columns that were skipped.
    #[must_use]
    pub fn skipped_columns(&self) -> usize {
        self.skipped_columns
    }

    /// Bit position of emitted column `column` (columns are ordered
    /// most-significant first, like [`IpuResult::columns`]).
    #[must_use]
    pub fn position(&self, column: usize) -> u32 {
        self.positions[column]
    }

    /// The packed compartment mask of emitted column `column`.
    #[must_use]
    pub fn mask(&self, column: usize) -> &[u64] {
        &self.masks[column * self.words..(column + 1) * self.words]
    }
}

/// The input pre-processing unit.
///
/// `detect_sparsity == false` models the dense baseline's front end, which
/// still serializes inputs into bit columns but never skips any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputPreprocessor {
    detect_sparsity: bool,
}

impl InputPreprocessor {
    /// Creates an IPU with block-wise zero-column skipping enabled.
    #[must_use]
    pub fn new() -> Self {
        Self { detect_sparsity: true }
    }

    /// Creates the dense front end (no skipping).
    #[must_use]
    pub fn without_sparsity() -> Self {
        Self { detect_sparsity: false }
    }

    /// Returns `true` when zero-column skipping is enabled.
    #[must_use]
    pub fn detects_sparsity(&self) -> bool {
        self.detect_sparsity
    }

    /// Pre-processes one group of input features.
    ///
    /// Inputs are interpreted through their two's-complement bit pattern;
    /// the PPU is responsible for the signed most-significant-bit weighting.
    #[must_use]
    pub fn process(&self, group: &[i8]) -> IpuResult {
        let mut columns = Vec::with_capacity(OPERAND_BITS);
        let mut skipped = 0usize;
        for bit in (0..OPERAND_BITS as u32).rev() {
            let bits: Vec<bool> = group.iter().map(|&v| (v as u8 >> bit) & 1 == 1).collect();
            let all_zero = bits.iter().all(|&b| !b);
            if self.detect_sparsity && all_zero {
                skipped += 1;
            } else {
                columns.push(InputColumn { position: bit, bits });
            }
        }
        IpuResult { group_size: group.len(), columns, skipped_columns: skipped }
    }

    /// Pre-processes one group into reusable packed column masks.
    ///
    /// Emits exactly the columns [`process`](Self::process) emits, in the
    /// same most-significant-first order, but as `u64` compartment masks and
    /// without allocating once `out`'s buffers have grown to the group size.
    pub fn process_packed(&self, group: &[i8], out: &mut PackedColumns) {
        let words = group.len().div_ceil(64);
        out.group_size = group.len();
        out.words = words;
        out.skipped_columns = 0;
        out.positions.clear();
        out.masks.clear();
        out.scratch.clear();
        out.scratch.resize(OPERAND_BITS * words, 0);
        for (c, &v) in group.iter().enumerate() {
            let v = v as u8;
            let word = c / 64;
            let bit = 1u64 << (c % 64);
            for position in 0..OPERAND_BITS {
                if (v >> position) & 1 == 1 {
                    out.scratch[position * words + word] |= bit;
                }
            }
        }
        for position in (0..OPERAND_BITS).rev() {
            let mask = &out.scratch[position * words..(position + 1) * words];
            if self.detect_sparsity && mask.iter().all(|&w| w == 0) {
                out.skipped_columns += 1;
            } else {
                out.positions.push(position as u32);
                out.masks.extend_from_slice(mask);
            }
        }
    }

    /// Average fraction of skipped columns over a full feature map processed
    /// in groups of `group_size`.
    #[must_use]
    pub fn skip_ratio_over(&self, values: &[i8], group_size: usize) -> f64 {
        assert!(group_size > 0, "group size must be non-zero");
        if values.is_empty() {
            return 0.0;
        }
        let mut packed = PackedColumns::new();
        let mut skipped = 0usize;
        let mut total = 0usize;
        for group in values.chunks(group_size) {
            self.process_packed(group, &mut packed);
            skipped += packed.skipped_columns();
            total += OPERAND_BITS;
        }
        skipped as f64 / total as f64
    }
}

impl Default for InputPreprocessor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_6_style_group() {
        // Features occupying only bits {0, 2, 3, 6}: the other four columns
        // are skipped and the emitted indices are 6, 3, 2, 0 (MSB first).
        let ipu = InputPreprocessor::new();
        let group =
            [0b0100_1001u8 as i8, 0b0000_1101u8 as i8, 0b0100_0100u8 as i8, 0b0000_0001u8 as i8];
        let result = ipu.process(&group);
        assert_eq!(result.skipped_columns, 4);
        let positions: Vec<u32> = result.columns.iter().map(|c| c.position).collect();
        assert_eq!(positions, vec![6, 3, 2, 0]);
        assert_eq!(result.compute_cycles(), 4);
        assert!((result.skip_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_zero_group_skips_everything() {
        let ipu = InputPreprocessor::new();
        let result = ipu.process(&[0i8; 16]);
        assert_eq!(result.skipped_columns, 8);
        assert!(result.columns.is_empty());
        assert_eq!(result.compute_cycles(), 0);
    }

    #[test]
    fn dense_front_end_never_skips() {
        let ipu = InputPreprocessor::without_sparsity();
        assert!(!ipu.detects_sparsity());
        let result = ipu.process(&[0i8; 8]);
        assert_eq!(result.skipped_columns, 0);
        assert_eq!(result.columns.len(), 8);
        assert_eq!(result.skip_ratio(), 0.0);
    }

    #[test]
    fn column_bits_follow_the_inputs() {
        let ipu = InputPreprocessor::new();
        let result = ipu.process(&[1i8, 3, 0]);
        // Bit 1 column: only the value 3 has it set.
        let col1 = result.columns.iter().find(|c| c.position == 1).unwrap();
        assert_eq!(col1.bits, vec![false, true, false]);
        assert_eq!(col1.ones(), 1);
        // Bit 0 column: values 1 and 3.
        let col0 = result.columns.iter().find(|c| c.position == 0).unwrap();
        assert_eq!(col0.ones(), 2);
    }

    #[test]
    fn packed_columns_agree_with_the_scalar_columns() {
        let groups: Vec<Vec<i8>> = vec![
            vec![],
            vec![0; 16],
            vec![1, 3, 0],
            (0..80).map(|i| (i * 7 % 251) as i8).collect(),
            vec![0b0100_1001u8 as i8, 0b0000_1101u8 as i8, 0b0100_0100u8 as i8, 1],
        ];
        for ipu in [InputPreprocessor::new(), InputPreprocessor::without_sparsity()] {
            let mut packed = PackedColumns::new();
            for group in &groups {
                let scalar = ipu.process(group);
                ipu.process_packed(group, &mut packed);
                assert_eq!(packed.group_size(), scalar.group_size);
                assert_eq!(packed.skipped_columns(), scalar.skipped_columns);
                assert_eq!(packed.len(), scalar.columns.len());
                assert_eq!(packed.is_empty(), scalar.columns.is_empty());
                for (i, column) in scalar.columns.iter().enumerate() {
                    assert_eq!(packed.position(i), column.position);
                    for (c, &bit) in column.bits.iter().enumerate() {
                        let word = packed.mask(i)[c / 64];
                        assert_eq!((word >> (c % 64)) & 1 == 1, bit, "column {i} feature {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn skip_ratio_over_a_feature_map() {
        let ipu = InputPreprocessor::new();
        // Half the values are zero, the rest small: high-order columns skip.
        let values: Vec<i8> =
            (0..256).map(|i| if i % 2 == 0 { 0 } else { (i % 4) as i8 }).collect();
        let ratio = ipu.skip_ratio_over(&values, 16);
        assert!(ratio >= 0.7, "ratio {ratio}");
        assert_eq!(ipu.skip_ratio_over(&[], 16), 0.0);
        let dense = InputPreprocessor::without_sparsity();
        assert_eq!(dense.skip_ratio_over(&values, 16), 0.0);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_panics() {
        let _ = InputPreprocessor::new().skip_ratio_over(&[1], 0);
    }
}
