//! Bit-accurate functional model of the DB-PIM architecture.
//!
//! This crate models the paper's customized SRAM-PIM macro and its peripherals
//! at the bit level:
//!
//! * [`SixTCell`] / [`LocalProcessingUnit`] / [`Dbmu`] — a 6T cell storing a
//!   Complementary Pattern block and the four-transistor LPU that multiplies
//!   both of its nodes with the broadcast input bit.
//! * [`CsdAdderTree`] — the metadata-guided adder tree that shifts and signs
//!   the randomly distributed non-zero digit products before accumulating.
//! * [`PostProcessingUnit`] — bit-serial shift-and-add with signed-MSB
//!   handling and cross-tile partial-sum accumulation.
//! * [`InputPreprocessor`] — block-wise zero-column detection and leading-one
//!   selection of input bit columns.
//! * [`PimMacro`] — the full macro supporting both the DB-PIM (sparse) tile
//!   mapping and the dense-baseline mapping; every execution returns event
//!   counts ([`MacroComputeStats`]) the performance simulator consumes. The
//!   compute phase runs on word-packed bit-planes (AND + popcount per CSD
//!   shift) and loading is split from execution
//!   ([`PimMacro::load_sparse_tile`] / [`PimMacro::execute_loaded`]); the
//!   original cell-at-a-time model survives as the `scalar-reference`
//!   feature's `ScalarPimMacro` correctness oracle.
//! * [`ArchConfig`] — the Section 4.1 geometry (4 macros × 16 Kb, 500 MHz,
//!   272 KB of buffers).
//!
//! # Example
//!
//! ```
//! use dbpim_arch::{ArchConfig, InputPreprocessor, PimMacro};
//! use dbpim_fta::{FilterApprox, QueryTables};
//! use dbpim_fta::metadata::FilterMetadata;
//!
//! let tables = QueryTables::new();
//! let weights: Vec<i8> = vec![3, -5, 64, 0, 17, -96, 7, 1];
//! let inputs: Vec<i8> = vec![1, 2, 3, 4, 5, 6, 7, 8];
//! let filter = FilterApprox::approximate(&weights, &tables)?;
//! let meta = FilterMetadata::from_filter(0, &filter);
//!
//! let mut macro_unit = PimMacro::new(ArchConfig::paper())?;
//! let exec = macro_unit.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new())?;
//! let expected: i64 = filter.values().iter().zip(&inputs)
//!     .map(|(&w, &x)| i64::from(w) * i64::from(x)).sum();
//! assert_eq!(exec.outputs[0], expected);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder_tree;
mod buffers;
mod cell;
mod config;
mod dbmu;
mod error;
mod ipu;
mod lpu;
mod macro_unit;
mod ppu;
#[cfg(any(test, feature = "scalar-reference"))]
pub mod reference;

pub use adder_tree::{AdderTreeStats, CellMeta, CsdAdderTree};
pub use buffers::TrackedBuffer;
pub use cell::SixTCell;
pub use config::{ArchConfig, BLOCKS_PER_WEIGHT, OPERAND_BITS};
pub use dbmu::Dbmu;
pub use error::ArchError;
pub use ipu::{InputColumn, InputPreprocessor, IpuResult, PackedColumns};
pub use lpu::{LocalProcessingUnit, LpuOutput};
pub use macro_unit::{MacroComputeStats, PimMacro, TileExecution};
pub use ppu::{PostProcessingUnit, INPUT_BITS};
#[cfg(any(test, feature = "scalar-reference"))]
pub use reference::ScalarPimMacro;
