//! The local processing unit (LPU): a four-transistor dual bitwise-AND.
//!
//! Each DBMU contains one LPU that multiplies the broadcast input bit with
//! both nodes of the selected 6T cell, producing `O_Q = IN & Q` and
//! `O_Q̄ = IN & Q̄` in the same cycle — two independent 1b × 1b
//! multiplications out of a single stored cell.

use serde::{Deserialize, Serialize};

use crate::cell::SixTCell;

/// Output of one LPU evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LpuOutput {
    /// `IN & Q` — the product for the dyadic block's high digit position.
    pub o_q: bool,
    /// `IN & Q̄` — the product for the dyadic block's low digit position.
    pub o_q_bar: bool,
}

impl LpuOutput {
    /// Numeric contribution of the pair within its dyadic block, before the
    /// block-index shift and sign: `2 * o_q + o_q_bar`.
    #[must_use]
    pub fn block_magnitude(&self) -> u32 {
        2 * u32::from(self.o_q) + u32::from(self.o_q_bar)
    }
}

/// The local processing unit of one DBMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LocalProcessingUnit;

impl LocalProcessingUnit {
    /// Evaluates the dual AND for one input bit against one cell.
    #[must_use]
    pub fn multiply(self, input_bit: bool, cell: &SixTCell) -> LpuOutput {
        LpuOutput { o_q: input_bit && cell.q(), o_q_bar: input_bit && cell.q_bar() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_input_produces_zero_outputs() {
        let lpu = LocalProcessingUnit;
        for q in [false, true] {
            let out = lpu.multiply(false, &SixTCell::new(q));
            assert!(!out.o_q && !out.o_q_bar);
            assert_eq!(out.block_magnitude(), 0);
        }
    }

    #[test]
    fn one_input_selects_exactly_one_position() {
        let lpu = LocalProcessingUnit;
        let high = lpu.multiply(true, &SixTCell::new(true));
        assert!(high.o_q && !high.o_q_bar);
        assert_eq!(high.block_magnitude(), 2);
        let low = lpu.multiply(true, &SixTCell::new(false));
        assert!(!low.o_q && low.o_q_bar);
        assert_eq!(low.block_magnitude(), 1);
    }
}
