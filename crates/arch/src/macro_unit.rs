//! The customized SRAM-PIM macro: bit-accurate sparse and dense execution.
//!
//! The macro is organised as `compartments × DBMU-columns × rows` 6T cells.
//! Every compartment receives one broadcast input feature per cycle; a filter
//! occupies `φ_th` DBMU columns (one per stored Complementary Pattern block)
//! in every compartment. The CSD adder tree reduces a filter's contributions
//! across compartments and block slots, and the filter's post-processing unit
//! shift-and-adds the result over the bit-serial input columns emitted by the
//! IPU.
//!
//! The same storage array also supports the *dense baseline* mapping the
//! paper compares against: eight plain binary bit-cells per weight, two
//! filters per macro, no zero-bit skipping.
//!
//! # Bit-plane execution
//!
//! Internally the macro stores a loaded tile as packed `u64` *bit-planes*
//! rather than individual cells: for every `(filter, row)` pair there is one
//! plane per CSD shift amount `k = 2·db_index + high` and digit sign, whose
//! bit `c` says "compartment `c` holds an occupied cell contributing
//! `±2^k`". One compute column then reduces to a word-wide AND against the
//! IPU's packed input mask followed by popcounts — the same arithmetic the
//! cell-at-a-time model performs, several dozen cells per machine
//! instruction. The cell-level implementation is preserved as
//! [`ScalarPimMacro`](crate::reference::ScalarPimMacro) (under
//! `cfg(any(test, feature = "scalar-reference"))`) and the differential suite
//! `tests/kernel_equivalence.rs` proves outputs and every
//! [`MacroComputeStats`] counter bit-identical between the two.
//!
//! Loading is split from execution ([`PimMacro::load_sparse_tile`] /
//! [`PimMacro::execute_loaded`]) so callers multiplying one weight tile
//! against many input vectors no longer re-write identical weights per tile.

use dbpim_csd::{OperandWidth, Sign};
use dbpim_fta::metadata::FilterMetadata;
use serde::{Deserialize, Serialize};

use crate::adder_tree::CsdAdderTree;
use crate::config::ArchConfig;
use crate::error::ArchError;
use crate::ipu::{InputPreprocessor, PackedColumns};
use crate::ppu::PostProcessingUnit;

/// Event counts of one tile execution on a macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MacroComputeStats {
    /// Compute cycles spent (one per emitted input bit column per row).
    pub compute_cycles: u64,
    /// Input bit columns skipped by the IPU.
    pub skipped_columns: u64,
    /// Cell/LPU read-compute operations issued.
    pub cell_reads: u64,
    /// Cell operations that produced a non-zero contribution.
    pub effective_cell_ops: u64,
    /// CSD adder-tree reductions performed.
    pub adder_reductions: u64,
    /// Post-processing shift-and-add operations performed.
    pub ppu_operations: u64,
    /// Word-line writes performed while loading the tile.
    pub cell_writes: u64,
}

impl MacroComputeStats {
    /// Actual utilization of the executed tile: effective cell operations
    /// over issued cell operations (Eq. 1 evaluated dynamically).
    #[must_use]
    pub fn dynamic_utilization(&self) -> f64 {
        if self.cell_reads == 0 {
            return 1.0;
        }
        self.effective_cell_ops as f64 / self.cell_reads as f64
    }
}

/// Result of executing one tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileExecution {
    /// One accumulated dot product per filter of the tile.
    pub outputs: Vec<i64>,
    /// Event counts for the execution.
    pub stats: MacroComputeStats,
}

/// A sparse (DB-PIM) tile packed into sign-split CSD shift planes.
///
/// `planes` is indexed `[filter][row][shift k][sign][word]` (row-major): bit
/// `c % 64` of word `c / 64` is set when compartment `c` holds an occupied
/// cell whose contribution is `±2^k` (`k = 2·db_index + high`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SparsePlanes {
    filters: usize,
    weights_len: usize,
    /// Column stride per filter (`φ_th` of the tile), charged per cell read
    /// whether or not a slot is occupied.
    slots: usize,
    /// Number of CSD shift planes (`2 × blocks` of the widest filter).
    shifts: usize,
    rows: usize,
    words: usize,
    planes: Vec<u64>,
    cell_writes: u64,
    /// One flag per `(filter, row)` plane segment: `false` means no stored
    /// bit anywhere in the segment, so execution elides its reduction (the
    /// charged counters are unchanged — the hardware still issues the cycle).
    row_has_bits: Vec<bool>,
    /// Allocated cell slots that belong to exactly-zero (value-pruned)
    /// weights.
    pruned_cells: u64,
}

/// A dense-baseline tile packed into weight-bit planes.
///
/// `planes` is indexed `[filter][row][bit][word]`; bit `c` of a word is the
/// two's-complement weight bit `b` of the weight held by compartment `c`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct DensePlanes {
    filters: usize,
    weights_len: usize,
    weight_bits: usize,
    rows: usize,
    words: usize,
    planes: Vec<u64>,
    cell_writes: u64,
}

/// The tile currently held by the macro's storage array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum LoadedTile {
    None,
    Sparse(SparsePlanes),
    Dense(DensePlanes),
}

/// The bit-accurate PIM macro model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimMacro {
    config: ArchConfig,
    tile: LoadedTile,
}

impl PimMacro {
    /// Creates an empty macro with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate configuration.
    pub fn new(config: ArchConfig) -> Result<Self, ArchError> {
        config.validate()?;
        Ok(Self { config, tile: LoadedTile::None })
    }

    /// The macro's geometry.
    #[must_use]
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Clears every cell and its metadata (drops the loaded tile).
    pub fn reset(&mut self) {
        self.tile = LoadedTile::None;
    }

    /// Allocated cell slots of the loaded sparse tile that belong to
    /// exactly-zero (value-pruned) weights — capacity the pruning wasted
    /// rather than compacted away. Zero for dense tiles or when nothing is
    /// loaded.
    #[must_use]
    pub fn loaded_pruned_cells(&self) -> u64 {
        match &self.tile {
            LoadedTile::Sparse(t) => t.pruned_cells,
            _ => 0,
        }
    }

    /// Number of `(filter, row)` plane segments of the loaded sparse tile
    /// with no stored bits at all. Execution elides each segment's adder
    /// reduction per input column while charging the regular counters, so
    /// results and accounting stay bit-identical to the scalar reference.
    #[must_use]
    pub fn loaded_zero_rows(&self) -> u64 {
        match &self.tile {
            LoadedTile::Sparse(t) => t.row_has_bits.iter().filter(|&&b| !b).count() as u64,
            _ => 0,
        }
    }

    /// Loads one DB-PIM (sparse) tile without executing it, returning the
    /// number of word-line writes performed. Every filter of the tile must
    /// carry the same number of weights.
    ///
    /// Pair with [`execute_loaded`](Self::execute_loaded) to multiply the
    /// same weight tile against many input vectors without re-writing cells.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters or weights do not
    ///   fit the macro geometry.
    /// * [`ArchError::LengthMismatch`] when the filters disagree on their
    ///   weight count.
    pub fn load_sparse_tile(&mut self, filters: &[FilterMetadata]) -> Result<u64, ArchError> {
        let _span = dbpim_trace::kernel_span("arch.load");
        let weights_len = filters.first().map_or(0, |f| f.weights.len());
        self.validate_sparse(filters, weights_len, "tile weights")?;
        Ok(self.load_sparse_planes(filters, weights_len))
    }

    /// Loads one dense-baseline INT8 tile without executing it, returning
    /// the number of word-line writes performed.
    ///
    /// # Errors
    ///
    /// As [`load_dense_tile_for_width`](Self::load_dense_tile_for_width) at
    /// [`OperandWidth::Int8`].
    pub fn load_dense_tile(&mut self, filters: &[Vec<i8>]) -> Result<u64, ArchError> {
        let _span = dbpim_trace::kernel_span("arch.load");
        let refs: Vec<&[i8]> = filters.iter().map(Vec::as_slice).collect();
        let weights_len = refs.first().map_or(0, |f| f.len());
        self.validate_dense(&refs, weights_len, OperandWidth::Int8, "tile weights")?;
        Ok(self.load_dense_planes(&refs, OperandWidth::Int8))
    }

    /// Loads one dense-baseline tile at an arbitrary weight width without
    /// executing it, returning the number of word-line writes performed.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters, weights or weight
    ///   bit columns do not fit the macro geometry.
    /// * [`ArchError::LengthMismatch`] when the filters disagree on their
    ///   weight count.
    /// * [`ArchError::OperandOutOfRange`] when a weight lies outside the
    ///   width's two's-complement range.
    pub fn load_dense_tile_for_width(
        &mut self,
        filters: &[Vec<i32>],
        width: OperandWidth,
    ) -> Result<u64, ArchError> {
        let _span = dbpim_trace::kernel_span("arch.load");
        let refs: Vec<&[i32]> = filters.iter().map(Vec::as_slice).collect();
        let weights_len = refs.first().map_or(0, |f| f.len());
        self.validate_dense(&refs, weights_len, width, "tile weights")?;
        Ok(self.load_dense_planes(&refs, width))
    }

    /// Executes the currently loaded tile against one input vector.
    ///
    /// The returned [`MacroComputeStats::cell_writes`] is zero — the write
    /// cost was already paid (and reported) by the load call.
    ///
    /// # Errors
    ///
    /// * [`ArchError::NoTileLoaded`] when no tile has been loaded.
    /// * [`ArchError::CapacityExceeded`] /
    ///   [`ArchError::LengthMismatch`] when the input vector does not match
    ///   the loaded tile.
    pub fn execute_loaded(
        &self,
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let _span = dbpim_trace::kernel_span("arch.execute");
        let (filters, weights_len) = match &self.tile {
            LoadedTile::None => return Err(ArchError::NoTileLoaded),
            LoadedTile::Sparse(t) => (t.filters, t.weights_len),
            LoadedTile::Dense(t) => (t.filters, t.weights_len),
        };
        if inputs.len() > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: inputs.len(),
                available: self.config.weights_per_filter_capacity(),
            });
        }
        if filters > 0 && inputs.len() != weights_len {
            return Err(ArchError::LengthMismatch {
                left: "loaded tile weights",
                left_len: weights_len,
                right: "inputs",
                right_len: inputs.len(),
            });
        }
        Ok(self.execute_planes(inputs, ipu))
    }

    /// Executes one DB-PIM (sparse) tile: `filters` hold the dyadic-block
    /// metadata of every filter mapped onto this macro, `inputs` the INT8
    /// input features the tile multiplies against (one per weight position).
    ///
    /// Returns the per-filter signed dot products and the event counts.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters or weights do not
    ///   fit the macro geometry.
    /// * [`ArchError::LengthMismatch`] when a filter's weight count differs
    ///   from the number of inputs.
    pub fn execute_sparse_tile(
        &mut self,
        filters: &[FilterMetadata],
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        self.validate_sparse(filters, inputs.len(), "inputs")?;
        let writes = self.load_sparse_planes(filters, inputs.len());
        let mut exec = self.execute_planes(inputs, ipu);
        exec.stats.cell_writes = writes;
        Ok(exec)
    }

    /// Executes one dense-baseline tile: weights are stored as eight plain
    /// binary bit-cells each, `dense_filters_per_macro` filters at a time.
    ///
    /// This is the INT8 instance of
    /// [`execute_dense_tile_for_width`](Self::execute_dense_tile_for_width);
    /// the i8 weights are read through a borrowing width-generic path, no
    /// widened copy of the filters is made.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters or weights do not
    ///   fit.
    /// * [`ArchError::LengthMismatch`] when a filter's weight count differs
    ///   from the number of inputs.
    pub fn execute_dense_tile(
        &mut self,
        filters: &[Vec<i8>],
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let refs: Vec<&[i8]> = filters.iter().map(Vec::as_slice).collect();
        self.dense_tile_impl(&refs, inputs, ipu, OperandWidth::Int8)
    }

    /// Executes one dense-baseline tile at an arbitrary weight width:
    /// every weight occupies `width.bits()` plain binary bit-cells (its
    /// two's-complement representation over that width), so wider operands
    /// consume proportionally more DBMU columns per filter.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters, weights or weight
    ///   bit columns do not fit the macro geometry.
    /// * [`ArchError::LengthMismatch`] when a filter's weight count differs
    ///   from the number of inputs.
    /// * [`ArchError::OperandOutOfRange`] when a weight lies outside the
    ///   width's two's-complement range (truncating it to `width.bits()`
    ///   bits would silently change its value).
    pub fn execute_dense_tile_for_width(
        &mut self,
        filters: &[Vec<i32>],
        inputs: &[i8],
        ipu: &InputPreprocessor,
        width: OperandWidth,
    ) -> Result<TileExecution, ArchError> {
        let refs: Vec<&[i32]> = filters.iter().map(Vec::as_slice).collect();
        self.dense_tile_impl(&refs, inputs, ipu, width)
    }

    fn dense_tile_impl<T: Copy + Into<i32>>(
        &mut self,
        filters: &[&[T]],
        inputs: &[i8],
        ipu: &InputPreprocessor,
        width: OperandWidth,
    ) -> Result<TileExecution, ArchError> {
        self.validate_dense(filters, inputs.len(), width, "inputs")?;
        let writes = self.load_dense_planes(filters, width);
        let mut exec = self.execute_planes(inputs, ipu);
        exec.stats.cell_writes = writes;
        Ok(exec)
    }

    /// Shared sparse validation; `weights_len` is the reference length every
    /// filter must match (the input count for the monolithic entry points,
    /// the first filter's weight count for load-only).
    fn validate_sparse(
        &self,
        filters: &[FilterMetadata],
        weights_len: usize,
        right: &'static str,
    ) -> Result<(), ArchError> {
        let threshold = filters.iter().map(|f| f.threshold).max().unwrap_or(0).max(1);
        let capacity = self.config.filters_per_macro(threshold)?;
        if filters.len() > capacity {
            return Err(ArchError::CapacityExceeded {
                resource: "filters",
                requested: filters.len(),
                available: capacity,
            });
        }
        if weights_len > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: weights_len,
                available: self.config.weights_per_filter_capacity(),
            });
        }
        for filter in filters {
            if filter.weights.len() != weights_len {
                return Err(ArchError::LengthMismatch {
                    left: "filter weights",
                    left_len: filter.weights.len(),
                    right,
                    right_len: weights_len,
                });
            }
        }
        Ok(())
    }

    fn validate_dense<T: Copy + Into<i32>>(
        &self,
        filters: &[&[T]],
        weights_len: usize,
        width: OperandWidth,
        right: &'static str,
    ) -> Result<(), ArchError> {
        let weight_bits = width.bits() as usize;
        if filters.len() > self.config.dense_filters_per_macro {
            return Err(ArchError::CapacityExceeded {
                resource: "filters",
                requested: filters.len(),
                available: self.config.dense_filters_per_macro,
            });
        }
        if weights_len > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: weights_len,
                available: self.config.weights_per_filter_capacity(),
            });
        }
        if weight_bits * filters.len() > self.config.dbmus_per_compartment {
            return Err(ArchError::CapacityExceeded {
                resource: "weight bit columns",
                requested: weight_bits * filters.len(),
                available: self.config.dbmus_per_compartment,
            });
        }
        for filter in filters {
            if filter.len() != weights_len {
                return Err(ArchError::LengthMismatch {
                    left: "filter weights",
                    left_len: filter.len(),
                    right,
                    right_len: weights_len,
                });
            }
            if let Some(&value) = filter.iter().find(|&&w| !width.contains(w.into())) {
                return Err(ArchError::OperandOutOfRange {
                    value: value.into(),
                    bits: width.bits(),
                });
            }
        }
        Ok(())
    }

    /// Packs a validated sparse tile into shift/sign bit-planes. Weight `j`
    /// of filter `f` maps to compartment `j mod C`, row `j div C`, columns
    /// `[f·slots, f·slots + slots)` — the same mapping the scalar reference
    /// writes cell by cell.
    fn load_sparse_planes(&mut self, filters: &[FilterMetadata], weights_len: usize) -> u64 {
        let compartments = self.config.compartments_per_macro;
        let threshold = filters.iter().map(|f| f.threshold).max().unwrap_or(0).max(1);
        let slots = threshold as usize;
        let rows = weights_len.div_ceil(compartments);
        let words = compartments.div_ceil(64);
        let shifts = filters.iter().map(|f| 2 * f.width.blocks()).max().unwrap_or(0);
        let mut planes = vec![0u64; filters.len() * rows * shifts * 2 * words];
        let mut row_has_bits = vec![false; filters.len() * rows];
        let mut pruned_cells = 0u64;
        let mut cell_writes = 0u64;
        for (f, filter) in filters.iter().enumerate() {
            for (j, weight) in filter.weights.iter().enumerate() {
                let c = j % compartments;
                let r = j / compartments;
                if weight.stored() == 0 {
                    // A value-pruned weight: its φ_th slots are allocated but
                    // never written.
                    pruned_cells += u64::from(filter.threshold);
                }
                for block in weight.slots.iter().flatten() {
                    let k = 2 * usize::from(block.db_index) + usize::from(block.high);
                    let sign = usize::from(matches!(block.sign, Sign::Negative));
                    let idx = (((f * rows + r) * shifts + k) * 2 + sign) * words + c / 64;
                    planes[idx] |= 1u64 << (c % 64);
                    row_has_bits[f * rows + r] = true;
                    cell_writes += 1;
                }
            }
        }
        self.tile = LoadedTile::Sparse(SparsePlanes {
            filters: filters.len(),
            weights_len,
            slots,
            shifts,
            rows,
            words,
            planes,
            cell_writes,
            row_has_bits,
            pruned_cells,
        });
        cell_writes
    }

    /// Packs a validated dense tile into weight-bit planes (same weight →
    /// compartment/row mapping as the sparse load, columns `f·bits + b`).
    fn load_dense_planes<T: Copy + Into<i32>>(
        &mut self,
        filters: &[&[T]],
        width: OperandWidth,
    ) -> u64 {
        let compartments = self.config.compartments_per_macro;
        let weight_bits = width.bits() as usize;
        let weights_len = filters.first().map_or(0, |f| f.len());
        let rows = weights_len.div_ceil(compartments);
        let words = compartments.div_ceil(64);
        let mut planes = vec![0u64; filters.len() * rows * weight_bits * words];
        for (f, filter) in filters.iter().enumerate() {
            for (j, &w) in filter.iter().enumerate() {
                let c = j % compartments;
                let r = j / compartments;
                let w: i32 = w.into();
                for b in 0..weight_bits {
                    if (w as u32 >> b) & 1 == 1 {
                        let idx = ((f * rows + r) * weight_bits + b) * words + c / 64;
                        planes[idx] |= 1u64 << (c % 64);
                    }
                }
            }
        }
        // Every bit-cell of every weight is written, set or not.
        let cell_writes = (filters.len() * weights_len * weight_bits) as u64;
        self.tile = LoadedTile::Dense(DensePlanes {
            filters: filters.len(),
            weights_len,
            weight_bits,
            rows,
            words,
            planes,
            cell_writes,
        });
        cell_writes
    }

    /// The word-packed compute phase. Bit-serial over the IPU-selected
    /// columns, row by row, exactly like the scalar reference — but each
    /// `(filter, column)` reduction is a handful of AND + popcount words.
    fn execute_planes(&self, inputs: &[i8], ipu: &InputPreprocessor) -> TileExecution {
        let compartments = self.config.compartments_per_macro;
        let tree = CsdAdderTree;
        let mut stats = MacroComputeStats::default();
        let filter_count = match &self.tile {
            LoadedTile::None => 0,
            LoadedTile::Sparse(t) => t.filters,
            LoadedTile::Dense(t) => t.filters,
        };
        let mut ppus: Vec<PostProcessingUnit> = vec![PostProcessingUnit::new(); filter_count];
        let mut packed = PackedColumns::new();
        let rows_used = inputs.len().div_ceil(compartments);
        for row in 0..rows_used {
            let start = row * compartments;
            let end = (start + compartments).min(inputs.len());
            let group = &inputs[start..end];
            ipu.process_packed(group, &mut packed);
            stats.skipped_columns += packed.skipped_columns() as u64;
            for col in 0..packed.len() {
                stats.compute_cycles += 1;
                let mask = packed.mask(col);
                let position = packed.position(col);
                match &self.tile {
                    LoadedTile::None => {}
                    LoadedTile::Sparse(t) => {
                        let per_filter = t.shifts * 2 * t.words;
                        for (f, ppu) in ppus.iter_mut().enumerate() {
                            // A (filter, row) segment with no stored bits —
                            // e.g. a fully value-pruned stretch of weights —
                            // contributes exactly zero: elide the word
                            // reductions and the PPU update, charging the
                            // same counters the issued cycle would.
                            stats.cell_reads += (group.len() * t.slots) as u64;
                            stats.adder_reductions += 1;
                            stats.ppu_operations += 1;
                            if !t.row_has_bits[f * t.rows + row] {
                                continue;
                            }
                            let base = (f * t.rows + row) * per_filter;
                            let (partial, effective) = tree.reduce_planes(
                                mask,
                                &t.planes[base..base + per_filter],
                                t.words,
                            );
                            stats.effective_cell_ops += effective;
                            ppu.accumulate_bit(partial, position);
                        }
                    }
                    LoadedTile::Dense(t) => {
                        let per_filter = t.weight_bits * t.words;
                        for (f, ppu) in ppus.iter_mut().enumerate() {
                            let base = (f * t.rows + row) * per_filter;
                            let (partial, effective) = tree.reduce_dense_planes(
                                mask,
                                &t.planes[base..base + per_filter],
                                t.words,
                            );
                            stats.cell_reads += (group.len() * t.weight_bits) as u64;
                            stats.effective_cell_ops += effective;
                            stats.adder_reductions += 1;
                            ppu.accumulate_bit(partial, position);
                            stats.ppu_operations += 1;
                        }
                    }
                }
            }
        }
        let outputs = ppus.iter_mut().map(PostProcessingUnit::drain).collect();
        TileExecution { outputs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_fta::{FilterApprox, QueryTables};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn reference_dot<T: Into<i64> + Copy>(weights: &[T], inputs: &[i8]) -> i64 {
        weights.iter().zip(inputs).map(|(&w, &x)| w.into() * i64::from(x)).sum()
    }

    fn metadata_for(weights: &[i8], threshold: u32) -> FilterMetadata {
        let tables = QueryTables::new();
        let approx = FilterApprox::approximate_with_threshold(weights, threshold, &tables).unwrap();
        // The inputs to the macro are the *approximated* weights, so build the
        // metadata from values that are already representable.
        FilterMetadata::from_filter(0, &approx)
    }

    #[test]
    fn sparse_tile_matches_reference_dot_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tables = QueryTables::new();
        for trial in 0..8 {
            let len = 24 + trial;
            let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let approx = FilterApprox::approximate(&raw, &tables).unwrap();
            let meta = FilterMetadata::from_filter(0, &approx);
            let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
            let exec =
                pim.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
            assert_eq!(exec.outputs.len(), 1);
            assert_eq!(exec.outputs[0], reference_dot(approx.values(), &inputs), "trial {trial}");
        }
    }

    #[test]
    fn multiple_filters_compute_in_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tables = QueryTables::new();
        let len = 40usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let mut metas = Vec::new();
        let mut approxes = Vec::new();
        for _ in 0..8 {
            let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let approx = FilterApprox::approximate_with_threshold(&raw, 2, &tables).unwrap();
            metas.push(FilterMetadata::from_filter(0, &approx));
            approxes.push(approx);
        }
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim.execute_sparse_tile(&metas, &inputs, &InputPreprocessor::new()).unwrap();
        for (out, approx) in exec.outputs.iter().zip(&approxes) {
            assert_eq!(*out, reference_dot(approx.values(), &inputs));
        }
        assert!(exec.stats.compute_cycles > 0);
        assert!(exec.stats.dynamic_utilization() <= 1.0);
    }

    #[test]
    fn load_once_execute_many_matches_monolithic_execution() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let len = 48usize;
        let metas: Vec<FilterMetadata> = (0..4)
            .map(|_| {
                let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
                metadata_for(&raw, 2)
            })
            .collect();
        let mut loaded = PimMacro::new(ArchConfig::paper()).unwrap();
        let writes = loaded.load_sparse_tile(&metas).unwrap();
        assert!(writes > 0);
        for _ in 0..3 {
            let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let split = loaded.execute_loaded(&inputs, &InputPreprocessor::new()).unwrap();
            let mut fresh = PimMacro::new(ArchConfig::paper()).unwrap();
            let mono =
                fresh.execute_sparse_tile(&metas, &inputs, &InputPreprocessor::new()).unwrap();
            assert_eq!(split.outputs, mono.outputs);
            // The split execution pays no write cost; everything else matches.
            assert_eq!(split.stats.cell_writes, 0);
            assert_eq!(writes, mono.stats.cell_writes);
            let mut adjusted = split.stats;
            adjusted.cell_writes = mono.stats.cell_writes;
            assert_eq!(adjusted, mono.stats);
        }
    }

    #[test]
    fn execute_without_load_and_mismatched_inputs_error() {
        let pim = PimMacro::new(ArchConfig::paper()).unwrap();
        assert_eq!(
            pim.execute_loaded(&[1i8, 2], &InputPreprocessor::new()),
            Err(ArchError::NoTileLoaded)
        );
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        pim.load_sparse_tile(&[metadata_for(&[1, 2, 3], 1)]).unwrap();
        assert!(matches!(
            pim.execute_loaded(&[1i8, 2], &InputPreprocessor::new()),
            Err(ArchError::LengthMismatch { .. })
        ));
        pim.reset();
        assert_eq!(
            pim.execute_loaded(&[1i8, 2, 3], &InputPreprocessor::new()),
            Err(ArchError::NoTileLoaded)
        );
        // Filters disagreeing on weight count are rejected at load time.
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        assert!(matches!(
            pim.load_sparse_tile(&[metadata_for(&[1, 2, 3], 1), metadata_for(&[1, 2], 1)]),
            Err(ArchError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn dense_load_execute_split_matches_monolithic_execution() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let len = 37usize;
        let filters: Vec<Vec<i8>> = (0..2).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let mut loaded = PimMacro::new(ArchConfig::paper()).unwrap();
        let writes = loaded.load_dense_tile(&filters).unwrap();
        let split = loaded.execute_loaded(&inputs, &InputPreprocessor::without_sparsity()).unwrap();
        let mut fresh = PimMacro::new(ArchConfig::paper()).unwrap();
        let mono = fresh
            .execute_dense_tile(&filters, &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        assert_eq!(split.outputs, mono.outputs);
        assert_eq!(writes, mono.stats.cell_writes);
    }

    #[test]
    fn dense_tile_matches_reference_dot_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let len = 33usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let filters: Vec<Vec<i8>> = (0..2).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim
            .execute_dense_tile(&filters, &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        for (out, filter) in exec.outputs.iter().zip(&filters) {
            assert_eq!(*out, reference_dot(filter, &inputs));
        }
    }

    #[test]
    fn wide_dense_tiles_match_reference_dot_products() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let len = 29usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        for width in OperandWidth::all() {
            let filters_per_macro = (ArchConfig::paper().dbmus_per_compartment
                / width.bits() as usize)
                .min(ArchConfig::paper().dense_filters_per_macro);
            let filters: Vec<Vec<i32>> = (0..filters_per_macro)
                .map(|_| {
                    (0..len).map(|_| rng.gen_range(width.min_value()..=width.max_value())).collect()
                })
                .collect();
            let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
            let exec = pim
                .execute_dense_tile_for_width(
                    &filters,
                    &inputs,
                    &InputPreprocessor::without_sparsity(),
                    width,
                )
                .unwrap();
            for (out, filter) in exec.outputs.iter().zip(&filters) {
                assert_eq!(*out, reference_dot(filter, &inputs), "{width}");
            }
        }
        // Two INT16 filters exceed the 16 DBMU columns of a compartment.
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let too_many = vec![vec![1i32; 4]; 2];
        assert!(matches!(
            pim.execute_dense_tile_for_width(
                &too_many,
                &[1i8; 4],
                &InputPreprocessor::new(),
                OperandWidth::Int16,
            ),
            Err(ArchError::CapacityExceeded { resource: "weight bit columns", .. })
        ));
        // Out-of-range weights are rejected instead of silently truncated
        // (8 would read back as -8 from four bit-cells).
        for value in [8i32, -9] {
            assert_eq!(
                pim.execute_dense_tile_for_width(
                    &[vec![value]],
                    &[1i8],
                    &InputPreprocessor::new(),
                    OperandWidth::Int4,
                ),
                Err(ArchError::OperandOutOfRange { value, bits: 4 })
            );
        }
    }

    #[test]
    fn input_sparsity_reduces_cycles_without_changing_results() {
        let tables = QueryTables::new();
        let len = 32usize;
        // Small non-negative activations: high-order bit columns are all zero.
        let inputs: Vec<i8> = (0..len).map(|i| (i % 4) as i8).collect();
        let raw: Vec<i8> = (0..len).map(|i| ((i * 37) % 120) as i8 - 60).collect();
        let approx = FilterApprox::approximate(&raw, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);

        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let dense_front = pim
            .execute_sparse_tile(
                std::slice::from_ref(&meta),
                &inputs,
                &InputPreprocessor::without_sparsity(),
            )
            .unwrap();
        let mut pim2 = PimMacro::new(ArchConfig::paper()).unwrap();
        let sparse_front =
            pim2.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
        assert_eq!(dense_front.outputs, sparse_front.outputs);
        assert!(sparse_front.stats.compute_cycles < dense_front.stats.compute_cycles);
        assert!(sparse_front.stats.skipped_columns > 0);
    }

    #[test]
    fn sparse_utilization_exceeds_dense_utilization() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let len = 64usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen_range(0i8..=63)).collect();
        let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let meta = metadata_for(&raw, 2);

        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let sparse = pim
            .execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        let mut pim2 = PimMacro::new(ArchConfig::paper()).unwrap();
        let dense = pim2
            .execute_dense_tile(
                std::slice::from_ref(&raw),
                &inputs,
                &InputPreprocessor::without_sparsity(),
            )
            .unwrap();
        assert!(
            sparse.stats.dynamic_utilization() > dense.stats.dynamic_utilization(),
            "sparse {} vs dense {}",
            sparse.stats.dynamic_utilization(),
            dense.stats.dynamic_utilization()
        );
    }

    #[test]
    fn capacity_violations_are_reported() {
        let tables = QueryTables::new();
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        // Too many filters at threshold 2 (max 8).
        let weights: Vec<i8> = (0..16).map(|i| i as i8 + 1).collect();
        let approx = FilterApprox::approximate_with_threshold(&weights, 2, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        let metas = vec![meta; 9];
        let inputs = vec![1i8; 16];
        assert!(matches!(
            pim.execute_sparse_tile(&metas, &inputs, &InputPreprocessor::new()),
            Err(ArchError::CapacityExceeded { .. })
        ));
        // Too many weights per filter.
        let long: Vec<i8> = vec![1; 2000];
        let approx = FilterApprox::approximate_with_threshold(&long, 1, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        assert!(pim
            .execute_sparse_tile(&[meta], &vec![1i8; 2000], &InputPreprocessor::new())
            .is_err());
        // Dense: more than two filters.
        let filters: Vec<Vec<i8>> = vec![vec![1i8; 8]; 3];
        assert!(pim.execute_dense_tile(&filters, &[1i8; 8], &InputPreprocessor::new()).is_err());
        // Mismatched lengths.
        let approx = FilterApprox::approximate_with_threshold(&[1, 2, 3], 1, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        assert!(matches!(
            pim.execute_sparse_tile(&[meta], &[1, 2], &InputPreprocessor::new()),
            Err(ArchError::LengthMismatch { .. })
        ));
    }
}
