//! The customized SRAM-PIM macro: bit-accurate sparse and dense execution.
//!
//! The macro is organised as `compartments × DBMU-columns × rows` 6T cells.
//! Every compartment receives one broadcast input feature per cycle; a filter
//! occupies `φ_th` DBMU columns (one per stored Complementary Pattern block)
//! in every compartment. The CSD adder tree reduces a filter's contributions
//! across compartments and block slots, and the filter's post-processing unit
//! shift-and-adds the result over the bit-serial input columns emitted by the
//! IPU.
//!
//! The same storage array also supports the *dense baseline* mapping the
//! paper compares against: eight plain binary bit-cells per weight, two
//! filters per macro, no zero-bit skipping.

use dbpim_csd::OperandWidth;
use dbpim_fta::metadata::FilterMetadata;
use serde::{Deserialize, Serialize};

use crate::adder_tree::{CellMeta, CsdAdderTree};
use crate::config::ArchConfig;
use crate::dbmu::Dbmu;
use crate::error::ArchError;
use crate::ipu::InputPreprocessor;
use crate::ppu::PostProcessingUnit;

/// Event counts of one tile execution on a macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MacroComputeStats {
    /// Compute cycles spent (one per emitted input bit column per row).
    pub compute_cycles: u64,
    /// Input bit columns skipped by the IPU.
    pub skipped_columns: u64,
    /// Cell/LPU read-compute operations issued.
    pub cell_reads: u64,
    /// Cell operations that produced a non-zero contribution.
    pub effective_cell_ops: u64,
    /// CSD adder-tree reductions performed.
    pub adder_reductions: u64,
    /// Post-processing shift-and-add operations performed.
    pub ppu_operations: u64,
    /// Word-line writes performed while loading the tile.
    pub cell_writes: u64,
}

impl MacroComputeStats {
    /// Actual utilization of the executed tile: effective cell operations
    /// over issued cell operations (Eq. 1 evaluated dynamically).
    #[must_use]
    pub fn dynamic_utilization(&self) -> f64 {
        if self.cell_reads == 0 {
            return 1.0;
        }
        self.effective_cell_ops as f64 / self.cell_reads as f64
    }
}

/// Result of executing one tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileExecution {
    /// One accumulated dot product per filter of the tile.
    pub outputs: Vec<i64>,
    /// Event counts for the execution.
    pub stats: MacroComputeStats,
}

/// One compartment: a row of DBMU columns sharing the broadcast input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Compartment {
    dbmus: Vec<Dbmu>,
}

impl Compartment {
    fn new(columns: usize, rows: usize) -> Self {
        Self { dbmus: (0..columns).map(|_| Dbmu::new(rows)).collect() }
    }
}

/// The bit-accurate PIM macro model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimMacro {
    config: ArchConfig,
    compartments: Vec<Compartment>,
    /// Metadata mirror: `meta[compartment][column][row]`.
    meta: Vec<Vec<Vec<Option<CellMeta>>>>,
}

impl PimMacro {
    /// Creates an empty macro with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate configuration.
    pub fn new(config: ArchConfig) -> Result<Self, ArchError> {
        config.validate()?;
        let compartments = (0..config.compartments_per_macro)
            .map(|_| Compartment::new(config.dbmus_per_compartment, config.rows_per_dbmu))
            .collect();
        let meta = vec![
            vec![vec![None; config.rows_per_dbmu]; config.dbmus_per_compartment];
            config.compartments_per_macro
        ];
        Ok(Self { config, compartments, meta })
    }

    /// The macro's geometry.
    #[must_use]
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Clears every cell and its metadata.
    pub fn reset(&mut self) {
        for compartment in &mut self.compartments {
            for dbmu in &mut compartment.dbmus {
                dbmu.reset();
            }
        }
        for compartment in &mut self.meta {
            for column in compartment {
                column.fill(None);
            }
        }
    }

    /// Executes one DB-PIM (sparse) tile: `filters` hold the dyadic-block
    /// metadata of every filter mapped onto this macro, `inputs` the INT8
    /// input features the tile multiplies against (one per weight position).
    ///
    /// Returns the per-filter signed dot products and the event counts.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters or weights do not
    ///   fit the macro geometry.
    /// * [`ArchError::LengthMismatch`] when a filter's weight count differs
    ///   from the number of inputs.
    pub fn execute_sparse_tile(
        &mut self,
        filters: &[FilterMetadata],
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let threshold = filters.iter().map(|f| f.threshold).max().unwrap_or(0).max(1);
        let capacity = self.config.filters_per_macro(threshold)?;
        if filters.len() > capacity {
            return Err(ArchError::CapacityExceeded {
                resource: "filters",
                requested: filters.len(),
                available: capacity,
            });
        }
        if inputs.len() > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: inputs.len(),
                available: self.config.weights_per_filter_capacity(),
            });
        }
        for filter in filters {
            if filter.weights.len() != inputs.len() {
                return Err(ArchError::LengthMismatch {
                    left: "filter weights",
                    left_len: filter.weights.len(),
                    right: "inputs",
                    right_len: inputs.len(),
                });
            }
        }

        self.reset();
        let mut stats = MacroComputeStats::default();
        let compartments = self.config.compartments_per_macro;
        let slots = threshold as usize;

        // Load phase: weight j of filter f goes to compartment (j mod C),
        // row (j div C), columns [f*slots, f*slots + slots).
        for (f, filter) in filters.iter().enumerate() {
            for (j, weight) in filter.weights.iter().enumerate() {
                let compartment = j % compartments;
                let row = j / compartments;
                for (s, slot) in weight.slots.iter().enumerate() {
                    let column = f * slots + s;
                    if let Some(block) = slot {
                        self.compartments[compartment].dbmus[column].write_row(row, block.high)?;
                        self.meta[compartment][column][row] =
                            Some(CellMeta::new(block.db_index, block.sign));
                        stats.cell_writes += 1;
                    } else {
                        self.compartments[compartment].dbmus[column].clear_row(row)?;
                        self.meta[compartment][column][row] = None;
                    }
                }
            }
        }

        // Compute phase: bit-serial over the IPU-selected columns, row by row.
        let tree = CsdAdderTree;
        let mut ppus: Vec<PostProcessingUnit> = vec![PostProcessingUnit::new(); filters.len()];
        let rows_used = inputs.len().div_ceil(compartments);
        for row in 0..rows_used {
            let start = row * compartments;
            let end = (start + compartments).min(inputs.len());
            let group = &inputs[start..end];
            let ipu_result = ipu.process(group);
            stats.skipped_columns += ipu_result.skipped_columns as u64;
            for column_bits in &ipu_result.columns {
                stats.compute_cycles += 1;
                for (f, ppu) in ppus.iter_mut().enumerate() {
                    let mut operands = Vec::with_capacity(group.len() * slots);
                    for (c, &input_bit) in column_bits.bits.iter().enumerate() {
                        for s in 0..slots {
                            let column = f * slots + s;
                            let out = self.compartments[c].dbmus[column].compute(row, input_bit)?;
                            let meta = self.meta[c][column][row];
                            stats.cell_reads += 1;
                            if meta.is_some() && out.block_magnitude() != 0 {
                                stats.effective_cell_ops += 1;
                            }
                            operands.push((out, meta));
                        }
                    }
                    let (partial, _) = tree.reduce(&operands);
                    stats.adder_reductions += 1;
                    ppu.accumulate_bit(partial, column_bits.position);
                    stats.ppu_operations += 1;
                }
            }
        }
        let outputs = ppus.iter_mut().map(PostProcessingUnit::drain).collect();
        Ok(TileExecution { outputs, stats })
    }

    /// Executes one dense-baseline tile: weights are stored as eight plain
    /// binary bit-cells each, `dense_filters_per_macro` filters at a time.
    ///
    /// This is the INT8 instance of
    /// [`execute_dense_tile_for_width`](Self::execute_dense_tile_for_width).
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters or weights do not
    ///   fit.
    /// * [`ArchError::LengthMismatch`] when a filter's weight count differs
    ///   from the number of inputs.
    pub fn execute_dense_tile(
        &mut self,
        filters: &[Vec<i8>],
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let wide: Vec<Vec<i32>> =
            filters.iter().map(|f| f.iter().map(|&w| i32::from(w)).collect()).collect();
        self.execute_dense_tile_for_width(&wide, inputs, ipu, OperandWidth::Int8)
    }

    /// Executes one dense-baseline tile at an arbitrary weight width:
    /// every weight occupies `width.bits()` plain binary bit-cells (its
    /// two's-complement representation over that width), so wider operands
    /// consume proportionally more DBMU columns per filter.
    ///
    /// # Errors
    ///
    /// * [`ArchError::CapacityExceeded`] when the filters, weights or weight
    ///   bit columns do not fit the macro geometry.
    /// * [`ArchError::LengthMismatch`] when a filter's weight count differs
    ///   from the number of inputs.
    /// * [`ArchError::OperandOutOfRange`] when a weight lies outside the
    ///   width's two's-complement range (truncating it to `width.bits()`
    ///   bits would silently change its value).
    pub fn execute_dense_tile_for_width(
        &mut self,
        filters: &[Vec<i32>],
        inputs: &[i8],
        ipu: &InputPreprocessor,
        width: OperandWidth,
    ) -> Result<TileExecution, ArchError> {
        let weight_bits = width.bits() as usize;
        if filters.len() > self.config.dense_filters_per_macro {
            return Err(ArchError::CapacityExceeded {
                resource: "filters",
                requested: filters.len(),
                available: self.config.dense_filters_per_macro,
            });
        }
        if inputs.len() > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: inputs.len(),
                available: self.config.weights_per_filter_capacity(),
            });
        }
        if weight_bits * filters.len() > self.config.dbmus_per_compartment {
            return Err(ArchError::CapacityExceeded {
                resource: "weight bit columns",
                requested: weight_bits * filters.len(),
                available: self.config.dbmus_per_compartment,
            });
        }
        for filter in filters {
            if filter.len() != inputs.len() {
                return Err(ArchError::LengthMismatch {
                    left: "filter weights",
                    left_len: filter.len(),
                    right: "inputs",
                    right_len: inputs.len(),
                });
            }
            if let Some(&value) = filter.iter().find(|&&w| !width.contains(w)) {
                return Err(ArchError::OperandOutOfRange { value, bits: width.bits() });
            }
        }

        self.reset();
        let mut stats = MacroComputeStats::default();
        let compartments = self.config.compartments_per_macro;
        // Load: weight bit b of weight j of filter f in compartment (j mod C),
        // row (j div C), column f*bits + b. The low `width.bits()` bits of
        // the two's-complement value are exact for any in-range weight.
        for (f, filter) in filters.iter().enumerate() {
            for (j, &w) in filter.iter().enumerate() {
                let compartment = j % compartments;
                let row = j / compartments;
                for b in 0..weight_bits {
                    let column = f * weight_bits + b;
                    let bit = (w as u32 >> b) & 1 == 1;
                    self.compartments[compartment].dbmus[column].write_row(row, bit)?;
                    stats.cell_writes += 1;
                }
            }
        }

        let tree = CsdAdderTree;
        let mut ppus: Vec<PostProcessingUnit> = vec![PostProcessingUnit::new(); filters.len()];
        let rows_used = inputs.len().div_ceil(compartments);
        for row in 0..rows_used {
            let start = row * compartments;
            let end = (start + compartments).min(inputs.len());
            let group = &inputs[start..end];
            let ipu_result = ipu.process(group);
            stats.skipped_columns += ipu_result.skipped_columns as u64;
            for column_bits in &ipu_result.columns {
                stats.compute_cycles += 1;
                for (f, ppu) in ppus.iter_mut().enumerate() {
                    let mut partial = 0i32;
                    for b in 0..weight_bits {
                        let column = f * weight_bits + b;
                        let mut products = Vec::with_capacity(group.len());
                        for (c, &input_bit) in column_bits.bits.iter().enumerate() {
                            // In dense mode the stored bit is the cell's Q node.
                            let out = self.compartments[c].dbmus[column].compute(row, input_bit)?;
                            stats.cell_reads += 1;
                            if out.o_q {
                                stats.effective_cell_ops += 1;
                            }
                            products.push(out.o_q);
                        }
                        let (reduced, _) =
                            tree.reduce_dense(&products, b as u32, b == weight_bits - 1);
                        partial += reduced;
                    }
                    stats.adder_reductions += 1;
                    ppu.accumulate_bit(partial, column_bits.position);
                    stats.ppu_operations += 1;
                }
            }
        }
        let outputs = ppus.iter_mut().map(PostProcessingUnit::drain).collect();
        Ok(TileExecution { outputs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_fta::{FilterApprox, QueryTables};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn reference_dot<T: Into<i64> + Copy>(weights: &[T], inputs: &[i8]) -> i64 {
        weights.iter().zip(inputs).map(|(&w, &x)| w.into() * i64::from(x)).sum()
    }

    fn metadata_for(weights: &[i8], threshold: u32) -> FilterMetadata {
        let tables = QueryTables::new();
        let approx = FilterApprox::approximate_with_threshold(weights, threshold, &tables).unwrap();
        // The inputs to the macro are the *approximated* weights, so build the
        // metadata from values that are already representable.
        FilterMetadata::from_filter(0, &approx)
    }

    #[test]
    fn sparse_tile_matches_reference_dot_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tables = QueryTables::new();
        for trial in 0..8 {
            let len = 24 + trial;
            let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let approx = FilterApprox::approximate(&raw, &tables).unwrap();
            let meta = FilterMetadata::from_filter(0, &approx);
            let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
            let exec =
                pim.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
            assert_eq!(exec.outputs.len(), 1);
            assert_eq!(exec.outputs[0], reference_dot(approx.values(), &inputs), "trial {trial}");
        }
    }

    #[test]
    fn multiple_filters_compute_in_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let tables = QueryTables::new();
        let len = 40usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let mut metas = Vec::new();
        let mut approxes = Vec::new();
        for _ in 0..8 {
            let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let approx = FilterApprox::approximate_with_threshold(&raw, 2, &tables).unwrap();
            metas.push(FilterMetadata::from_filter(0, &approx));
            approxes.push(approx);
        }
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim.execute_sparse_tile(&metas, &inputs, &InputPreprocessor::new()).unwrap();
        for (out, approx) in exec.outputs.iter().zip(&approxes) {
            assert_eq!(*out, reference_dot(approx.values(), &inputs));
        }
        assert!(exec.stats.compute_cycles > 0);
        assert!(exec.stats.dynamic_utilization() <= 1.0);
    }

    #[test]
    fn dense_tile_matches_reference_dot_product() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let len = 33usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let filters: Vec<Vec<i8>> = (0..2).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim
            .execute_dense_tile(&filters, &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        for (out, filter) in exec.outputs.iter().zip(&filters) {
            assert_eq!(*out, reference_dot(filter, &inputs));
        }
    }

    #[test]
    fn wide_dense_tiles_match_reference_dot_products() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let len = 29usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        for width in OperandWidth::all() {
            let filters_per_macro = (ArchConfig::paper().dbmus_per_compartment
                / width.bits() as usize)
                .min(ArchConfig::paper().dense_filters_per_macro);
            let filters: Vec<Vec<i32>> = (0..filters_per_macro)
                .map(|_| {
                    (0..len).map(|_| rng.gen_range(width.min_value()..=width.max_value())).collect()
                })
                .collect();
            let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
            let exec = pim
                .execute_dense_tile_for_width(
                    &filters,
                    &inputs,
                    &InputPreprocessor::without_sparsity(),
                    width,
                )
                .unwrap();
            for (out, filter) in exec.outputs.iter().zip(&filters) {
                assert_eq!(*out, reference_dot(filter, &inputs), "{width}");
            }
        }
        // Two INT16 filters exceed the 16 DBMU columns of a compartment.
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let too_many = vec![vec![1i32; 4]; 2];
        assert!(matches!(
            pim.execute_dense_tile_for_width(
                &too_many,
                &[1i8; 4],
                &InputPreprocessor::new(),
                OperandWidth::Int16,
            ),
            Err(ArchError::CapacityExceeded { resource: "weight bit columns", .. })
        ));
        // Out-of-range weights are rejected instead of silently truncated
        // (8 would read back as -8 from four bit-cells).
        for value in [8i32, -9] {
            assert_eq!(
                pim.execute_dense_tile_for_width(
                    &[vec![value]],
                    &[1i8],
                    &InputPreprocessor::new(),
                    OperandWidth::Int4,
                ),
                Err(ArchError::OperandOutOfRange { value, bits: 4 })
            );
        }
    }

    #[test]
    fn input_sparsity_reduces_cycles_without_changing_results() {
        let tables = QueryTables::new();
        let len = 32usize;
        // Small non-negative activations: high-order bit columns are all zero.
        let inputs: Vec<i8> = (0..len).map(|i| (i % 4) as i8).collect();
        let raw: Vec<i8> = (0..len).map(|i| ((i * 37) % 120) as i8 - 60).collect();
        let approx = FilterApprox::approximate(&raw, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);

        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let dense_front = pim
            .execute_sparse_tile(
                std::slice::from_ref(&meta),
                &inputs,
                &InputPreprocessor::without_sparsity(),
            )
            .unwrap();
        let mut pim2 = PimMacro::new(ArchConfig::paper()).unwrap();
        let sparse_front =
            pim2.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
        assert_eq!(dense_front.outputs, sparse_front.outputs);
        assert!(sparse_front.stats.compute_cycles < dense_front.stats.compute_cycles);
        assert!(sparse_front.stats.skipped_columns > 0);
    }

    #[test]
    fn sparse_utilization_exceeds_dense_utilization() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let len = 64usize;
        let inputs: Vec<i8> = (0..len).map(|_| rng.gen_range(0i8..=63)).collect();
        let raw: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
        let meta = metadata_for(&raw, 2);

        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let sparse = pim
            .execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        let mut pim2 = PimMacro::new(ArchConfig::paper()).unwrap();
        let dense = pim2
            .execute_dense_tile(
                std::slice::from_ref(&raw),
                &inputs,
                &InputPreprocessor::without_sparsity(),
            )
            .unwrap();
        assert!(
            sparse.stats.dynamic_utilization() > dense.stats.dynamic_utilization(),
            "sparse {} vs dense {}",
            sparse.stats.dynamic_utilization(),
            dense.stats.dynamic_utilization()
        );
    }

    #[test]
    fn capacity_violations_are_reported() {
        let tables = QueryTables::new();
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        // Too many filters at threshold 2 (max 8).
        let weights: Vec<i8> = (0..16).map(|i| i as i8 + 1).collect();
        let approx = FilterApprox::approximate_with_threshold(&weights, 2, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        let metas = vec![meta; 9];
        let inputs = vec![1i8; 16];
        assert!(matches!(
            pim.execute_sparse_tile(&metas, &inputs, &InputPreprocessor::new()),
            Err(ArchError::CapacityExceeded { .. })
        ));
        // Too many weights per filter.
        let long: Vec<i8> = vec![1; 2000];
        let approx = FilterApprox::approximate_with_threshold(&long, 1, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        assert!(pim
            .execute_sparse_tile(&[meta], &vec![1i8; 2000], &InputPreprocessor::new())
            .is_err());
        // Dense: more than two filters.
        let filters: Vec<Vec<i8>> = vec![vec![1i8; 8]; 3];
        assert!(pim.execute_dense_tile(&filters, &[1i8; 8], &InputPreprocessor::new()).is_err());
        // Mismatched lengths.
        let approx = FilterApprox::approximate_with_threshold(&[1, 2, 3], 1, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        assert!(matches!(
            pim.execute_sparse_tile(&[meta], &[1, 2], &InputPreprocessor::new()),
            Err(ArchError::LengthMismatch { .. })
        ));
    }
}
