//! Post-processing unit (PPU): bit-serial shift-and-add accumulation.
//!
//! Every filter processed in parallel owns one PPU. Per cycle the PPU
//! receives the CSD adder tree's signed partial sum for one input bit
//! position, shifts it by that position — honouring the negative weight of a
//! signed input's most significant bit — and accumulates it into the
//! filter's partial-sum register. Across tiles the same accumulator also
//! merges partial sums (the `Accumulate` path of Fig. 5).

use serde::{Deserialize, Serialize};

/// Bit width of the (signed, two's-complement) bit-serial input operand.
pub const INPUT_BITS: u32 = 8;

/// One post-processing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PostProcessingUnit {
    accumulator: i64,
    operations: u64,
}

impl PostProcessingUnit {
    /// Creates a cleared PPU.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current accumulator value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.accumulator
    }

    /// Number of shift-and-add operations performed so far.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Accumulates one adder-tree partial sum produced for input bit
    /// position `bit` of a signed (two's-complement) input operand.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= INPUT_BITS`.
    pub fn accumulate_bit(&mut self, partial: i32, bit: u32) {
        assert!(bit < INPUT_BITS, "input bit position {bit} out of range");
        let shifted = i64::from(partial) << bit;
        if bit == INPUT_BITS - 1 {
            // Signed MSB: weight -2^7 for INT8 inputs.
            self.accumulator -= shifted;
        } else {
            self.accumulator += shifted;
        }
        self.operations += 1;
    }

    /// Accumulates a partial sum produced for an *unsigned* input operand bit
    /// (used when the input encoding is offset/unsigned, e.g. post-ReLU
    /// activations mapped to `[0, 255]`).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= INPUT_BITS`.
    pub fn accumulate_unsigned_bit(&mut self, partial: i32, bit: u32) {
        assert!(bit < INPUT_BITS, "input bit position {bit} out of range");
        self.accumulator += i64::from(partial) << bit;
        self.operations += 1;
    }

    /// Merges a previously produced partial sum (cross-tile accumulation).
    pub fn accumulate_psum(&mut self, psum: i64) {
        self.accumulator += psum;
        self.operations += 1;
    }

    /// Clears the accumulator (a new output element starts).
    pub fn reset(&mut self) {
        self.accumulator = 0;
    }

    /// Returns the accumulated value and clears the unit.
    pub fn drain(&mut self) -> i64 {
        let value = self.accumulator;
        self.accumulator = 0;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_bit_serial_reconstruction() {
        // Accumulating the per-bit dot products of a signed input must equal
        // the direct product. Take weight partials equal to w for every set
        // input bit of x.
        let cases: [(i32, i8); 6] = [(3, 5), (-7, 5), (3, -5), (-7, -128), (1, 127), (0, -1)];
        for (w, x) in cases {
            let mut ppu = PostProcessingUnit::new();
            for bit in 0..INPUT_BITS {
                let x_bit = (x as u8 >> bit) & 1;
                ppu.accumulate_bit(w * i32::from(x_bit), bit);
            }
            assert_eq!(ppu.value(), i64::from(w) * i64::from(x), "w={w} x={x}");
            assert_eq!(ppu.operations(), u64::from(INPUT_BITS));
        }
    }

    #[test]
    fn unsigned_bit_serial_reconstruction() {
        let mut ppu = PostProcessingUnit::new();
        let w = 9i32;
        let x = 200u8;
        for bit in 0..INPUT_BITS {
            let x_bit = (x >> bit) & 1;
            ppu.accumulate_unsigned_bit(w * i32::from(x_bit), bit);
        }
        assert_eq!(ppu.value(), i64::from(w) * i64::from(x));
    }

    #[test]
    fn psum_accumulation_and_drain() {
        let mut ppu = PostProcessingUnit::new();
        ppu.accumulate_psum(100);
        ppu.accumulate_psum(-30);
        assert_eq!(ppu.drain(), 70);
        assert_eq!(ppu.value(), 0);
        ppu.accumulate_psum(5);
        ppu.reset();
        assert_eq!(ppu.value(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        let mut ppu = PostProcessingUnit::new();
        ppu.accumulate_bit(1, 8);
    }
}
