//! Cell-at-a-time reference implementation of the PIM macro.
//!
//! This module preserves the original scalar macro model — one [`Dbmu`] per
//! `(compartment, column)`, a `meta` mirror of per-cell [`CellMeta`], every
//! cell touched individually through [`CsdAdderTree::reduce`] — as the
//! correctness oracle for the word-packed bit-plane kernels in
//! [`PimMacro`](crate::PimMacro). The differential suite
//! `tests/kernel_equivalence.rs` asserts outputs *and* every
//! [`MacroComputeStats`] counter identical between the two; the `bench_core`
//! harness times both to record the packed kernels' speedup.
//!
//! Compiled only under `cfg(any(test, feature = "scalar-reference"))` so the
//! production library carries no dead scalar path.

use dbpim_csd::OperandWidth;
use dbpim_fta::metadata::FilterMetadata;

use crate::adder_tree::{CellMeta, CsdAdderTree};
use crate::config::ArchConfig;
use crate::dbmu::Dbmu;
use crate::error::ArchError;
use crate::ipu::InputPreprocessor;
use crate::macro_unit::{MacroComputeStats, TileExecution};
use crate::ppu::PostProcessingUnit;

/// One compartment: a row of DBMU columns sharing the broadcast input.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Compartment {
    dbmus: Vec<Dbmu>,
}

impl Compartment {
    fn new(columns: usize, rows: usize) -> Self {
        Self { dbmus: (0..columns).map(|_| Dbmu::new(rows)).collect() }
    }
}

/// The tile currently loaded into the scalar array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScalarTile {
    Sparse {
        /// Column stride per filter (`φ_th` of the tile).
        slots: usize,
        filters: usize,
        weights_len: usize,
    },
    Dense {
        weight_bits: usize,
        filters: usize,
        weights_len: usize,
    },
}

/// The original cell-at-a-time PIM macro model, kept as the reference kernel
/// for the bit-plane implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarPimMacro {
    config: ArchConfig,
    compartments: Vec<Compartment>,
    /// Metadata mirror: `meta[compartment][column][row]`.
    meta: Vec<Vec<Vec<Option<CellMeta>>>>,
    loaded: Option<ScalarTile>,
}

impl ScalarPimMacro {
    /// Creates an empty macro with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate configuration.
    pub fn new(config: ArchConfig) -> Result<Self, ArchError> {
        config.validate()?;
        let compartments = (0..config.compartments_per_macro)
            .map(|_| Compartment::new(config.dbmus_per_compartment, config.rows_per_dbmu))
            .collect();
        let meta = vec![
            vec![vec![None; config.rows_per_dbmu]; config.dbmus_per_compartment];
            config.compartments_per_macro
        ];
        Ok(Self { config, compartments, meta, loaded: None })
    }

    /// The macro's geometry.
    #[must_use]
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Clears every cell and its metadata.
    pub fn reset(&mut self) {
        for compartment in &mut self.compartments {
            for dbmu in &mut compartment.dbmus {
                dbmu.reset();
            }
        }
        for compartment in &mut self.meta {
            for column in compartment {
                column.fill(None);
            }
        }
        self.loaded = None;
    }

    /// Loads one sparse tile cell by cell, returning the word-line writes
    /// performed. Mirrors [`PimMacro::load_sparse_tile`](crate::PimMacro).
    ///
    /// # Errors
    ///
    /// As the bit-plane implementation: capacity and length violations.
    pub fn load_sparse_tile(&mut self, filters: &[FilterMetadata]) -> Result<u64, ArchError> {
        let weights_len = filters.first().map_or(0, |f| f.weights.len());
        self.validate_sparse(filters, weights_len, "tile weights")?;
        self.load_sparse_cells(filters)
    }

    /// Executes the currently loaded tile against one input vector
    /// (`cell_writes` reported as zero, as in the bit-plane split).
    ///
    /// # Errors
    ///
    /// * [`ArchError::NoTileLoaded`] when no tile has been loaded.
    /// * [`ArchError::CapacityExceeded`] / [`ArchError::LengthMismatch`]
    ///   when the input vector does not match the loaded tile.
    pub fn execute_loaded(
        &self,
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let Some(tile) = self.loaded else { return Err(ArchError::NoTileLoaded) };
        let (filters, weights_len) = match tile {
            ScalarTile::Sparse { filters, weights_len, .. }
            | ScalarTile::Dense { filters, weights_len, .. } => (filters, weights_len),
        };
        if inputs.len() > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: inputs.len(),
                available: self.config.weights_per_filter_capacity(),
            });
        }
        if filters > 0 && inputs.len() != weights_len {
            return Err(ArchError::LengthMismatch {
                left: "loaded tile weights",
                left_len: weights_len,
                right: "inputs",
                right_len: inputs.len(),
            });
        }
        self.execute_cells(tile, inputs, ipu)
    }

    /// Executes one DB-PIM (sparse) tile, cell by cell — the original
    /// monolithic entry point.
    ///
    /// # Errors
    ///
    /// As [`PimMacro::execute_sparse_tile`](crate::PimMacro).
    pub fn execute_sparse_tile(
        &mut self,
        filters: &[FilterMetadata],
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        self.validate_sparse(filters, inputs.len(), "inputs")?;
        let writes = self.load_sparse_cells(filters)?;
        let tile = self.loaded.expect("tile was just loaded");
        let mut exec = self.execute_cells(tile, inputs, ipu)?;
        exec.stats.cell_writes = writes;
        Ok(exec)
    }

    /// Executes one dense-baseline INT8 tile, cell by cell.
    ///
    /// # Errors
    ///
    /// As [`PimMacro::execute_dense_tile`](crate::PimMacro).
    pub fn execute_dense_tile(
        &mut self,
        filters: &[Vec<i8>],
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let refs: Vec<&[i8]> = filters.iter().map(Vec::as_slice).collect();
        self.dense_tile_impl(&refs, inputs, ipu, OperandWidth::Int8)
    }

    /// Executes one dense-baseline tile at an arbitrary weight width, cell
    /// by cell.
    ///
    /// # Errors
    ///
    /// As [`PimMacro::execute_dense_tile_for_width`](crate::PimMacro).
    pub fn execute_dense_tile_for_width(
        &mut self,
        filters: &[Vec<i32>],
        inputs: &[i8],
        ipu: &InputPreprocessor,
        width: OperandWidth,
    ) -> Result<TileExecution, ArchError> {
        let refs: Vec<&[i32]> = filters.iter().map(Vec::as_slice).collect();
        self.dense_tile_impl(&refs, inputs, ipu, width)
    }

    /// Loads one dense-baseline tile cell by cell without executing it.
    ///
    /// # Errors
    ///
    /// As [`PimMacro::load_dense_tile_for_width`](crate::PimMacro).
    pub fn load_dense_tile_for_width(
        &mut self,
        filters: &[Vec<i32>],
        width: OperandWidth,
    ) -> Result<u64, ArchError> {
        let refs: Vec<&[i32]> = filters.iter().map(Vec::as_slice).collect();
        let weights_len = refs.first().map_or(0, |f| f.len());
        self.validate_dense(&refs, weights_len, width, "tile weights")?;
        self.load_dense_cells(&refs, width)
    }

    fn dense_tile_impl<T: Copy + Into<i32>>(
        &mut self,
        filters: &[&[T]],
        inputs: &[i8],
        ipu: &InputPreprocessor,
        width: OperandWidth,
    ) -> Result<TileExecution, ArchError> {
        self.validate_dense(filters, inputs.len(), width, "inputs")?;
        let writes = self.load_dense_cells(filters, width)?;
        let tile = self.loaded.expect("tile was just loaded");
        let mut exec = self.execute_cells(tile, inputs, ipu)?;
        exec.stats.cell_writes = writes;
        Ok(exec)
    }

    fn validate_sparse(
        &self,
        filters: &[FilterMetadata],
        weights_len: usize,
        right: &'static str,
    ) -> Result<(), ArchError> {
        let threshold = filters.iter().map(|f| f.threshold).max().unwrap_or(0).max(1);
        let capacity = self.config.filters_per_macro(threshold)?;
        if filters.len() > capacity {
            return Err(ArchError::CapacityExceeded {
                resource: "filters",
                requested: filters.len(),
                available: capacity,
            });
        }
        if weights_len > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: weights_len,
                available: self.config.weights_per_filter_capacity(),
            });
        }
        for filter in filters {
            if filter.weights.len() != weights_len {
                return Err(ArchError::LengthMismatch {
                    left: "filter weights",
                    left_len: filter.weights.len(),
                    right,
                    right_len: weights_len,
                });
            }
        }
        Ok(())
    }

    fn validate_dense<T: Copy + Into<i32>>(
        &self,
        filters: &[&[T]],
        weights_len: usize,
        width: OperandWidth,
        right: &'static str,
    ) -> Result<(), ArchError> {
        let weight_bits = width.bits() as usize;
        if filters.len() > self.config.dense_filters_per_macro {
            return Err(ArchError::CapacityExceeded {
                resource: "filters",
                requested: filters.len(),
                available: self.config.dense_filters_per_macro,
            });
        }
        if weights_len > self.config.weights_per_filter_capacity() {
            return Err(ArchError::CapacityExceeded {
                resource: "weights per filter",
                requested: weights_len,
                available: self.config.weights_per_filter_capacity(),
            });
        }
        if weight_bits * filters.len() > self.config.dbmus_per_compartment {
            return Err(ArchError::CapacityExceeded {
                resource: "weight bit columns",
                requested: weight_bits * filters.len(),
                available: self.config.dbmus_per_compartment,
            });
        }
        for filter in filters {
            if filter.len() != weights_len {
                return Err(ArchError::LengthMismatch {
                    left: "filter weights",
                    left_len: filter.len(),
                    right,
                    right_len: weights_len,
                });
            }
            if let Some(&value) = filter.iter().find(|&&w| !width.contains(w.into())) {
                return Err(ArchError::OperandOutOfRange {
                    value: value.into(),
                    bits: width.bits(),
                });
            }
        }
        Ok(())
    }

    /// Load phase: weight j of filter f goes to compartment (j mod C),
    /// row (j div C), columns [f*slots, f*slots + slots).
    fn load_sparse_cells(&mut self, filters: &[FilterMetadata]) -> Result<u64, ArchError> {
        self.reset();
        let compartments = self.config.compartments_per_macro;
        let threshold = filters.iter().map(|f| f.threshold).max().unwrap_or(0).max(1);
        let slots = threshold as usize;
        let weights_len = filters.first().map_or(0, |f| f.weights.len());
        let mut cell_writes = 0u64;
        for (f, filter) in filters.iter().enumerate() {
            for (j, weight) in filter.weights.iter().enumerate() {
                let compartment = j % compartments;
                let row = j / compartments;
                for (s, slot) in weight.slots.iter().enumerate() {
                    let column = f * slots + s;
                    if let Some(block) = slot {
                        self.compartments[compartment].dbmus[column].write_row(row, block.high)?;
                        self.meta[compartment][column][row] =
                            Some(CellMeta::new(block.db_index, block.sign));
                        cell_writes += 1;
                    } else {
                        self.compartments[compartment].dbmus[column].clear_row(row)?;
                        self.meta[compartment][column][row] = None;
                    }
                }
            }
        }
        self.loaded = Some(ScalarTile::Sparse { slots, filters: filters.len(), weights_len });
        Ok(cell_writes)
    }

    /// Dense load: weight bit b of weight j of filter f in compartment
    /// (j mod C), row (j div C), column f*bits + b. The low `width.bits()`
    /// bits of the two's-complement value are exact for any in-range weight.
    fn load_dense_cells<T: Copy + Into<i32>>(
        &mut self,
        filters: &[&[T]],
        width: OperandWidth,
    ) -> Result<u64, ArchError> {
        self.reset();
        let compartments = self.config.compartments_per_macro;
        let weight_bits = width.bits() as usize;
        let weights_len = filters.first().map_or(0, |f| f.len());
        let mut cell_writes = 0u64;
        for (f, filter) in filters.iter().enumerate() {
            for (j, &w) in filter.iter().enumerate() {
                let compartment = j % compartments;
                let row = j / compartments;
                let w: i32 = w.into();
                for b in 0..weight_bits {
                    let column = f * weight_bits + b;
                    let bit = (w as u32 >> b) & 1 == 1;
                    self.compartments[compartment].dbmus[column].write_row(row, bit)?;
                    cell_writes += 1;
                }
            }
        }
        self.loaded = Some(ScalarTile::Dense { weight_bits, filters: filters.len(), weights_len });
        Ok(cell_writes)
    }

    /// Compute phase: bit-serial over the IPU-selected columns, row by row,
    /// touching every cell individually (`cell_writes` left at zero for the
    /// caller to fill in).
    fn execute_cells(
        &self,
        tile: ScalarTile,
        inputs: &[i8],
        ipu: &InputPreprocessor,
    ) -> Result<TileExecution, ArchError> {
        let mut stats = MacroComputeStats::default();
        let compartments = self.config.compartments_per_macro;
        let tree = CsdAdderTree;
        let filter_count = match tile {
            ScalarTile::Sparse { filters, .. } | ScalarTile::Dense { filters, .. } => filters,
        };
        let mut ppus: Vec<PostProcessingUnit> = vec![PostProcessingUnit::new(); filter_count];
        let rows_used = inputs.len().div_ceil(compartments);
        for row in 0..rows_used {
            let start = row * compartments;
            let end = (start + compartments).min(inputs.len());
            let group = &inputs[start..end];
            let ipu_result = ipu.process(group);
            stats.skipped_columns += ipu_result.skipped_columns as u64;
            for column_bits in &ipu_result.columns {
                stats.compute_cycles += 1;
                match tile {
                    ScalarTile::Sparse { slots, .. } => {
                        for (f, ppu) in ppus.iter_mut().enumerate() {
                            let mut operands = Vec::with_capacity(group.len() * slots);
                            for (c, &input_bit) in column_bits.bits.iter().enumerate() {
                                for s in 0..slots {
                                    let column = f * slots + s;
                                    let out = self.compartments[c].dbmus[column]
                                        .compute(row, input_bit)?;
                                    let meta = self.meta[c][column][row];
                                    stats.cell_reads += 1;
                                    if meta.is_some() && out.block_magnitude() != 0 {
                                        stats.effective_cell_ops += 1;
                                    }
                                    operands.push((out, meta));
                                }
                            }
                            let (partial, _) = tree.reduce(&operands);
                            stats.adder_reductions += 1;
                            ppu.accumulate_bit(partial, column_bits.position);
                            stats.ppu_operations += 1;
                        }
                    }
                    ScalarTile::Dense { weight_bits, .. } => {
                        for (f, ppu) in ppus.iter_mut().enumerate() {
                            let mut partial = 0i32;
                            for b in 0..weight_bits {
                                let column = f * weight_bits + b;
                                let mut products = Vec::with_capacity(group.len());
                                for (c, &input_bit) in column_bits.bits.iter().enumerate() {
                                    // In dense mode the stored bit is the
                                    // cell's Q node.
                                    let out = self.compartments[c].dbmus[column]
                                        .compute(row, input_bit)?;
                                    stats.cell_reads += 1;
                                    if out.o_q {
                                        stats.effective_cell_ops += 1;
                                    }
                                    products.push(out.o_q);
                                }
                                let (reduced, _) =
                                    tree.reduce_dense(&products, b as u32, b == weight_bits - 1);
                                partial += reduced;
                            }
                            stats.adder_reductions += 1;
                            ppu.accumulate_bit(partial, column_bits.position);
                            stats.ppu_operations += 1;
                        }
                    }
                }
            }
        }
        let outputs = ppus.iter_mut().map(PostProcessingUnit::drain).collect();
        Ok(TileExecution { outputs, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_fta::{FilterApprox, QueryTables};

    fn reference_dot<T: Into<i64> + Copy>(weights: &[T], inputs: &[i8]) -> i64 {
        weights.iter().zip(inputs).map(|(&w, &x)| w.into() * i64::from(x)).sum()
    }

    #[test]
    fn scalar_sparse_tile_matches_reference_dot_product() {
        let tables = QueryTables::new();
        let raw: Vec<i8> = (0..48).map(|i| ((i * 29) % 160) as i8).collect();
        let inputs: Vec<i8> = (0..48).map(|i| ((i * 13) % 100) as i8 - 50).collect();
        let approx = FilterApprox::approximate(&raw, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);
        let mut pim = ScalarPimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
        assert_eq!(exec.outputs[0], reference_dot(approx.values(), &inputs));
        assert!(exec.stats.cell_writes > 0);
    }

    #[test]
    fn scalar_split_matches_monolithic_and_guards_load_state() {
        let tables = QueryTables::new();
        let raw: Vec<i8> = (0..20).map(|i| (i * 11) as i8).collect();
        let inputs: Vec<i8> = (0..20).map(|i| (i * 3 % 50) as i8).collect();
        let approx = FilterApprox::approximate(&raw, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &approx);

        let mut pim = ScalarPimMacro::new(ArchConfig::paper()).unwrap();
        assert_eq!(
            pim.execute_loaded(&inputs, &InputPreprocessor::new()),
            Err(ArchError::NoTileLoaded)
        );
        let writes = pim.load_sparse_tile(std::slice::from_ref(&meta)).unwrap();
        let split = pim.execute_loaded(&inputs, &InputPreprocessor::new()).unwrap();
        let mut fresh = ScalarPimMacro::new(ArchConfig::paper()).unwrap();
        let mono = fresh.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
        assert_eq!(split.outputs, mono.outputs);
        assert_eq!(split.stats.cell_writes, 0);
        assert_eq!(writes, mono.stats.cell_writes);
    }

    #[test]
    fn scalar_dense_tile_matches_reference_dot_product() {
        let inputs: Vec<i8> = (0..33).map(|i| (i * 5 % 90) as i8 - 45).collect();
        let filters: Vec<Vec<i8>> =
            (0..2).map(|f| (0..33).map(|i| ((i + f * 7) * 17 % 256) as i8).collect()).collect();
        let mut pim = ScalarPimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim
            .execute_dense_tile(&filters, &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        for (out, filter) in exec.outputs.iter().zip(&filters) {
            assert_eq!(*out, reference_dot(filter, &inputs));
        }
    }
}
