//! Criterion benchmarks of the experiment pipeline itself: one benchmark per
//! reproduced table / figure, exercised on width-reduced models so the suite
//! completes quickly. The full-size reports are produced by the `fig*` /
//! `table*` binaries in this crate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use db_pim::prelude::*;
use dbpim_bench::{
    build_model, input_column_sparsity, run_pipeline, weight_sparsity_stats, ExperimentOptions,
};

fn small_options() -> ExperimentOptions {
    ExperimentOptions {
        width_mult: 0.25,
        classes: 10,
        calibration_images: 1,
        evaluation_images: 2,
        seed: 42,
        ..ExperimentOptions::default()
    }
}

fn bench_fig2a_weight_sparsity(c: &mut Criterion) {
    let options = small_options();
    let model = build_model(ModelKind::ResNet18, &options).expect("model builds");
    c.bench_function("fig2a/resnet18_quarter_width_weight_stats", |b| {
        b.iter(|| weight_sparsity_stats(black_box(&model)).expect("stats"))
    });
}

fn bench_fig2b_input_sparsity(c: &mut Criterion) {
    let options = small_options();
    let model = dbpim_nn::zoo::tiny_cnn(10, 1).expect("model builds");
    c.bench_function("fig2b/tiny_cnn_input_columns", |b| {
        b.iter(|| input_column_sparsity(black_box(&model), &options).expect("stats"))
    });
}

fn bench_table2_fidelity(c: &mut Criterion) {
    let options = small_options();
    c.bench_function("table2/mobilenet_quarter_width_fidelity", |b| {
        b.iter(|| {
            run_pipeline(ModelKind::MobileNetV2, black_box(&options), true).expect("pipeline")
        })
    });
}

fn bench_fig7_and_table3_pipeline(c: &mut Criterion) {
    let options = small_options();
    c.bench_function("fig7/mobilenet_quarter_width_four_configs", |b| {
        b.iter(|| {
            run_pipeline(ModelKind::MobileNetV2, black_box(&options), false).expect("pipeline")
        })
    });

    // The simulation stage alone (compile + simulate), isolated from model
    // building and quantization.
    let model = dbpim_nn::zoo::tiny_cnn(10, 2).expect("model builds");
    let mut gen = TensorGenerator::new(3);
    let (cal, _) = gen.labelled_batch(1, 3, 32, 32, 10).expect("batch");
    let quantized = QuantizedModel::quantize(&model, &cal).expect("quantizes");
    let approx = ModelApprox::from_quantized(&quantized).expect("approximates");
    let profile = db_pim::measure::measure_input_sparsity(&quantized, &cal).expect("profile");
    let workloads = extract_workloads(&model, Some(&approx), &profile).expect("workloads");
    let compiler = Compiler::new(ArchConfig::paper()).expect("compiler");
    c.bench_function("fig7/tiny_cnn_compile_and_simulate", |b| {
        b.iter(|| {
            let program =
                compiler.compile(black_box(&workloads), MappingMode::DbPim).expect("compiles");
            let sim = Simulator::new(SimConfig::hybrid()).expect("simulator");
            sim.simulate(&program).expect("simulates")
        })
    });
}

fn bench_table4_area(c: &mut Criterion) {
    let area = AreaModel::calibrated_28nm();
    let arch = ArchConfig::paper();
    c.bench_function("table4/area_breakdown", |b| {
        b.iter(|| black_box(&area).breakdown(black_box(&arch)))
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2a_weight_sparsity,
              bench_fig2b_input_sparsity,
              bench_table2_fidelity,
              bench_fig7_and_table3_pipeline,
              bench_table4_area
}
criterion_main!(experiments);
