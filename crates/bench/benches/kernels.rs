//! Criterion micro-benchmarks of the DB-PIM kernels: CSD recoding, the FTA
//! algorithm, dyadic-block metadata extraction, the bit-accurate macro and
//! the input pre-processing unit.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use dbpim_arch::{ArchConfig, InputPreprocessor, PimMacro};
use dbpim_csd::CsdWord;
use dbpim_fta::metadata::FilterMetadata;
use dbpim_fta::{FilterApprox, QueryTables};

fn random_weights(seed: u64, len: usize) -> Vec<i8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

fn bench_csd_recoding(c: &mut Criterion) {
    let values = random_weights(1, 4096);
    c.bench_function("csd/recode_4096_int8", |b| {
        b.iter(|| {
            let mut digits = 0u32;
            for &v in &values {
                digits += CsdWord::from_i8(black_box(v)).nonzero_digits();
            }
            black_box(digits)
        })
    });
}

fn bench_fta_algorithm(c: &mut Criterion) {
    let tables = QueryTables::new();
    let filter = random_weights(2, 1152); // a 128x3x3 filter
    c.bench_function("fta/approximate_filter_1152", |b| {
        b.iter(|| FilterApprox::approximate(black_box(&filter), &tables).expect("approximates"))
    });

    let approx = FilterApprox::approximate(&filter, &tables).expect("approximates");
    c.bench_function("fta/extract_metadata_1152", |b| {
        b.iter(|| FilterMetadata::from_filter(0, black_box(&approx)))
    });
}

fn bench_macro_execution(c: &mut Criterion) {
    let tables = QueryTables::new();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let len = 256usize;
    let inputs: Vec<i8> = (0..len).map(|_| rng.gen_range(0i8..=63)).collect();
    let metadata: Vec<FilterMetadata> = (0..8)
        .map(|i| {
            let raw = random_weights(10 + i, len);
            let approx =
                FilterApprox::approximate_with_threshold(&raw, 2, &tables).expect("approximates");
            FilterMetadata::from_filter(i as usize, &approx)
        })
        .collect();
    let dense_filters: Vec<Vec<i8>> = (0..2).map(|i| random_weights(20 + i, len)).collect();

    // Load and compute phases are timed separately: a real inference loads a
    // tile once and executes it against every im2col patch, so folding the
    // (allocation-heavy) load into the timed region would hide the hot path.
    let mut loader = PimMacro::new(ArchConfig::paper()).expect("macro builds");
    c.bench_function("macro/sparse_tile_load_8x256", |b| {
        b.iter(|| loader.load_sparse_tile(black_box(&metadata)).expect("loads"))
    });

    let mut pim = PimMacro::new(ArchConfig::paper()).expect("macro builds");
    pim.load_sparse_tile(&metadata).expect("loads");
    let ipu = InputPreprocessor::new();
    c.bench_function("macro/sparse_tile_compute_8x256_hybrid", |b| {
        b.iter(|| pim.execute_loaded(black_box(&inputs), &ipu).expect("executes"))
    });

    c.bench_function("macro/dense_tile_load_2x256", |b| {
        b.iter(|| loader.load_dense_tile(black_box(&dense_filters)).expect("loads"))
    });

    let mut pim = PimMacro::new(ArchConfig::paper()).expect("macro builds");
    pim.load_dense_tile(&dense_filters).expect("loads");
    let dense_ipu = InputPreprocessor::without_sparsity();
    c.bench_function("macro/dense_tile_compute_2x256", |b| {
        b.iter(|| pim.execute_loaded(black_box(&inputs), &dense_ipu).expect("executes"))
    });
}

fn bench_ipu(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let features: Vec<i8> = (0..4096).map(|_| rng.gen_range(0i8..=15)).collect();
    let ipu = InputPreprocessor::new();
    c.bench_function("ipu/skip_ratio_4096_features", |b| {
        b.iter(|| ipu.skip_ratio_over(black_box(&features), 16))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_csd_recoding, bench_fta_algorithm, bench_macro_execution, bench_ipu
}
criterion_main!(kernels);
