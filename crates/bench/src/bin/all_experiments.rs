//! Runs every table and figure generator in sequence against one shared
//! simulation session, so each model is built, quantized, approximated and
//! compiled exactly once across all reports.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin all_experiments [-- --width 1.0 --images 8]
//! ```
//!
//! This is the one-shot artifact-evaluation entry point; its output is the
//! source of the numbers recorded in `EXPERIMENTS.md`.

use dbpim_bench::{experiments, ExperimentContext, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    let context = match ExperimentContext::new(options) {
        Ok(context) => context,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    println!("DB-PIM reproduction: all experiments (options: {options:?})\n");

    println!("{}", experiments::table1());
    type Generator = fn(&ExperimentContext) -> Result<String, db_pim::PipelineError>;
    let sections: [(&str, Generator); 4] = [
        ("fig2a", experiments::fig2a),
        ("fig2b", experiments::fig2b),
        ("table2", experiments::table2),
        ("fig7", experiments::fig7),
    ];
    for (name, generate) in sections {
        match generate(&context) {
            Ok(report) => println!("{report}"),
            Err(e) => eprintln!("{name} failed: {e}"),
        }
    }
    match experiments::table3(&context) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("table3 failed: {e}"),
    }
    println!("{}", experiments::table4(&context));
    match experiments::width_sweep(&context) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("width_sweep failed: {e}"),
    }
    match experiments::joint_sparsity(&context) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("joint_sparsity failed: {e}"),
    }
}
