//! Runs every table and figure generator in sequence.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin all_experiments [-- --width 1.0 --images 8]
//! ```
//!
//! This is the one-shot artifact-evaluation entry point; its output is the
//! source of the numbers recorded in `EXPERIMENTS.md`.

use dbpim_bench::{experiments, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    println!("DB-PIM reproduction: all experiments (options: {options:?})\n");

    println!("{}", experiments::table1());
    match experiments::fig2a(&options) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("fig2a failed: {e}"),
    }
    match experiments::fig2b(&options) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("fig2b failed: {e}"),
    }
    match experiments::table2(&options) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("table2 failed: {e}"),
    }
    match experiments::fig7(&options) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("fig7 failed: {e}"),
    }
    match experiments::table3(&options) {
        Ok(report) => println!("{report}"),
        Err(e) => eprintln!("table3 failed: {e}"),
    }
    println!("{}", experiments::table4());
}
