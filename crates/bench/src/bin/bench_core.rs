//! `bench_core` — the core-kernel performance harness behind
//! `BENCH_core.json`.
//!
//! Times the hot kernels of the simulator with plain wall-clock sampling
//! (the vendored criterion stand-in has no machine-readable output):
//!
//! * `macro/sparse_tile_load` / `macro/sparse_tile_compute` — the bit-plane
//!   macro, load phase and compute phase separately.
//! * `macro/sparse_tile_compute_scalar` — the cell-at-a-time reference
//!   (`scalar-reference` feature) on the identical tile.
//! * `macro/dense_tile_compute` / `macro/dense_tile_compute_scalar` — the
//!   dense-baseline mapping, both implementations.
//! * `nn/tiny_cnn_forward` — a quantized forward pass dominated by
//!   `conv2d_i8`.
//! * `pipeline/run_model_fast` — the end-to-end co-design pipeline on the
//!   reduced configuration.
//!
//! Modes:
//!
//! * default — full sampling; write the report with `--json BENCH_core.json`.
//! * `--quick` — short smoke sampling for CI.
//! * `--compare PATH` — load a previous report and fail (exit 1) when any
//!   kernel regressed by more than `--max-regression` (default 1.5×) after
//!   normalizing out the overall machine-speed difference between the two
//!   runs. On a noisy runner, pass a larger `--max-regression` to override.
//! * `--min-speedup` (default 3.0) — required `sparse_tile_compute` speedup
//!   of the bit-plane kernels over the scalar reference; this ratio is
//!   measured within one run, so it is machine-independent.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use db_pim::{Pipeline, PipelineConfig};
use dbpim_arch::{ArchConfig, InputPreprocessor, PimMacro, ScalarPimMacro};
use dbpim_fta::metadata::FilterMetadata;
use dbpim_fta::{FilterApprox, QueryTables};
use dbpim_nn::QuantizedModel;
use dbpim_tensor::random::TensorGenerator;
use dbpim_trace::{phase_summary, PhaseSummary, TraceCollector};

const SCHEMA: &str = "dbpim-bench-core/v1";

#[derive(Debug, Serialize, Deserialize)]
struct KernelSample {
    name: String,
    /// Timed iterations per sample.
    reps: u64,
    /// Fastest per-iteration time across samples, in nanoseconds.
    best_ns: f64,
    /// Median per-iteration time across samples, in nanoseconds.
    median_ns: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Derived {
    /// `sparse_tile_compute_scalar` / `sparse_tile_compute` median ratio.
    sparse_compute_speedup_vs_scalar: f64,
    /// `dense_tile_compute_scalar` / `dense_tile_compute` median ratio.
    dense_compute_speedup_vs_scalar: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema: String,
    mode: String,
    kernels: Vec<KernelSample>,
    derived: Derived,
    /// Per-span phase breakdown (load vs compute vs requantize) from a
    /// separate fully-sampled traced pass — the timed loops above run with
    /// tracing uninstalled so the numbers the gate compares are never
    /// perturbed. `None` in reports written before the field existed.
    phases: Option<Vec<PhaseSummary>>,
}

struct Harness {
    quick: bool,
    kernels: Vec<KernelSample>,
}

impl Harness {
    /// Samples `f` and records per-iteration best/median times. The closure
    /// returns a checksum that is black-boxed so the work cannot be
    /// eliminated.
    fn bench(&mut self, name: &str, mut f: impl FnMut() -> u64) {
        let (samples, target_ns) =
            if self.quick { (5usize, 2_000_000.0) } else { (15usize, 20_000_000.0) };
        // Warm up and calibrate the inner repetition count to the target
        // sample duration.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let reps = ((target_ns / once_ns) as u64).clamp(1, 1_000_000);
        for _ in 0..reps.min(16) {
            black_box(f());
        }

        let mut per_iter: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..reps {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / reps as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let best = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        eprintln!("{name:40} {reps:>8} reps   best {best:>12.1} ns   median {median:>12.1} ns");
        self.kernels.push(KernelSample {
            name: name.to_string(),
            reps,
            best_ns: best,
            median_ns: median,
        });
    }

    fn median_ns(&self, name: &str) -> f64 {
        self.kernels.iter().find(|k| k.name == name).map_or(f64::NAN, |k| k.median_ns)
    }
}

fn sparse_tile() -> (Vec<FilterMetadata>, Vec<i8>) {
    let tables = QueryTables::new();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let len = 256usize;
    let inputs: Vec<i8> = (0..len).map(|_| rng.gen_range(0i8..=63)).collect();
    let metadata = (0..8)
        .map(|i| {
            let raw: Vec<i8> = {
                let mut wrng = ChaCha8Rng::seed_from_u64(10 + i);
                (0..len).map(|_| wrng.gen()).collect()
            };
            let approx =
                FilterApprox::approximate_with_threshold(&raw, 2, &tables).expect("approximates");
            FilterMetadata::from_filter(i as usize, &approx)
        })
        .collect();
    (metadata, inputs)
}

fn dense_tile() -> (Vec<Vec<i8>>, Vec<i8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let len = 256usize;
    let filters = (0..2).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
    let inputs = (0..len).map(|_| rng.gen_range(0i8..=63)).collect();
    (filters, inputs)
}

fn run(quick: bool) -> Report {
    let mut h = Harness { quick, kernels: Vec::new() };
    let config = ArchConfig::paper();
    let (metadata, inputs) = sparse_tile();
    let (dense_filters, dense_inputs) = dense_tile();
    let hybrid = InputPreprocessor::new();
    let no_skip = InputPreprocessor::without_sparsity();

    let mut pim = PimMacro::new(config).expect("macro builds");
    h.bench("macro/sparse_tile_load", || pim.load_sparse_tile(&metadata).expect("loads"));
    pim.load_sparse_tile(&metadata).expect("loads");
    h.bench("macro/sparse_tile_compute", || {
        pim.execute_loaded(&inputs, &hybrid).expect("executes").outputs[0] as u64
    });

    let mut scalar = ScalarPimMacro::new(config).expect("macro builds");
    scalar.load_sparse_tile(&metadata).expect("loads");
    h.bench("macro/sparse_tile_compute_scalar", || {
        scalar.execute_loaded(&inputs, &hybrid).expect("executes").outputs[0] as u64
    });

    let mut pim = PimMacro::new(config).expect("macro builds");
    pim.load_dense_tile(&dense_filters).expect("loads");
    h.bench("macro/dense_tile_compute", || {
        pim.execute_loaded(&dense_inputs, &no_skip).expect("executes").outputs[0] as u64
    });
    let mut scalar = ScalarPimMacro::new(config).expect("macro builds");
    scalar
        .load_dense_tile_for_width(
            &dense_filters
                .iter()
                .map(|f| f.iter().map(|&w| i32::from(w)).collect())
                .collect::<Vec<_>>(),
            dbpim_csd::OperandWidth::Int8,
        )
        .expect("loads");
    h.bench("macro/dense_tile_compute_scalar", || {
        scalar.execute_loaded(&dense_inputs, &no_skip).expect("executes").outputs[0] as u64
    });

    let model = dbpim_nn::zoo::tiny_cnn(10, 2).expect("model builds");
    let mut gen = TensorGenerator::new(3);
    let (cal, _) = gen.labelled_batch(2, 3, 32, 32, 10).expect("batch");
    let quantized = QuantizedModel::quantize(&model, &cal).expect("quantizes");
    h.bench("nn/tiny_cnn_forward", || {
        let outputs = quantized.forward_all(&cal[0]).expect("forwards");
        outputs.last().map_or(0, |t| t.data().len() as u64)
    });

    let pipeline =
        Pipeline::new(PipelineConfig::fast().without_fidelity()).expect("pipeline builds");
    h.bench("pipeline/run_model_fast", || {
        let result = pipeline.run_model(&model).expect("runs");
        result.baseline().total_cycles()
    });

    let derived = Derived {
        sparse_compute_speedup_vs_scalar: h.median_ns("macro/sparse_tile_compute_scalar")
            / h.median_ns("macro/sparse_tile_compute"),
        dense_compute_speedup_vs_scalar: h.median_ns("macro/dense_tile_compute_scalar")
            / h.median_ns("macro/dense_tile_compute"),
    };
    Report {
        schema: SCHEMA.to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        kernels: h.kernels,
        derived,
        phases: Some(traced_phases()),
    }
}

/// Exercises the macro load/compute kernels and the quantized forward pass
/// once with every kernel span sampled, and folds the spans into the
/// per-phase rows the JSON report carries. Runs *after* the timed loops,
/// with its own collector, so sampling never contaminates the gate numbers.
fn traced_phases() -> Vec<PhaseSummary> {
    let collector = std::sync::Arc::new(TraceCollector::new().with_kernel_sampling(1));
    dbpim_trace::install(std::sync::Arc::clone(&collector));

    let config = ArchConfig::paper();
    let (metadata, inputs) = sparse_tile();
    let hybrid = InputPreprocessor::new();
    let mut pim = PimMacro::new(config).expect("macro builds");
    for _ in 0..8 {
        pim.load_sparse_tile(&metadata).expect("loads");
        black_box(pim.execute_loaded(&inputs, &hybrid).expect("executes").outputs[0]);
    }

    let model = dbpim_nn::zoo::tiny_cnn(10, 2).expect("model builds");
    let mut gen = TensorGenerator::new(3);
    let (cal, _) = gen.labelled_batch(2, 3, 32, 32, 10).expect("batch");
    let quantized = QuantizedModel::quantize(&model, &cal).expect("quantizes");
    black_box(quantized.forward_all(&cal[0]).expect("forwards").len());

    dbpim_trace::uninstall();
    phase_summary(&collector.snapshot())
}

/// Compares against a baseline report. Ratios are normalized by their median
/// so a uniformly slower/faster machine does not trip the gate; only kernels
/// that regressed *relative to the rest of the suite* by more than
/// `max_regression` fail.
fn compare(report: &Report, baseline: &Report, max_regression: f64) -> Result<(), String> {
    let old: BTreeMap<&str, f64> =
        baseline.kernels.iter().map(|k| (k.name.as_str(), k.median_ns)).collect();
    let mut ratios: Vec<(String, f64)> = report
        .kernels
        .iter()
        .filter_map(|k| old.get(k.name.as_str()).map(|&o| (k.name.clone(), k.median_ns / o)))
        .collect();
    if ratios.is_empty() {
        return Err("no kernels in common with the baseline report".to_string());
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|&(_, r)| r).collect();
    sorted.sort_by(f64::total_cmp);
    let machine_factor = sorted[sorted.len() / 2];
    eprintln!("machine-speed factor vs baseline: {machine_factor:.3}x");
    ratios.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
    let mut failures = Vec::new();
    for (name, ratio) in &ratios {
        let normalized = ratio / machine_factor;
        let flag = if normalized > max_regression { " REGRESSED" } else { "" };
        eprintln!("{name:40} {ratio:>7.3}x raw  {normalized:>7.3}x normalized{flag}");
        if normalized > max_regression {
            failures.push(format!("{name} regressed {normalized:.2}x (limit {max_regression}x)"));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut max_regression = 1.5f64;
    let mut min_speedup = 3.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = Some(value("--json")),
            "--compare" => compare_path = Some(value("--compare")),
            "--max-regression" => match value("--max-regression").parse() {
                Ok(limit) => max_regression = limit,
                Err(_) => {
                    eprintln!("bench_core: --max-regression requires a numeric value");
                    return ExitCode::from(2);
                }
            },
            "--min-speedup" => match value("--min-speedup").parse() {
                Ok(limit) => min_speedup = limit,
                Err(_) => {
                    eprintln!("bench_core: --min-speedup requires a numeric value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag {other}; flags: --quick --json PATH --compare PATH \
                     --max-regression F --min-speedup F"
                );
                return ExitCode::from(2);
            }
        }
    }

    let report = run(quick);
    eprintln!(
        "sparse compute speedup vs scalar reference: {:.2}x (dense {:.2}x)",
        report.derived.sparse_compute_speedup_vs_scalar,
        report.derived.dense_compute_speedup_vs_scalar,
    );
    if let Some(phases) = &report.phases {
        eprint!("{}", dbpim_trace::render_phase_table(phases));
    }

    let mut ok = true;
    if report.derived.sparse_compute_speedup_vs_scalar < min_speedup {
        eprintln!(
            "FAIL: sparse compute speedup {:.2}x below the required {min_speedup}x",
            report.derived.sparse_compute_speedup_vs_scalar
        );
        ok = false;
    }
    if let Some(path) = compare_path {
        // I/O and parse failures are structured diagnostics + nonzero exit,
        // like every other binary — never a panic with a backtrace.
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench_core: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline: Report = match serde_json::from_str(&text) {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("bench_core: baseline {path} is not a valid report: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(message) = compare(&report, &baseline, max_regression) {
            eprintln!("FAIL: {message}");
            ok = false;
        }
    }
    if let Some(path) = json_path {
        let json = match serde_json::to_string(&report) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("bench_core: cannot serialize report: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("bench_core: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {path}");
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
