//! `dbpim-fleet` — the sharded sweep orchestrator binary.
//!
//! Takes the same grid / pipeline flags as `dse_sweep` (they describe the
//! *what*) plus the fleet flags (the *who*):
//!
//! ```text
//! dbpim-fleet [dse_sweep grid/pipeline flags]
//!             [--workers <n>] [--endpoints host:port,...]
//!             [--strategy round-robin|contiguous|cost-weighted]
//!             [--snapshot-dir <dir>] [--fleet-id <name>]
//!             [--auth-token <secret>]
//!             [--point-timeout-ms <n>] [--retries <n>]
//!             [--log-level error|warn|info|debug] [--trace-out <path>]
//! dbpim-fleet --status --endpoints host:port,... [--auth-token <secret>]
//!             [--fleet-id <name>]
//! ```
//!
//! `--status` skips the sweep entirely: it asks every endpoint for its
//! shard registry, folds the answers into one deduplicated progress view
//! per fleet ([`FleetProgress`]) and prints it — the monitoring
//! counterpart to a fleet running elsewhere.
//!
//! The rendered report (stdout) is the same pure-function-of-the-results
//! table `dse_sweep` prints, so CI can `diff` a fleet run byte-for-byte
//! against a cold single-driver run of the same grid. Worker narration,
//! retirement notices and statistics go to stderr.
//!
//! With `--snapshot-dir`, each shard persists `shard-NNN.json` after every
//! completed point and the run resumes from whatever those snapshots
//! already cover — including snapshots written by a previous run with a
//! different worker count.

use std::io::Write as _;
use std::time::Instant;

use dbpim_bench::dse::{render_report, DseSweepOptions};
use dbpim_fleet::{FleetDriver, FleetEvent, FleetOptions, FleetProgress};
use dbpim_trace::{log_debug, log_info, log_warn, TraceSink};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sweep, fleet) = match (DseSweepOptions::from_slice(&args), FleetOptions::from_slice(&args))
    {
        (Ok(sweep), Ok(fleet)) => (sweep, fleet),
        (Err(e), _) => usage_error(&e.to_string()),
        (_, Err(e)) => usage_error(&e.to_string()),
    };
    match dbpim_trace::log_level_from_args(&args) {
        Ok(_) => {}
        Err(e) => usage_error(&e),
    }
    let trace = match TraceSink::from_args(&args) {
        Ok(sink) => sink,
        Err(e) => usage_error(&e),
    };
    if args.iter().any(|arg| arg == "--status") {
        status_mode(&fleet);
    }
    // The driver-local knobs of dse_sweep make no sense across a fleet.
    for (flag, set) in [
        ("--snapshot", sweep.snapshot.is_some()),
        ("--limit-points", sweep.limit_points.is_some()),
        ("--batch", sweep.batch.is_some()),
        ("--threads", sweep.threads.is_some()),
    ] {
        if set {
            usage_error(&format!(
                "`{flag}` is a dse_sweep driver flag; fleets shard with --snapshot-dir and \
                 --workers instead"
            ));
        }
    }

    let spec = sweep.spec();
    let config = fleet.fleet_config(sweep.base.pipeline_config());
    eprintln!(
        "dbpim-fleet {}: {} workers ({} remote), strategy {}, snapshots {}",
        config.fleet_id,
        config.workers.len(),
        fleet.endpoints.len(),
        config.strategy,
        config.snapshot_dir.as_ref().map_or("off".to_string(), |d| d.display().to_string()),
    );

    // Worker narration goes through the leveled logger: lifecycle and
    // failures at their natural levels, the per-point ticker at debug so
    // `--log-level debug` shows it and the default keeps stderr quiet.
    let driver = FleetDriver::new(config).with_observer(move |event| match event {
        FleetEvent::WorkerReady { worker, label } => {
            log_info!("fleet", "worker {worker} ({label}) ready");
        }
        FleetEvent::WorkerRetired { worker, label, reason } => {
            log_warn!("fleet", "worker {worker} ({label}) retired: {reason}");
        }
        FleetEvent::PointDone { completed, total, worker, shard, stolen } => {
            let tag = if *stolen { " (stolen)" } else { "" };
            log_debug!("fleet", "{completed}/{total} points (worker {worker}, shard {shard}{tag})");
        }
        FleetEvent::PointRetried { worker, shard, attempt, error } => {
            log_warn!("fleet", "retry: worker {worker}, shard {shard}, attempt {attempt}: {error}");
        }
        FleetEvent::SnapshotSkipped { path, reason } => {
            log_warn!("fleet", "skipped snapshot {}: {reason}", path.display());
        }
    });

    let start = Instant::now();
    match driver.run(&spec) {
        Ok(outcome) => {
            print!("{}", render_report(&outcome.report));
            std::io::stdout().flush().ok();
            if let Some(sink) = trace {
                if let Err(e) = finish_trace(sink, &fleet) {
                    eprintln!("dbpim-fleet: writing the trace failed: {e}");
                }
            }
            let stats = &outcome.stats;
            eprintln!(
                "dbpim-fleet: {} fresh + {} resumed of {} points in {:.2?}; {} reassigned, \
                 {} retried attempts",
                stats.fresh_points,
                stats.resumed_points,
                outcome.report.total_points,
                start.elapsed(),
                stats.reassigned_points,
                stats.retried_attempts,
            );
            let latency = &stats.point_latency;
            if !latency.is_empty() {
                eprintln!(
                    "  point latency: mean {:.1} ms, p95 <= {:.1} ms, max {:.1} ms \
                     over {} fresh points",
                    latency.mean_micros() / 1000.0,
                    latency.percentile_micros(0.95) as f64 / 1000.0,
                    latency.max_micros as f64 / 1000.0,
                    latency.count,
                );
            }
            for (index, worker) in stats.workers.iter().enumerate() {
                match &worker.retired {
                    Some(reason) => eprintln!(
                        "  worker {index} ({}): {} points, retired: {reason}",
                        worker.label, worker.points
                    ),
                    None => {
                        eprintln!("  worker {index} ({}): {} points", worker.label, worker.points)
                    }
                }
            }
            for diagnostic in &stats.diagnostics {
                eprintln!("  note: {diagnostic}");
            }
        }
        Err(e) => {
            eprintln!("dbpim-fleet failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes the run's trace: with remote endpoints, each daemon's span
/// buffer is drained over the wire, aligned onto the driver's clock via
/// the ping-handshake offset estimate, and merged under the driver's
/// spans as its own process lane; an unreachable (or buffer-less) daemon
/// is warned about and skipped so the driver's own trace always lands.
fn finish_trace(sink: TraceSink, fleet: &FleetOptions) -> std::io::Result<()> {
    use std::time::Duration;

    if fleet.endpoints.is_empty() {
        return sink.finish();
    }
    let driver_epoch = sink.collector().epoch_unix_micros();
    let mut lanes = Vec::new();
    for endpoint in &fleet.endpoints {
        match dbpim_fleet::collect_remote_trace(
            endpoint,
            fleet.auth_token.as_deref(),
            Duration::from_secs(5),
        ) {
            Ok(remote) => {
                if remote.snapshot.dropped > 0 {
                    log_warn!(
                        "fleet",
                        "{endpoint} dropped {} spans before collection (raise --trace-buffer)",
                        remote.snapshot.dropped
                    );
                }
                lanes.push(dbpim_fleet::remote_lane(&remote, driver_epoch));
            }
            Err(e) => log_warn!("fleet", "trace collection skipped: {e}"),
        }
    }
    sink.finish_merged(lanes)
}

/// `--status`: fetch every endpoint's shard registry, aggregate, print.
fn status_mode(fleet: &FleetOptions) -> ! {
    use std::time::Duration;

    if fleet.endpoints.is_empty() {
        usage_error("--status needs --endpoints to know which daemons to ask");
    }
    let mut views = Vec::new();
    let mut unreachable = 0usize;
    for endpoint in &fleet.endpoints {
        let statuses =
            dbpim_serve::Client::connect_timeout(endpoint.as_str(), Duration::from_secs(5))
                .map_err(|e| e.to_string())
                .and_then(|mut client| {
                    if let Some(token) = &fleet.auth_token {
                        client.authenticate(token).map_err(|e| e.to_string())?;
                    }
                    client.shard_statuses().map_err(|e| e.to_string())
                });
        match statuses {
            Ok(statuses) => views.push(statuses),
            Err(e) => {
                unreachable += 1;
                eprintln!("dbpim-fleet: {endpoint}: {e}");
            }
        }
    }
    if views.is_empty() {
        eprintln!("dbpim-fleet: no endpoint answered");
        std::process::exit(1);
    }
    let mut fleets = FleetProgress::aggregate(&views);
    if let Some(id) = &fleet.fleet_id {
        fleets.retain(|progress| &progress.fleet == id);
        if fleets.is_empty() {
            eprintln!("dbpim-fleet: no endpoint reports fleet {id}");
            std::process::exit(1);
        }
    }
    if fleets.is_empty() {
        println!("no shard-tagged work reported by {} endpoint(s)", views.len());
    }
    for progress in &fleets {
        print!("{progress}");
    }
    std::io::stdout().flush().ok();
    // Partial coverage is an error exit so scripts don't mistake a view
    // missing daemons for the whole story.
    std::process::exit(i32::from(unreachable > 0));
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{}", DseSweepOptions::USAGE.replace("dse_sweep", "dbpim-fleet"));
    eprintln!("       plus {}", FleetOptions::USAGE);
    std::process::exit(2);
}
