//! `dbpim-fleet` — the sharded sweep orchestrator binary.
//!
//! Takes the same grid / pipeline flags as `dse_sweep` (they describe the
//! *what*) plus the fleet flags (the *who*):
//!
//! ```text
//! dbpim-fleet [dse_sweep grid/pipeline flags]
//!             [--workers <n>] [--endpoints host:port,...]
//!             [--strategy round-robin|contiguous|cost-weighted]
//!             [--snapshot-dir <dir>] [--fleet-id <name>]
//!             [--point-timeout-ms <n>] [--retries <n>]
//! ```
//!
//! The rendered report (stdout) is the same pure-function-of-the-results
//! table `dse_sweep` prints, so CI can `diff` a fleet run byte-for-byte
//! against a cold single-driver run of the same grid. Worker narration,
//! retirement notices and statistics go to stderr.
//!
//! With `--snapshot-dir`, each shard persists `shard-NNN.json` after every
//! completed point and the run resumes from whatever those snapshots
//! already cover — including snapshots written by a previous run with a
//! different worker count.

use std::io::Write as _;
use std::time::Instant;

use dbpim_bench::dse::{render_report, DseSweepOptions};
use dbpim_fleet::{FleetDriver, FleetEvent, FleetOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (sweep, fleet) = match (DseSweepOptions::from_slice(&args), FleetOptions::from_slice(&args))
    {
        (Ok(sweep), Ok(fleet)) => (sweep, fleet),
        (Err(e), _) => usage_error(&e.to_string()),
        (_, Err(e)) => usage_error(&e.to_string()),
    };
    // The driver-local knobs of dse_sweep make no sense across a fleet.
    for (flag, set) in [
        ("--snapshot", sweep.snapshot.is_some()),
        ("--limit-points", sweep.limit_points.is_some()),
        ("--batch", sweep.batch.is_some()),
        ("--threads", sweep.threads.is_some()),
    ] {
        if set {
            usage_error(&format!(
                "`{flag}` is a dse_sweep driver flag; fleets shard with --snapshot-dir and \
                 --workers instead"
            ));
        }
    }

    let spec = sweep.spec();
    let config = fleet.fleet_config(sweep.base.pipeline_config());
    eprintln!(
        "dbpim-fleet {}: {} workers ({} remote), strategy {}, snapshots {}",
        config.fleet_id,
        config.workers.len(),
        fleet.endpoints.len(),
        config.strategy,
        config.snapshot_dir.as_ref().map_or("off".to_string(), |d| d.display().to_string()),
    );

    let driver = FleetDriver::new(config).with_observer(move |event| match event {
        FleetEvent::WorkerReady { worker, label } => {
            eprintln!("worker {worker} ({label}) ready");
        }
        FleetEvent::WorkerRetired { worker, label, reason } => {
            eprintln!("worker {worker} ({label}) retired: {reason}");
        }
        FleetEvent::PointDone { completed, total, worker, shard, stolen } => {
            let tag = if *stolen { " (stolen)" } else { "" };
            eprintln!("… {completed}/{total} points (worker {worker}, shard {shard}{tag})");
        }
        FleetEvent::PointRetried { worker, shard, attempt, error } => {
            eprintln!("retry: worker {worker}, shard {shard}, attempt {attempt}: {error}");
        }
        FleetEvent::SnapshotSkipped { path, reason } => {
            eprintln!("skipped snapshot {}: {reason}", path.display());
        }
    });

    let start = Instant::now();
    match driver.run(&spec) {
        Ok(outcome) => {
            print!("{}", render_report(&outcome.report));
            std::io::stdout().flush().ok();
            let stats = &outcome.stats;
            eprintln!(
                "dbpim-fleet: {} fresh + {} resumed of {} points in {:.2?}; {} reassigned, \
                 {} retried attempts",
                stats.fresh_points,
                stats.resumed_points,
                outcome.report.total_points,
                start.elapsed(),
                stats.reassigned_points,
                stats.retried_attempts,
            );
            for (index, worker) in stats.workers.iter().enumerate() {
                match &worker.retired {
                    Some(reason) => eprintln!(
                        "  worker {index} ({}): {} points, retired: {reason}",
                        worker.label, worker.points
                    ),
                    None => {
                        eprintln!("  worker {index} ({}): {} points", worker.label, worker.points)
                    }
                }
            }
            for diagnostic in &stats.diagnostics {
                eprintln!("  note: {diagnostic}");
            }
        }
        Err(e) => {
            eprintln!("dbpim-fleet failed: {e}");
            std::process::exit(1);
        }
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!("{}", DseSweepOptions::USAGE.replace("dse_sweep", "dbpim-fleet"));
    eprintln!("       plus {}", FleetOptions::USAGE);
    std::process::exit(2);
}
