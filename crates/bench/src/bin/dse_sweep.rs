//! Design-space exploration: sweep architecture geometry grids (macro
//! count, SRAM sizes, frequency) × models × sparsity × operand widths with
//! a persisted, resumable snapshot.
//!
//! The rendered report goes to stdout and is a pure function of the
//! results; timing, resume and cache-counter diagnostics go to stderr (so
//! CI can diff cold vs. resumed runs byte-for-byte).

use std::time::Instant;

use dbpim_bench::dse::{render_report, DseSweepOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match DseSweepOptions::from_slice(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", DseSweepOptions::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = dbpim_trace::log_level_from_args(&args) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let trace = match dbpim_trace::TraceSink::from_args(&args) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let driver = match options.driver() {
        Ok(driver) => driver,
        Err(e) => {
            eprintln!("dse_sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let spec = options.spec();

    let start = Instant::now();
    match driver.run(&spec) {
        Ok(report) => {
            print!("{}", render_report(&report));
            if let Some(sink) = trace {
                if let Err(e) = sink.finish() {
                    eprintln!("dse_sweep: writing the trace failed: {e}");
                }
            }
            let stats = driver.cache_stats();
            eprintln!(
                "dse_sweep: {} fresh + {} resumed of {} points in {:.2?} \
                 (cumulative {:.2?}); artifacts {} built / {} hits, programs {} compiled / {} hits",
                report.fresh_points,
                report.entries.len() - report.fresh_points,
                report.total_points,
                start.elapsed(),
                report.wall_time,
                stats.artifact_misses,
                stats.artifact_hits,
                stats.program_misses,
                stats.program_hits,
            );
            if !report.is_complete() {
                eprintln!(
                    "dse_sweep: report is incomplete ({} of {} points); re-run with the same \
                     --snapshot to continue",
                    report.entries.len(),
                    report.total_points
                );
            }
        }
        Err(e) => {
            eprintln!("dse_sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
