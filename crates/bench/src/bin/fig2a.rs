//! Regenerates Fig. 2(a): zero-bit ratio in the weights of the five models.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin fig2a [-- --width 1.0]
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("fig2a", experiments::fig2a);
}
