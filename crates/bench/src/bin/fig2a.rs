//! Regenerates Fig. 2(a): zero-bit ratio in the weights of the five models.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin fig2a [-- --width 1.0]
//! ```

use dbpim_bench::{experiments, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    match experiments::fig2a(&options) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("fig2a failed: {e}");
            std::process::exit(1);
        }
    }
}
