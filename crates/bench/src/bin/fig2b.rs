//! Regenerates Fig. 2(b): block-wise zero bit-columns in the input features.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin fig2b [-- --width 1.0 --cal 2]
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("fig2b", experiments::fig2b);
}
