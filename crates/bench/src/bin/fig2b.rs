//! Regenerates Fig. 2(b): block-wise zero bit-columns in the input features.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin fig2b [-- --width 1.0 --cal 2]
//! ```

use dbpim_bench::{experiments, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    match experiments::fig2b(&options) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("fig2b failed: {e}");
            std::process::exit(1);
        }
    }
}
