//! Regenerates Fig. 7: speedup and energy saving over the dense PIM
//! baseline, swept through the shared batch runner.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin fig7 [-- --width 1.0]
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("fig7", experiments::fig7);
}
