//! Regenerates Fig. 7: speedup and energy saving over the dense PIM baseline.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin fig7 [-- --width 1.0]
//! ```

use dbpim_bench::{experiments, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    match experiments::fig7(&options) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
