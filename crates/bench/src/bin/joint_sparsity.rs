//! Joint value-level + bit-level sparsity: pruning x operand-width table
//! (compiled macro work and hybrid cycles, with deltas vs unpruned).
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin joint_sparsity [-- --width 0.25]
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("joint_sparsity", experiments::joint_sparsity);
}
