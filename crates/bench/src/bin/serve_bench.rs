//! Load generator for the `dbpim-serve` daemon.
//!
//! Spawns an in-process daemon, then measures what the warm artifact cache
//! buys: the cold first request per model (full quantize → FTA → compile →
//! simulate), warm repeats of the same query, and aggregate requests/sec
//! under concurrent clients. Results are recorded in EXPERIMENTS.md
//! ("Serving layer: cold vs. warm request latency").
//!
//! ```text
//! serve_bench [--clients <n>] [--requests <n>] [standard experiment flags]
//! ```
//!
//! The standard flags (`--width`, `--seed`, `--cal`, `--classes`,
//! `--operand-width`, …) shape the daemon's pipeline exactly as they shape
//! every other experiment binary.

use std::time::{Duration, Instant};

use dbpim_bench::ExperimentOptions;
use dbpim_nn::ModelKind;
use dbpim_serve::options::parse_value;
use dbpim_serve::{Client, RunQuery, ServeConfig, Server};

/// Extra load-shape flags on top of the standard experiment options.
struct LoadOptions {
    /// Concurrent clients in the throughput phase.
    clients: usize,
    /// Warm requests per client in the throughput phase (and warm repeats
    /// in the latency phase).
    requests: usize,
}

impl LoadOptions {
    fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut options = Self { clients: 4, requests: 16 };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag != "--clients" && flag != "--requests" {
                i += 1;
                continue;
            }
            let result = args
                .get(i + 1)
                .ok_or_else(|| dbpim_serve::OptionsError {
                    flag: flag.to_string(),
                    message: "missing value".to_string(),
                })
                .and_then(|raw| parse_value::<usize>(flag, raw));
            match result {
                Ok(value) if value > 0 => {
                    if flag == "--clients" {
                        options.clients = value;
                    } else {
                        options.requests = value;
                    }
                }
                Ok(_) => {
                    eprintln!("invalid value for `{flag}`: must be positive");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        options
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Min / median / mean of a latency sample.
fn summarize(mut samples: Vec<Duration>) -> (f64, f64, f64) {
    samples.sort();
    let min = millis(samples[0]);
    let median = millis(samples[samples.len() / 2]);
    let mean = millis(samples.iter().sum::<Duration>()) / samples.len() as f64;
    (min, median, mean)
}

fn main() {
    let options = ExperimentOptions::from_args();
    let load = LoadOptions::from_args();
    // Fidelity is a per-request opt-in over the wire; the load shapes below
    // never request it, so the daemon keeps evaluation capacity configured
    // but idle.
    let pipeline = options.pipeline_config();

    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: load.clients.max(2),
        poll_interval: Duration::from_millis(100),
        pipeline,
        cache_cap: None,
    })
    .unwrap_or_else(|e| {
        eprintln!("serve_bench: cannot start daemon: {e}");
        std::process::exit(1);
    });
    let addr = handle.addr();

    println!("# Serving layer: cold vs. warm request latency\n");
    println!(
        "In-process `dbpim-served` on {addr}, width_mult {}, {} classes, operand width {}, \
         {} warm repeats, {} concurrent clients.\n",
        options.width_mult, options.classes, options.operand_width, load.requests, load.clients,
    );
    println!(
        "| model | cold first request | warm min | warm median | warm mean | cold / warm median |"
    );
    println!("|---|---|---|---|---|---|");

    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("serve_bench: cannot connect: {e}");
        std::process::exit(1);
    });

    for kind in ModelKind::all() {
        let query = RunQuery::new(kind);
        let cold_start = Instant::now();
        if let Err(e) = client.run_model(&query) {
            eprintln!("serve_bench: cold {} failed: {e}", kind.name());
            std::process::exit(1);
        }
        let cold = cold_start.elapsed();

        let mut warm = Vec::with_capacity(load.requests);
        for _ in 0..load.requests {
            let start = Instant::now();
            if let Err(e) = client.run_model(&query) {
                eprintln!("serve_bench: warm {} failed: {e}", kind.name());
                std::process::exit(1);
            }
            warm.push(start.elapsed());
        }
        let (min, median, mean) = summarize(warm);
        println!(
            "| {} | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | {:.1}x |",
            kind.name(),
            millis(cold),
            min,
            median,
            mean,
            millis(cold) / median,
        );
    }

    // Throughput phase: every client hammers the same warm (model, width)
    // point concurrently.
    let total_requests = load.clients * load.requests;
    let throughput_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..load.clients {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("throughput client connects");
                let query = RunQuery::new(ModelKind::AlexNet);
                for _ in 0..load.requests {
                    client.run_model(&query).expect("throughput request succeeds");
                }
            });
        }
    });
    let elapsed = throughput_start.elapsed();
    println!(
        "\nThroughput: {} clients x {} warm `RunModel` requests = {} requests in {:.2} s \
         -> **{:.1} requests/sec** (single AlexNet artifact set, all served from cache).",
        load.clients,
        load.requests,
        total_requests,
        elapsed.as_secs_f64(),
        total_requests as f64 / elapsed.as_secs_f64(),
    );

    match client.cache_stats() {
        Ok(stats) => println!(
            "\nDaemon counters: {} requests, {} errors, {} connections; cache: {} artifact \
             builds, {} artifact hits, {} compilations, {} program hits, {} resident artifact sets.",
            stats.requests,
            stats.errors,
            stats.connections,
            stats.cache.artifact_misses,
            stats.cache.artifact_hits,
            stats.cache.program_misses,
            stats.cache.program_hits,
            stats.cache.resident_artifacts,
        ),
        Err(e) => eprintln!("serve_bench: stats failed: {e}"),
    }

    if let Err(e) = client.shutdown() {
        eprintln!("serve_bench: shutdown failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = handle.join() {
        eprintln!("serve_bench: daemon exit failed: {e}");
        std::process::exit(1);
    }
}
