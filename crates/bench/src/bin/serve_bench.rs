//! Load generator for the `dbpim-serve` daemon.
//!
//! Spawns an in-process daemon, then measures what the warm artifact cache
//! buys: the cold first request per model (full quantize → FTA → compile →
//! simulate), warm repeats of the same query, and aggregate requests/sec
//! under concurrent clients. Results are recorded in EXPERIMENTS.md
//! ("Serving layer: cold vs. warm request latency").
//!
//! ```text
//! serve_bench [--clients <n>] [--requests <n>] [--closed-loop]
//!             [standard experiment flags]
//! ```
//!
//! The standard flags (`--width`, `--seed`, `--cal`, `--classes`,
//! `--operand-width`, …) shape the daemon's pipeline exactly as they shape
//! every other experiment binary.
//!
//! `--closed-loop` replaces the latency table with a saturation probe: N
//! persistent clients hammer one warm point to find the **max sustainable
//! request rate**, then 4x as many connect-per-request clients offer ~4x
//! that load against a daemon with a tiny accept backlog — measuring how
//! many connections admission control turns away with a structured
//! `Overloaded` answer while the daemon itself stays healthy (verified by
//! a final ping + stats round trip). Results are recorded in
//! EXPERIMENTS.md ("Serving layer: closed-loop saturation").

use std::time::{Duration, Instant};

use dbpim_bench::ExperimentOptions;
use dbpim_nn::ModelKind;
use dbpim_serve::options::parse_value;
use dbpim_serve::{Client, ClientError, ErrorKind, RunQuery, ServeConfig, Server};

/// Extra load-shape flags on top of the standard experiment options.
struct LoadOptions {
    /// Concurrent clients in the throughput phase.
    clients: usize,
    /// Warm requests per client in the throughput phase (and warm repeats
    /// in the latency phase).
    requests: usize,
    /// Run the closed-loop saturation probe instead of the latency table.
    closed_loop: bool,
}

impl LoadOptions {
    fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let closed_loop = args.iter().any(|arg| arg == "--closed-loop");
        let mut options = Self { clients: 4, requests: 16, closed_loop };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag != "--clients" && flag != "--requests" {
                i += 1;
                continue;
            }
            let result = args
                .get(i + 1)
                .ok_or_else(|| dbpim_serve::OptionsError {
                    flag: flag.to_string(),
                    message: "missing value".to_string(),
                })
                .and_then(|raw| parse_value::<usize>(flag, raw));
            match result {
                Ok(value) if value > 0 => {
                    if flag == "--clients" {
                        options.clients = value;
                    } else {
                        options.requests = value;
                    }
                }
                Ok(_) => {
                    eprintln!("invalid value for `{flag}`: must be positive");
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        options
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Min / median / mean of a latency sample.
fn summarize(mut samples: Vec<Duration>) -> (f64, f64, f64) {
    samples.sort();
    let min = millis(samples[0]);
    let median = millis(samples[samples.len() / 2]);
    let mean = millis(samples.iter().sum::<Duration>()) / samples.len() as f64;
    (min, median, mean)
}

fn main() {
    let options = ExperimentOptions::from_args();
    let load = LoadOptions::from_args();
    // Fidelity is a per-request opt-in over the wire; the load shapes below
    // never request it, so the daemon keeps evaluation capacity configured
    // but idle.
    let pipeline = options.pipeline_config();

    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: load.clients.max(2),
        poll_interval: Duration::from_millis(100),
        pipeline,
        // The saturation probe needs admission control to actually bite:
        // with the default 64-deep backlog every overload connection would
        // just queue.
        max_pending_connections: if load.closed_loop { 2 } else { 64 },
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("serve_bench: cannot start daemon: {e}");
        std::process::exit(1);
    });
    let addr = handle.addr();

    if load.closed_loop {
        closed_loop_probe(&handle, &load, &options);
    }

    println!("# Serving layer: cold vs. warm request latency\n");
    println!(
        "In-process `dbpim-served` on {addr}, width_mult {}, {} classes, operand width {}, \
         {} warm repeats, {} concurrent clients.\n",
        options.width_mult, options.classes, options.operand_width, load.requests, load.clients,
    );
    println!(
        "| model | cold first request | warm min | warm median | warm mean | cold / warm median |"
    );
    println!("|---|---|---|---|---|---|");

    let mut client = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("serve_bench: cannot connect: {e}");
        std::process::exit(1);
    });

    for kind in ModelKind::all() {
        let query = RunQuery::new(kind);
        let cold_start = Instant::now();
        if let Err(e) = client.run_model(&query) {
            eprintln!("serve_bench: cold {} failed: {e}", kind.name());
            std::process::exit(1);
        }
        let cold = cold_start.elapsed();

        let mut warm = Vec::with_capacity(load.requests);
        for _ in 0..load.requests {
            let start = Instant::now();
            if let Err(e) = client.run_model(&query) {
                eprintln!("serve_bench: warm {} failed: {e}", kind.name());
                std::process::exit(1);
            }
            warm.push(start.elapsed());
        }
        let (min, median, mean) = summarize(warm);
        println!(
            "| {} | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | {:.1}x |",
            kind.name(),
            millis(cold),
            min,
            median,
            mean,
            millis(cold) / median,
        );
    }

    // Throughput phase: every client hammers the same warm (model, width)
    // point concurrently.
    let total_requests = load.clients * load.requests;
    let throughput_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..load.clients {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("throughput client connects");
                let query = RunQuery::new(ModelKind::AlexNet);
                for _ in 0..load.requests {
                    client.run_model(&query).expect("throughput request succeeds");
                }
            });
        }
    });
    let elapsed = throughput_start.elapsed();
    println!(
        "\nThroughput: {} clients x {} warm `RunModel` requests = {} requests in {:.2} s \
         -> **{:.1} requests/sec** (single AlexNet artifact set, all served from cache).",
        load.clients,
        load.requests,
        total_requests,
        elapsed.as_secs_f64(),
        total_requests as f64 / elapsed.as_secs_f64(),
    );

    match client.cache_stats() {
        Ok(stats) => println!(
            "\nDaemon counters: {} requests, {} errors, {} connections; cache: {} artifact \
             builds, {} artifact hits, {} compilations, {} program hits, {} resident artifact sets.",
            stats.requests,
            stats.errors,
            stats.connections,
            stats.cache.artifact_misses,
            stats.cache.artifact_hits,
            stats.cache.program_misses,
            stats.cache.program_hits,
            stats.cache.resident_artifacts,
        ),
        Err(e) => eprintln!("serve_bench: stats failed: {e}"),
    }

    if let Err(e) = client.shutdown() {
        eprintln!("serve_bench: shutdown failed: {e}");
        std::process::exit(1);
    }
    if let Err(e) = handle.join() {
        eprintln!("serve_bench: daemon exit failed: {e}");
        std::process::exit(1);
    }
}

/// The closed-loop saturation probe (`--closed-loop`): find the max
/// sustainable warm-request rate, then offer ~4x that load and count the
/// structured `Overloaded` rejections. Never returns.
fn closed_loop_probe(
    handle: &dbpim_serve::ServerHandle,
    load: &LoadOptions,
    options: &ExperimentOptions,
) -> ! {
    const WINDOW: Duration = Duration::from_secs(3);
    let addr = handle.addr();

    // Warm the single (model, width) point every phase reuses.
    let mut probe = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("serve_bench: cannot connect: {e}");
        std::process::exit(1);
    });
    let query = RunQuery::new(ModelKind::AlexNet);
    if let Err(e) = probe.run_model(&query) {
        eprintln!("serve_bench: warmup failed: {e}");
        std::process::exit(1);
    }

    println!("# Serving layer: closed-loop saturation\n");
    println!(
        "In-process `dbpim-served` on {addr}, width_mult {}, {} worker threads, accept \
         backlog 2, warm AlexNet point, {:?} measurement windows.\n",
        options.width_mult,
        load.clients.max(2),
        WINDOW,
    );

    // Phase 1 — closed loop at the daemon's own concurrency: every worker
    // continuously busy is by definition the max sustainable rate.
    let sustained: usize = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..load.clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("closed-loop client connects");
                    let query = RunQuery::new(ModelKind::AlexNet);
                    let deadline = Instant::now() + WINDOW;
                    let mut completed = 0usize;
                    while Instant::now() < deadline {
                        client.run_model(&query).expect("sustained request succeeds");
                        completed += 1;
                    }
                    completed
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("closed-loop client")).sum()
    });
    let sustainable_rps = sustained as f64 / WINDOW.as_secs_f64();

    // Phase 2 — ~4x offered load: 4x as many clients, each paying a fresh
    // connection per request so every attempt is a fresh admission
    // decision. Attempts either serve or bounce with `Overloaded`.
    let overload_clients = load.clients * 4;
    let results: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..overload_clients)
            .map(|_| {
                scope.spawn(|| {
                    let query = RunQuery::new(ModelKind::AlexNet);
                    let deadline = Instant::now() + WINDOW;
                    let (mut served, mut rejected, mut other) = (0usize, 0usize, 0usize);
                    while Instant::now() < deadline {
                        let outcome =
                            Client::connect(addr).and_then(|mut client| client.run_model(&query));
                        match outcome {
                            Ok(_) => served += 1,
                            Err(ClientError::Server(error))
                                if error.kind == ErrorKind::Overloaded =>
                            {
                                rejected += 1;
                            }
                            // A connection torn down mid-rejection surfaces
                            // as an I/O error; same admission outcome.
                            Err(ClientError::Io(_) | ClientError::Protocol(_)) => rejected += 1,
                            Err(e) => {
                                eprintln!("serve_bench: unexpected overload failure: {e}");
                                other += 1;
                            }
                        }
                    }
                    (served, rejected, other)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("overload client")).collect()
    });
    let served: usize = results.iter().map(|r| r.0).sum();
    let rejected: usize = results.iter().map(|r| r.1).sum();
    let unexpected: usize = results.iter().map(|r| r.2).sum();
    let offered = served + rejected + unexpected;

    // Health check: the daemon must still answer — no worker died, no
    // state was poisoned.
    if let Err(e) = probe.ping() {
        eprintln!("serve_bench: daemon unhealthy after overload: {e}");
        std::process::exit(1);
    }
    let stats = probe.stats().unwrap_or_else(|e| {
        eprintln!("serve_bench: stats failed after overload: {e}");
        std::process::exit(1);
    });

    println!("| phase | clients | outcome |");
    println!("|---|---|---|");
    println!(
        "| sustained (closed loop) | {} persistent | {} requests in {:.1} s -> \
         **{sustainable_rps:.1} req/s** |",
        load.clients,
        sustained,
        WINDOW.as_secs_f64(),
    );
    println!(
        "| overload (~4x offered) | {overload_clients} connect-per-request | {offered} attempts: \
         {served} served, {rejected} rejected `Overloaded`, {unexpected} unexpected |",
    );
    println!(
        "\nDaemon after overload: healthy (ping OK); {} requests, {} errors, {} connections, \
         {} overload rejections counted server-side, 0 worker panics observed \
         (all workers answering).",
        stats.requests, stats.errors, stats.connections, stats.rejected_overloaded,
    );

    if let Err(e) = probe.shutdown() {
        eprintln!("serve_bench: shutdown failed: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}
