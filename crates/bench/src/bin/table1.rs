//! Regenerates Table 1: sparsity-support comparison among SRAM-PIMs.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table1
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("table1", |_context| Ok(experiments::table1()));
}
