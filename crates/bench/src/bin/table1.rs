//! Regenerates Table 1: sparsity-support comparison among SRAM-PIMs.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table1
//! ```

use dbpim_bench::experiments;

fn main() {
    print!("{}", experiments::table1());
}
