//! Regenerates Table 2: INT8 baseline vs FTA model accuracy fidelity.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table2 [-- --width 1.0 --images 16]
//! ```

use dbpim_bench::{experiments, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    match experiments::table2(&options) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
