//! Regenerates Table 2: INT8 baseline vs FTA model accuracy fidelity.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table2 [-- --width 1.0 --images 16]
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("table2", experiments::table2);
}
