//! Regenerates Table 3: comparison with prior SRAM-PIM accelerators.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table3 [-- --width 1.0]
//! ```

use dbpim_bench::{experiments, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args();
    match experiments::table3(&options) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
