//! Regenerates Table 3: comparison with prior SRAM-PIM accelerators.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table3 [-- --width 1.0]
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("table3", experiments::table3);
}
