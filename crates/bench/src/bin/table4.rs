//! Regenerates Table 4: DB-PIM area breakdown.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table4
//! ```

use dbpim_bench::experiments;

fn main() {
    print!("{}", experiments::table4());
}
