//! Regenerates Table 4: DB-PIM area breakdown.
//!
//! ```bash
//! cargo run --release -p dbpim-bench --bin table4
//! ```

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("table4", |context| Ok(experiments::table4(context)));
}
