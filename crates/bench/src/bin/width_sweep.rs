//! Width sweep: DB-PIM quality and speedups across weight operand widths
//! (INT4/INT8/INT12/INT16) for the five paper models.

use dbpim_bench::{experiments, run_report_binary};

fn main() {
    run_report_binary("width_sweep", experiments::width_sweep);
}
