//! The `dse_sweep` experiment: strict option parsing, driver wiring and
//! deterministic report rendering for design-space explorations.
//!
//! ```text
//! dse_sweep [pipeline flags: --width --seed --images --cal --classes --operand-width]
//!           [--macros 2,4,8] [--compartments a,b] [--dbmus a,b] [--rows 32,64]
//!           [--freqs 250,500] [--feature-kb a,b] [--weight-kb a,b] [--meta-kb a,b]
//!           [--models alexnet,vgg19] [--widths 4,8] [--pruning 0.3,s0.5]
//!           [--sparsity base,hybrid]
//!           [--fidelity] [--snapshot <path>] [--limit-points <n>]
//!           [--batch <n>] [--threads <n>]
//! ```
//!
//! The rendered report (stdout) is a pure function of the computed results —
//! timings and cache counters go to stderr — so the CI resume smoke test can
//! `diff` a cold run against a resumed one.

use std::fmt::Write as _;
use std::str::FromStr;

use db_pim::prelude::*;
use db_pim::PipelineError;

use crate::{pct, ExperimentOptions, OptionsError};

/// Strictly parsed `dse_sweep` command line: the shared pipeline flags plus
/// the grid axes and driver controls.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSweepOptions {
    /// The shared pipeline flags (`--width`, `--seed`, ...).
    pub base: ExperimentOptions,
    /// Macro-count axis (empty = the paper value).
    pub macros: Vec<usize>,
    /// Compartments-per-macro axis.
    pub compartments: Vec<usize>,
    /// DBMU-columns axis.
    pub dbmus: Vec<usize>,
    /// Rows-per-DBMU axis.
    pub rows: Vec<usize>,
    /// Frequency axis in MHz.
    pub freqs: Vec<f64>,
    /// Feature-buffer axis in KB.
    pub feature_kb: Vec<usize>,
    /// Weight-buffer axis in KB.
    pub weight_kb: Vec<usize>,
    /// Meta-buffer axis in KB.
    pub meta_kb: Vec<usize>,
    /// Models to explore (empty = all five paper models).
    pub models: Vec<ModelKind>,
    /// Operand-width axis (empty = the `--operand-width` value).
    pub widths: Vec<OperandWidth>,
    /// Value-level pruning axis (empty = no pruning): `0.3` for an
    /// unstructured fraction, `s0.5` for structured per-channel removal.
    pub pruning: Vec<PruningSpec>,
    /// Sparsity configurations (empty = all four).
    pub sparsity: Vec<SparsityConfig>,
    /// Evaluate fidelity where defined.
    pub fidelity: bool,
    /// Snapshot path to persist to and resume from.
    pub snapshot: Option<String>,
    /// Compute at most this many missing points this run.
    pub limit_points: Option<usize>,
    /// Points per persisted batch.
    pub batch: Option<usize>,
    /// Worker threads.
    pub threads: Option<usize>,
}

impl DseSweepOptions {
    /// The grid / driver flags this parser understands on top of
    /// [`ExperimentOptions::FLAGS`].
    pub const FLAGS: [&'static str; 16] = [
        "--macros",
        "--compartments",
        "--dbmus",
        "--rows",
        "--freqs",
        "--feature-kb",
        "--weight-kb",
        "--meta-kb",
        "--models",
        "--widths",
        "--pruning",
        "--sparsity",
        "--snapshot",
        "--limit-points",
        "--batch",
        "--threads",
    ];

    /// One-line usage text for the binary.
    pub const USAGE: &'static str = "usage: dse_sweep [--width <f32>] [--seed <u64>] \
         [--images <n>] [--cal <n>] [--classes <n>] [--operand-width <4|8|12|16>] \
         [--macros a,b] [--compartments a,b] [--dbmus a,b] [--rows a,b] [--freqs a,b] \
         [--feature-kb a,b] [--weight-kb a,b] [--meta-kb a,b] [--models a,b] \
         [--widths 4,8,...] [--pruning 0.3,s0.5,...] [--sparsity base,hybrid,...] [--fidelity] \
         [--snapshot <path>] [--limit-points <n>] [--batch <n>] [--threads <n>] \
         [--trace-out <path>] [--log-level error|warn|info|debug]";

    /// Parses options from an explicit argument list. Unknown flags are
    /// ignored; a known flag with a missing or malformed value is an error.
    ///
    /// # Errors
    ///
    /// Returns [`OptionsError`] naming the offending flag.
    pub fn from_slice(args: &[String]) -> Result<Self, OptionsError> {
        let base = ExperimentOptions::from_slice(args)?;
        let mut options = Self {
            base,
            macros: Vec::new(),
            compartments: Vec::new(),
            dbmus: Vec::new(),
            rows: Vec::new(),
            freqs: Vec::new(),
            feature_kb: Vec::new(),
            weight_kb: Vec::new(),
            meta_kb: Vec::new(),
            models: Vec::new(),
            widths: Vec::new(),
            pruning: Vec::new(),
            sparsity: Vec::new(),
            fidelity: false,
            snapshot: None,
            limit_points: None,
            batch: None,
            threads: None,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--fidelity" {
                options.fidelity = true;
                i += 1;
                continue;
            }
            if !Self::FLAGS.contains(&flag) {
                i += 1;
                continue;
            }
            let raw = args.get(i + 1).ok_or_else(|| OptionsError {
                flag: flag.to_string(),
                message: "missing value".to_string(),
            })?;
            match flag {
                "--macros" => options.macros = parse_list(flag, raw)?,
                "--compartments" => options.compartments = parse_list(flag, raw)?,
                "--dbmus" => options.dbmus = parse_list(flag, raw)?,
                "--rows" => options.rows = parse_list(flag, raw)?,
                "--freqs" => options.freqs = parse_list(flag, raw)?,
                "--feature-kb" => options.feature_kb = parse_list(flag, raw)?,
                "--weight-kb" => options.weight_kb = parse_list(flag, raw)?,
                "--meta-kb" => options.meta_kb = parse_list(flag, raw)?,
                "--models" => options.models = parse_list(flag, raw)?,
                "--widths" => options.widths = parse_list(flag, raw)?,
                "--pruning" => options.pruning = parse_list(flag, raw)?,
                "--sparsity" => options.sparsity = parse_list(flag, raw)?,
                "--snapshot" => options.snapshot = Some(raw.clone()),
                "--limit-points" => options.limit_points = Some(parse_scalar(flag, raw)?),
                "--batch" => options.batch = Some(parse_scalar(flag, raw)?),
                "--threads" => options.threads = Some(parse_scalar(flag, raw)?),
                _ => unreachable!("flag list and match arms agree"),
            }
            i += 2;
        }
        Ok(options)
    }

    /// The exploration spec these options describe. Buffer axes given in KB
    /// are converted to bytes here.
    #[must_use]
    pub fn spec(&self) -> DseSpec {
        let kb = |values: &[usize]| values.iter().map(|v| v * 1024).collect::<Vec<_>>();
        let mut grid = ArchGrid::around(ArchConfig::paper());
        grid.macros = self.macros.clone();
        grid.compartments_per_macro = self.compartments.clone();
        grid.dbmus_per_compartment = self.dbmus.clone();
        grid.rows_per_dbmu = self.rows.clone();
        grid.frequency_mhz = self.freqs.clone();
        grid.feature_buffer_bytes = kb(&self.feature_kb);
        grid.weight_buffer_bytes = kb(&self.weight_kb);
        grid.meta_buffer_bytes = kb(&self.meta_kb);
        let models =
            if self.models.is_empty() { ModelKind::all().to_vec() } else { self.models.clone() };
        let mut spec = DseSpec::new(grid, models)
            .with_widths(self.widths.clone())
            .with_pruning(self.pruning.clone());
        if !self.sparsity.is_empty() {
            spec = spec.with_sparsity(self.sparsity.clone());
        }
        if self.fidelity {
            spec = spec.with_fidelity();
        }
        spec
    }

    /// A driver configured from these options.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for an unusable pipeline
    /// configuration.
    pub fn driver(&self) -> Result<DseDriver, PipelineError> {
        let mut driver = DseDriver::new(self.base.pipeline_config())?;
        if let Some(path) = &self.snapshot {
            driver = driver.with_snapshot(path);
        }
        if let Some(limit) = self.limit_points {
            driver = driver.with_point_limit(limit);
        }
        if let Some(batch) = self.batch {
            driver = driver.with_batch_size(batch);
        }
        if let Some(threads) = self.threads {
            driver = driver.with_threads(threads);
        }
        Ok(driver)
    }
}

/// Parses a comma-separated list, attributing the failing element to the
/// flag.
fn parse_list<T: FromStr>(flag: &str, raw: &str) -> Result<Vec<T>, OptionsError>
where
    T::Err: std::fmt::Display,
{
    raw.split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.parse().map_err(|e: T::Err| OptionsError {
                flag: flag.to_string(),
                message: format!("`{part}` — {e}"),
            })
        })
        .collect()
}

fn parse_scalar<T: FromStr>(flag: &str, raw: &str) -> Result<T, OptionsError>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e: T::Err| OptionsError {
        flag: flag.to_string(),
        message: format!("`{raw}` — {e}"),
    })
}

/// Renders a [`DseReport`] as a deterministic text table: one row per
/// (point, sparsity run) plus a Pareto-frontier section per model.
///
/// The output is a pure function of the results — no timestamps, wall
/// times or cache counters — so two runs over the same grid (cold, or
/// resumed from a half-deleted snapshot) render byte-identical reports.
#[must_use]
pub fn render_report(report: &DseReport) -> String {
    let area = AreaModel::calibrated_28nm();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DSE sweep - {} of {} grid points ({} models x {} widths x geometries)",
        report.entries.len(),
        report.total_points,
        report.spec.unique_models().len(),
        report.spec.effective_widths(OperandWidth::Int8).len(),
    );
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>7} {:>5} {:>6} {:>5} {:>6} | {:<16} {:>12} {:>10} {:>10} {:>8}",
        "model",
        "width",
        "macros",
        "comp",
        "dbmus",
        "rows",
        "MHz",
        "sparsity",
        "cycles",
        "lat (ms)",
        "uJ",
        "speedup"
    );
    for entry in &report.entries {
        let has_baseline = entry.result.run(SparsityConfig::DenseBaseline).is_some();
        for run in &entry.result.runs {
            let speedup = if has_baseline {
                format!("{:.2}x", entry.result.speedup(run.sparsity))
            } else {
                "n/a".to_string()
            };
            // An active pruning spec rides in the width cell (`int8/u0.50`);
            // unpruned rows keep the historical rendering byte-for-byte.
            let width_cell = if entry.pruning.is_active() {
                format!("{}/{}", entry.width, entry.pruning.label())
            } else {
                entry.width.to_string()
            };
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>7} {:>5} {:>6} {:>5} {:>6} | {:<16} {:>12} {:>10.4} {:>10.3} {:>8}",
                entry.kind.name(),
                width_cell,
                entry.arch.macros,
                entry.arch.compartments_per_macro,
                entry.arch.dbmus_per_compartment,
                entry.arch.rows_per_dbmu,
                entry.arch.frequency_mhz,
                run.sparsity.to_string(),
                run.total_cycles(),
                run.latency_ms(),
                run.total_energy_uj(),
                speedup,
            );
        }
    }
    for kind in report.spec.unique_models() {
        for sparsity in report.spec.unique_sparsity() {
            let frontier = report.pareto_frontier(kind, sparsity);
            if frontier.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "pareto frontier [{} / {}] (latency, energy, area{}):",
                kind.name(),
                sparsity,
                if report.spec.fidelity { ", fidelity" } else { "" },
            );
            for (index, metrics) in frontier {
                let entry = &report.entries[index];
                let pruning_tag = if entry.pruning.is_active() {
                    format!(" [{}]", entry.pruning.label())
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  {} @ {}{}: {} macros x {} rows @ {} MHz — {:.4} ms, {:.3} uJ, {:.4} mm2, loss {}",
                    entry.kind.name(),
                    entry.width,
                    pruning_tag,
                    entry.arch.macros,
                    entry.arch.rows_per_dbmu,
                    entry.arch.frequency_mhz,
                    metrics.latency_ms,
                    metrics.energy_uj,
                    area.total_mm2(&entry.arch),
                    pct(metrics.fidelity_loss),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn grid_and_driver_flags_parse_strictly() {
        let options = DseSweepOptions::from_slice(&args(&[
            "--width",
            "0.25",
            "--classes",
            "10",
            "--macros",
            "2,4,8",
            "--rows",
            "32,64",
            "--freqs",
            "250,500",
            "--weight-kb",
            "32,64",
            "--models",
            "alexnet,mobilenet-v2",
            "--widths",
            "4,8",
            "--sparsity",
            "base,hybrid",
            "--snapshot",
            "/tmp/dse.json",
            "--limit-points",
            "24",
            "--batch",
            "4",
            "--threads",
            "2",
            "--fidelity",
        ]))
        .unwrap();
        assert!((options.base.width_mult - 0.25).abs() < 1e-6);
        assert_eq!(options.macros, vec![2, 4, 8]);
        assert_eq!(options.rows, vec![32, 64]);
        assert_eq!(options.freqs, vec![250.0, 500.0]);
        assert_eq!(options.weight_kb, vec![32, 64]);
        assert_eq!(options.models, vec![ModelKind::AlexNet, ModelKind::MobileNetV2]);
        assert_eq!(options.widths, vec![OperandWidth::Int4, OperandWidth::Int8]);
        assert_eq!(
            options.sparsity,
            vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]
        );
        assert_eq!(options.snapshot.as_deref(), Some("/tmp/dse.json"));
        assert_eq!(options.limit_points, Some(24));
        assert_eq!(options.batch, Some(4));
        assert_eq!(options.threads, Some(2));
        assert!(options.fidelity);

        let spec = options.spec();
        assert_eq!(spec.grid.macros, vec![2, 4, 8]);
        assert_eq!(spec.grid.weight_buffer_bytes, vec![32 * 1024, 64 * 1024]);
        assert_eq!(spec.points(OperandWidth::Int8, PruningSpec::none()).unwrap().len(), 2 * 2 * 24);
        assert!(spec.fidelity);
    }

    #[test]
    fn malformed_grid_values_are_rejected_not_swallowed() {
        let err = DseSweepOptions::from_slice(&args(&["--macros", "2,x"])).unwrap_err();
        assert_eq!(err.flag, "--macros");
        assert!(err.message.contains('x'), "{err}");

        let err = DseSweepOptions::from_slice(&args(&["--freqs"])).unwrap_err();
        assert_eq!(err.flag, "--freqs");
        assert!(err.to_string().contains("missing"), "{err}");

        let err = DseSweepOptions::from_slice(&args(&["--models", "lenet"])).unwrap_err();
        assert_eq!(err.flag, "--models");

        // Shared pipeline flags stay strict too.
        let err = DseSweepOptions::from_slice(&args(&["--operand-width", "10"])).unwrap_err();
        assert_eq!(err.flag, "--operand-width");
    }

    #[test]
    fn defaults_cover_the_paper_models_on_the_paper_point() {
        let options = DseSweepOptions::from_slice(&args(&[])).unwrap();
        let spec = options.spec();
        assert_eq!(spec.models.len(), 5);
        assert_eq!(spec.grid, ArchGrid::around(ArchConfig::paper()));
        assert_eq!(spec.points(OperandWidth::Int8, PruningSpec::none()).unwrap().len(), 5);
        assert_eq!(spec.sparsity, SparsityConfig::all().to_vec());
        assert!(!spec.fidelity);
    }

    #[test]
    fn rendered_report_is_deterministic_for_identical_results() {
        let config = db_pim::PipelineConfig::fast().without_fidelity();
        let driver = DseDriver::new(config).unwrap();
        let spec = DseSpec::new(
            ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]),
            vec![ModelKind::MobileNetV2],
        )
        .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]);
        let first = driver.run(&spec).unwrap();
        let second = driver.run(&spec).unwrap();
        assert!(first.results_match(&second));
        let rendered = render_report(&first);
        assert_eq!(rendered, render_report(&second), "rendering leaked non-determinism");
        assert!(rendered.contains("pareto frontier"));
        assert!(rendered.contains("MobileNetV2"));
    }
}
