//! The experiment generators: one function per table / figure of the paper.
//!
//! Every function renders the formatted report as a `String`; the binaries in
//! `src/bin/` print it. Each report states which quantity corresponds to
//! which published number so that `EXPERIMENTS.md` can record paper-vs-
//! measured pairs directly from the output.
//!
//! All generators draw from one [`ExperimentContext`]: models are built
//! once, pipeline artifacts are prepared once, and the Fig. 7 / Table 2 /
//! Table 3 sweeps share compiled programs through the context's
//! [`BatchRunner`](db_pim::BatchRunner) instead of re-running the pipeline
//! per table.

use std::fmt::Write as _;

use db_pim::prelude::*;
use db_pim::PipelineError;

use crate::reference;
use crate::{input_column_sparsity, paper_models, pct, weight_sparsity_stats, ExperimentContext};

/// Fig. 2(a): zero-bit ratio of the weights of the five models, under plain
/// binary, CSD recoding and the FTA approximation.
///
/// # Errors
///
/// Propagates model-construction or approximation failures.
pub fn fig2a(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 2(a) - zero-bit ratio in weights (width x{})", options.width_mult);
    let _ = writeln!(out, "{:<16} {:>10} {:>10} {:>10}", "model", "Ori_Zero", "CSD_Zero", "Ours");
    for kind in paper_models() {
        let model = context.session().model(kind)?;
        let stats = weight_sparsity_stats(&model)?;
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10}",
            kind.name(),
            pct(stats.binary_zero_ratio()),
            pct(stats.csd_zero_ratio()),
            pct(stats.fta_zero_ratio())
        );
    }
    let _ = writeln!(out, "paper: 65-85% zero bits, CSD adds ~5%, FTA adds ~5% more.");
    Ok(out)
}

/// Fig. 2(b): ratio of block-wise all-zero bit columns in the input features
/// for group sizes 1, 8 and 16.
///
/// # Errors
///
/// Propagates quantization or inference failures.
pub fn fig2b(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 2(b) - zero bit-columns in input features (width x{})",
        options.width_mult
    );
    let _ = writeln!(out, "{:<16} {:>10} {:>10} {:>10}", "model", "group 1", "group 8", "group 16");
    for kind in paper_models() {
        let model = context.session().model(kind)?;
        let [g1, g8, g16] = input_column_sparsity(&model, options)?;
        let _ =
            writeln!(out, "{:<16} {:>10} {:>10} {:>10}", kind.name(), pct(g1), pct(g8), pct(g16));
    }
    let _ = writeln!(out, "paper: up to ~80% for groups of 8 and ~70% for groups of 16.");
    Ok(out)
}

/// Table 1: qualitative sparsity-support comparison.
#[must_use]
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 - sparsity exploitation comparison among SRAM-PIMs");
    let _ = writeln!(
        out,
        "{:<22} {:>6} {:>8} {:>8} {:>14} {:<28}",
        "design", "type", "operand", "circuit", "structure", "ineffectual MACs removed"
    );
    for row in reference::table1_rows() {
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>8} {:>8} {:>14} {:<28}",
            row.label, row.sparsity_type, row.operand, row.circuit, row.structure, row.removed
        );
    }
    out
}

/// Table 2: accuracy of the INT8 baseline vs the FTA model.
///
/// The reproduction replaces CIFAR-100 accuracy with top-1 agreement /
/// synthetic-label accuracy (see `DESIGN.md`); the paper's published drops
/// are printed alongside for reference.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn table2(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let paper_drop = [0.98, 0.64, 0.56, 0.16, 0.52];
    let sweep = context.zoo_sweep(true)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 - FTA fidelity on synthetic batches (width x{}, {} images)",
        options.width_mult, options.evaluation_images
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "model", "agreement", "disagreement", "logit SQNR", "label drop", "paper drop"
    );
    for (kind, paper) in paper_models().into_iter().zip(paper_drop) {
        let result = sweep.result(kind).expect("zoo sweep covers every paper model");
        let fidelity = result.fidelity.as_ref().ok_or_else(|| PipelineError::BadConfig {
            reason: if options.operand_width == OperandWidth::Int8 {
                "Table 2 needs at least one evaluation image (pass --images 1 or more)".to_string()
            } else {
                format!(
                    "Table 2 (fidelity) is INT8-only; remove `--operand-width {}`",
                    options.operand_width
                )
            },
        })?;
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>14} {:>11.1} dB {:>12} {:>11.2}%",
            kind.name(),
            pct(fidelity.top1_agreement),
            pct(1.0 - fidelity.top1_agreement),
            fidelity.mean_logit_sqnr_db,
            pct(fidelity.accuracy_drop()),
            paper
        );
    }
    let _ = writeln!(
        out,
        "paper: CIFAR-100 top-1 accuracy drop below 1% on every model.\n\
         note: with synthetic (untrained) weights, labels carry no signal, so the\n\
         Table-2 substitute is baseline-vs-FTA top-1 agreement and logit SQNR;\n\
         disagreement is an upper bound on the accuracy drop the approximation\n\
         could cause (untrained compact models have nearly flat logits, which\n\
         makes their argmax fragile and overstates the bound)."
    );
    Ok(out)
}

/// Fig. 7: speedup and energy saving of the four sparsity configurations
/// over the dense digital-PIM baseline, per model.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn fig7(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let sweep = context.zoo_sweep(false)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7 - speedup and energy saving over the dense PIM baseline (width x{})",
        options.width_mult
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8} {:>10} | {:>9} {:>9} {:>11}",
        "model", "input x", "weight x", "hybrid x", "saving", "paper wx", "paper hx", "paper save"
    );
    let paper = reference::paper_fig7_rows();
    for (kind, paper_row) in paper_models().into_iter().zip(paper) {
        let result = sweep.result(kind).expect("zoo sweep covers every paper model");
        let _ = writeln!(
            out,
            "{:<16} {:>7.2}x {:>7.2}x {:>7.2}x {:>10} | {:>8.2}x {:>8.2}x {:>11}",
            kind.name(),
            result.speedup(SparsityConfig::InputSparsity),
            result.speedup(SparsityConfig::WeightSparsity),
            result.speedup(SparsityConfig::HybridSparsity),
            pct(result.energy_saving(SparsityConfig::HybridSparsity)),
            paper_row.weight_speedup,
            paper_row.hybrid_speedup,
            pct(paper_row.energy_saving)
        );
    }
    let _ =
        writeln!(out, "paper: hybrid speedup up to 7.69x (AlexNet), energy saving 63.49-83.43%.");
    Ok(out)
}

/// Table 3: comparison with prior works (prior columns are the published
/// numbers; the "This Work" column is produced by this reproduction).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn table3(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let arch = context.arch();
    let area = AreaModel::calibrated_28nm();
    let headline = reference::paper_headline();

    // Per-model utilization (weights only) and hybrid-run efficiency/power,
    // from the shared zoo sweep (artifacts reused from Fig. 7 / Table 2 when
    // rendered in the same process).
    let sweep = context.zoo_sweep(false)?;
    let mut utilization_rows = Vec::new();
    let mut min_eff = f64::INFINITY;
    let mut max_eff = 0.0f64;
    let mut min_power = f64::INFINITY;
    let mut max_power = 0.0f64;
    for kind in paper_models() {
        let result = sweep.result(kind).expect("zoo sweep covers every paper model");
        let hybrid = result.run(SparsityConfig::HybridSparsity).expect("hybrid simulated");
        let eff = hybrid.energy_efficiency_tops_per_w();
        let power = hybrid.average_power_mw();
        min_eff = min_eff.min(eff);
        max_eff = max_eff.max(eff);
        min_power = min_power.min(power);
        max_power = max_power.max(power);
        utilization_rows.push((kind.name(), result.utilization()));
    }

    let mut out = String::new();
    let _ = writeln!(out, "Table 3 - comparison with prior SRAM-PIM accelerators");
    let _ = writeln!(out, "-- prior works (published numbers) --");
    for work in reference::table3_prior_works() {
        let _ = writeln!(
            out,
            "{:<18} {:>3}nm {:>7.2}mm2 {:>9}MHz {:>15}mW {:>5}KB SRAM {:>5}KB PIM {:>4} macros {:>7.2} TOPS {:>7.2} GOPS/macro {:>13} TOPS/W {:>6.2} TOPS/W/mm2",
            work.label,
            work.technology_nm,
            work.die_area_mm2,
            work.frequency_mhz,
            work.power_mw,
            work.sram_kb,
            work.pim_kb,
            work.macros,
            work.peak_tops,
            work.peak_gops_per_macro,
            work.energy_efficiency,
            work.peak_ee_per_mm2
        );
    }

    let die = area.total_mm2(&arch);
    let peak = peak_throughput_tops(&arch, PEAK_INPUT_SKIP);
    let per_macro = peak_throughput_per_macro_gops(&arch, PEAK_INPUT_SKIP);
    let _ = writeln!(
        out,
        "\n-- this work (measured by this reproduction, width x{}) --",
        options.width_mult
    );
    let _ = writeln!(out, "technology              : 28 nm (cost-model calibration)");
    let _ = writeln!(
        out,
        "die area                : {die:.3} mm2 (paper {:.3})",
        headline.die_area_mm2
    );
    let _ = writeln!(out, "frequency               : {} MHz", arch.frequency_mhz);
    let _ = writeln!(
        out,
        "power                   : {min_power:.2} - {max_power:.2} mW (paper 1.45 - 11.65)"
    );
    let _ = writeln!(out, "SRAM size               : {} KB", arch.sram_bytes() / 1024);
    let _ = writeln!(
        out,
        "PIM size                : {} KB across {} macros",
        arch.pim_bytes() / 1024,
        arch.macros
    );
    let _ = writeln!(out, "dataset                 : synthetic CIFAR-100-shaped batches");
    let _ =
        writeln!(out, "peak throughput         : {peak:.3} TOPS (paper {:.2})", headline.peak_tops);
    let _ = writeln!(
        out,
        "peak throughput / macro : {per_macro:.1} GOPS (paper {:.1})",
        headline.peak_gops_per_macro
    );
    let _ = writeln!(
        out,
        "energy efficiency       : {min_eff:.2} - {max_eff:.2} TOPS/W (paper 18.14 - 45.20)"
    );
    let _ =
        writeln!(out, "peak EE per unit area   : {:.2} TOPS/W/mm2 (paper 39.30)", max_eff / die);
    let _ = writeln!(out, "actual utilization U_act (paper 91.95% - 98.42%):");
    for (name, utilization) in utilization_rows {
        let _ = writeln!(out, "  {name:<16} {}", pct(utilization));
    }
    Ok(out)
}

/// Width sweep: per-model DB-PIM quality across operand widths
/// (INT4/INT8/INT12/INT16) — the precision axis the ROADMAP's "CSD-width
/// scenarios" item asked for.
///
/// For every paper model and every supported width, the sweep reports the
/// actual utilization `U_act`, the FTA zero-digit ratio, and the weight /
/// hybrid speedups plus hybrid energy saving over the dense baseline *at
/// the same width* (wider dense mappings fit fewer filters per macro, so
/// the baseline slows down with width while the DB-PIM cost tracks `φ_th`).
/// Fidelity is INT8-only and therefore omitted here.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn width_sweep(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let spec =
        db_pim::SweepSpec::new(paper_models().to_vec()).with_widths(OperandWidth::all().to_vec());
    let report = context.runner().run(&spec)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Width sweep - DB-PIM across weight operand widths (channel width x{})",
        options.width_mult
    );
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "model", "width", "U_act", "FTA_zero", "weight x", "hybrid x", "saving"
    );
    for kind in paper_models() {
        for width in OperandWidth::all() {
            let result = report
                .result_at_width(kind, width)
                .expect("width sweep covers every (model, width)");
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>8} {:>9} {:>8.2}x {:>8.2}x {:>9}",
                kind.name(),
                width.to_string(),
                pct(result.utilization()),
                pct(result.fta_stats.fta_zero_ratio()),
                result.speedup(SparsityConfig::WeightSparsity),
                result.speedup(SparsityConfig::HybridSparsity),
                pct(result.energy_saving(SparsityConfig::HybridSparsity)),
            );
        }
    }
    let _ = writeln!(
        out,
        "note: INT8 is the paper's setting; other widths quantize the float\n\
         weights per output channel at that width. Speedups are relative to\n\
         the dense baseline of the same width."
    );
    Ok(out)
}

/// Joint value-level + bit-level sparsity: how magnitude pruning compounds
/// with the CSD bit sparsity across operand widths.
///
/// For each (width, pruning) variant the report counts the compiled DB-PIM
/// macro work — `Compute` tiles and loaded weight cells — and the hybrid
/// simulation cycles, each with its delta against the unpruned variant of
/// the same width. The dense baseline ignores value sparsity by
/// construction, so its cycles are printed once per width as the anchor.
///
/// # Errors
///
/// Propagates preparation, compilation or simulation failures.
pub fn joint_sparsity(context: &ExperimentContext) -> Result<String, PipelineError> {
    let options = context.options();
    let kind = ModelKind::AlexNet;
    let arch = context.arch();
    let widths = [OperandWidth::Int4, OperandWidth::Int8];
    let prunings = [
        PruningSpec::none(),
        PruningSpec::unstructured(0.3),
        PruningSpec::unstructured(0.5),
        PruningSpec::structured(0.5),
    ];

    let macro_work = |program: &ModelProgram| -> (u64, u64) {
        let mut tiles = 0u64;
        let mut cells = 0u64;
        for layer in &program.layers {
            for inst in &layer.instructions {
                match inst {
                    dbpim_compiler::Instruction::Compute { .. } => tiles += 1,
                    dbpim_compiler::Instruction::LoadWeights {
                        filters,
                        weights_per_filter,
                        cells_per_weight,
                        ..
                    } => {
                        cells += u64::from(*filters)
                            * u64::from(*weights_per_filter)
                            * u64::from(*cells_per_weight);
                    }
                    _ => {}
                }
            }
        }
        (tiles, cells)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Joint sparsity - value pruning x operand width on {} (width x{})",
        kind.name(),
        options.width_mult
    );
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>7} {:>7} {:>10} {:>7} {:>12} {:>7} {:>9}",
        "width", "pruning", "tiles", "d_tile", "cells", "d_cell", "hybrid cyc", "d_cyc", "speedup"
    );
    for width in widths {
        let mut baseline: Option<(u64, u64, u64)> = None;
        for pruning in prunings {
            let session = context.runner().session_for_variant(width, pruning)?;
            let programs = session.artifacts(kind)?.programs(arch)?;
            let (tiles, cells) = macro_work(&programs.sparse);
            let entry = context.runner().run_point_pruned(
                kind,
                width,
                pruning,
                None,
                &[SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity],
                false,
            )?;
            let cycles = entry
                .result
                .run(SparsityConfig::HybridSparsity)
                .expect("hybrid was requested")
                .total_cycles();
            let (base_tiles, base_cells, base_cycles) =
                *baseline.get_or_insert((tiles, cells, cycles));
            let delta = |now: u64, base: u64| {
                if base == 0 {
                    "n/a".to_string()
                } else {
                    format!("{:+.1}%", 100.0 * (now as f64 - base as f64) / base as f64)
                }
            };
            let _ = writeln!(
                out,
                "{:<6} {:>8} {:>7} {:>7} {:>10} {:>7} {:>12} {:>7} {:>8.2}x",
                width.to_string(),
                pruning.label(),
                tiles,
                delta(tiles, base_tiles),
                cells,
                delta(cells, base_cells),
                cycles,
                delta(cycles, base_cycles),
                entry.result.speedup(SparsityConfig::HybridSparsity),
            );
        }
    }
    let _ = writeln!(
        out,
        "note: tiles = DB-PIM Compute instructions, cells = loaded weight\n\
         bit-cells. Deltas are against the unpruned row of the same width;\n\
         the dense baseline maps the nominal shape regardless of pruning, so\n\
         speedups compound value and bit sparsity."
    );
    Ok(out)
}

/// Table 4: DB-PIM area breakdown on the context's geometry.
#[must_use]
pub fn table4(context: &ExperimentContext) -> String {
    let area = AreaModel::calibrated_28nm();
    let arch = context.arch();
    let paper = [
        ("PIM Baseline", 1.00809, 87.32),
        ("Meta-RFs", 0.07829, 6.78),
        ("Extra Post-processing Units", 0.06259, 5.42),
        ("DFFs and Routing Resources", 0.00550, 0.48),
        ("Input Sparsity Support", 0.00007, 0.00),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 - DB-PIM area breakdown");
    let _ = writeln!(
        out,
        "{:<32} {:>12} {:>9} {:>12} {:>9}",
        "module", "area (mm2)", "share", "paper mm2", "paper"
    );
    for (component, (paper_name, paper_mm2, paper_pct)) in area.breakdown(&arch).iter().zip(paper) {
        debug_assert_eq!(component.name, paper_name);
        let _ = writeln!(
            out,
            "{:<32} {:>12.5} {:>8.2}% {:>12.5} {:>8.2}%",
            component.name,
            component.mm2,
            100.0 * component.share,
            paper_mm2,
            paper_pct
        );
    }
    let _ = writeln!(
        out,
        "{:<32} {:>12.5} {:>8} {:>12.5}",
        "Total",
        area.total_mm2(&arch),
        "100.00%",
        1.15453
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentOptions;

    fn small_context() -> ExperimentContext {
        let options = ExperimentOptions {
            width_mult: 0.25,
            classes: 10,
            calibration_images: 1,
            evaluation_images: 2,
            seed: 5,
            ..ExperimentOptions::default()
        };
        ExperimentContext::new(options).expect("valid options")
    }

    #[test]
    fn static_tables_render() {
        let t1 = table1();
        assert!(t1.contains("This Work"));
        assert!(t1.contains("Unstructured"));
        let t4 = table4(&small_context());
        assert!(t4.contains("Meta-RFs"));
        assert!(t4.contains("Total"));
    }

    #[test]
    fn fig2a_report_renders_for_small_models() {
        let report = fig2a(&small_context()).unwrap();
        assert!(report.contains("AlexNet"));
        assert!(report.contains("EfficientNetB0"));
        assert!(report.contains('%'));
    }

    #[test]
    fn joint_sparsity_report_shows_shrinking_macro_work() {
        let report = joint_sparsity(&small_context()).unwrap();
        assert!(report.contains("int4"));
        assert!(report.contains("int8"));
        assert!(report.contains("u0.50"));
        assert!(report.contains("s0.50"));
        // Pruned rows carry negative deltas against their width's baseline.
        assert!(report.contains('-'), "no reduction recorded:\n{report}");
    }

    #[test]
    fn fig7_report_renders_for_one_small_run() {
        // Restrict to the smallest model by sweeping it directly.
        let context = small_context();
        let report =
            context.runner().run(&db_pim::SweepSpec::new(vec![ModelKind::MobileNetV2])).unwrap();
        let result = report.result(ModelKind::MobileNetV2).unwrap();
        assert!(result.speedup(SparsityConfig::HybridSparsity) > 1.0);
    }
}
