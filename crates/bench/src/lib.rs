//! Shared infrastructure for the experiment report generators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section. This library provides the pieces they share: command
//! line options, the model list, lightweight weight-only sparsity analysis
//! (Fig. 2(a)), activation bit-column analysis (Fig. 2(b)), full pipeline
//! runs (Table 2, Fig. 7, Table 3) and the published reference numbers of the
//! prior works quoted in Tables 1 and 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use db_pim::prelude::*;
use db_pim::PipelineError;
use dbpim_fta::stats::{LayerFtaStats, ModelFtaStats};
use dbpim_fta::LayerApprox;
use dbpim_nn::Layer;
use dbpim_tensor::quant::QuantizedTensor;
use dbpim_tensor::stats::zero_bit_column_ratio;

pub mod experiments;
pub mod reference;

/// Command-line options shared by every experiment binary.
///
/// ```text
/// --width <f32>    channel width multiplier (default 1.0 = the paper's models)
/// --seed <u64>     synthetic-weight seed (default 42)
/// --images <usize> evaluation images for fidelity experiments (default 16)
/// --cal <usize>    calibration images (default 2)
/// --classes <usize> output classes (default 100)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOptions {
    /// Channel width multiplier applied to every zoo model.
    pub width_mult: f32,
    /// Seed for synthetic weights and data.
    pub seed: u64,
    /// Number of labelled evaluation images (Table 2).
    pub evaluation_images: usize,
    /// Number of calibration images (quantization + input sparsity).
    pub calibration_images: usize,
    /// Number of output classes.
    pub classes: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self { width_mult: 1.0, seed: 42, evaluation_images: 16, calibration_images: 2, classes: 100 }
    }
}

impl ExperimentOptions {
    /// Parses options from the process arguments, ignoring unknown flags.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_slice(&args)
    }

    /// Parses options from an explicit argument list (exposed for tests).
    #[must_use]
    pub fn from_slice(args: &[String]) -> Self {
        let mut options = Self::default();
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| args.get(i + 1).cloned().unwrap_or_default();
            match args[i].as_str() {
                "--width" => options.width_mult = take(i).parse().unwrap_or(options.width_mult),
                "--seed" => options.seed = take(i).parse().unwrap_or(options.seed),
                "--images" => {
                    options.evaluation_images = take(i).parse().unwrap_or(options.evaluation_images);
                }
                "--cal" => {
                    options.calibration_images = take(i).parse().unwrap_or(options.calibration_images);
                }
                "--classes" => options.classes = take(i).parse().unwrap_or(options.classes),
                _ => {}
            }
            i += 1;
        }
        options
    }

    /// The pipeline configuration equivalent to these options.
    #[must_use]
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::paper();
        config.width_mult = self.width_mult;
        config.seed = self.seed;
        config.calibration_images = self.calibration_images.max(1);
        config.evaluation_images = self.evaluation_images;
        config.classes = self.classes;
        config
    }
}

/// The five paper models in figure order.
#[must_use]
pub fn paper_models() -> [ModelKind; 5] {
    ModelKind::all()
}

/// Builds one zoo model under the given options.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn build_model(kind: ModelKind, options: &ExperimentOptions) -> Result<Model, PipelineError> {
    Ok(kind.build_with_width(options.classes, options.seed, options.width_mult)?)
}

/// Weight-only FTA sparsity statistics of a model (Fig. 2(a), the `U_act`
/// rows of Table 3).
///
/// This path quantizes each PIM layer's weights per output channel and runs
/// Algorithm 1 directly, without any calibration forward passes — weights
/// are all Fig. 2(a) needs.
///
/// # Errors
///
/// Propagates FTA approximation errors.
pub fn weight_sparsity_stats(model: &Model) -> Result<ModelFtaStats, PipelineError> {
    let tables = QueryTables::new();
    let mut layers = Vec::new();
    for node in model.nodes() {
        let weight = match &node.layer {
            Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => weight,
            _ => continue,
        };
        let quantized = QuantizedTensor::quantize_per_channel(weight, 0);
        let approx = LayerApprox::from_weights(node.id, node.name.clone(), quantized.values(), &tables)?;
        layers.push(LayerFtaStats::from_layer(&approx));
    }
    Ok(ModelFtaStats { model_name: model.name().to_string(), layers })
}

/// Block-wise zero bit-column ratios of the input features of every PIM
/// layer, for the three group sizes Fig. 2(b) reports (1, 8 and 16).
///
/// # Errors
///
/// Propagates quantization or inference errors.
pub fn input_column_sparsity(
    model: &Model,
    options: &ExperimentOptions,
) -> Result<[f64; 3], PipelineError> {
    let mut gen = TensorGenerator::new(options.seed ^ 0xf19);
    let (images, _) = gen.labelled_batch(
        options.calibration_images.max(1),
        model.input_shape()[0],
        model.input_shape()[1],
        model.input_shape()[2],
        options.classes,
    )?;
    let quantized = QuantizedModel::quantize(model, &images)?;
    let group_sizes = [1usize, 8, 16];
    let mut sums = [0.0f64; 3];
    let mut samples = 0usize;
    for image in &images {
        let outputs = quantized.forward_all(image)?;
        let q_input = quantized.input_qp().quantize_tensor(image);
        for &node_id in &quantized.pim_node_ids() {
            let node = &quantized.nodes()[node_id];
            let (tensor, zero_point) = if node.inputs.is_empty() {
                (&q_input, quantized.input_qp().zero_point())
            } else {
                let producer = node.inputs[0];
                (&outputs[producer], quantized.nodes()[producer].output_qp.zero_point())
            };
            let operand: Vec<i8> =
                tensor.data().iter().map(|&v| (i32::from(v) - zero_point) as u8 as i8).collect();
            for (slot, &group) in group_sizes.iter().enumerate() {
                sums[slot] += zero_bit_column_ratio(&operand, group);
            }
            samples += 1;
        }
    }
    let mut out = [0.0f64; 3];
    if samples > 0 {
        for (o, s) in out.iter_mut().zip(sums.iter()) {
            *o = s / samples as f64;
        }
    }
    Ok(out)
}

/// Runs the full co-design pipeline for one model.
///
/// # Errors
///
/// Propagates any pipeline stage failure.
pub fn run_pipeline(
    kind: ModelKind,
    options: &ExperimentOptions,
    with_fidelity: bool,
) -> Result<CodesignResult, PipelineError> {
    let mut config = options.pipeline_config();
    if !with_fidelity {
        config = config.without_fidelity();
    }
    Pipeline::new(config)?.run_kind(kind)
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", 100.0 * fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_known_flags_and_ignore_the_rest() {
        let args: Vec<String> = ["prog", "--width", "0.5", "--seed", "7", "--images", "4", "--cal", "3", "--classes", "10", "--bogus", "x"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let options = ExperimentOptions::from_slice(&args);
        assert!((options.width_mult - 0.5).abs() < 1e-6);
        assert_eq!(options.seed, 7);
        assert_eq!(options.evaluation_images, 4);
        assert_eq!(options.calibration_images, 3);
        assert_eq!(options.classes, 10);
        let config = options.pipeline_config();
        assert_eq!(config.classes, 10);
    }

    #[test]
    fn malformed_values_fall_back_to_defaults() {
        let args: Vec<String> = ["--width", "abc", "--seed"].iter().map(ToString::to_string).collect();
        let options = ExperimentOptions::from_slice(&args);
        assert_eq!(options, ExperimentOptions::default());
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn weight_stats_follow_fig2a_ordering_on_a_small_model() {
        let options = ExperimentOptions { width_mult: 0.25, classes: 10, ..ExperimentOptions::default() };
        let model = build_model(ModelKind::ResNet18, &options).unwrap();
        let stats = weight_sparsity_stats(&model).unwrap();
        assert!(stats.binary_zero_ratio() > 0.55);
        assert!(stats.csd_zero_ratio() >= stats.binary_zero_ratio());
        assert!(stats.fta_zero_ratio() >= stats.csd_zero_ratio());
        assert!(stats.utilization() > 0.8);
    }

    #[test]
    fn input_column_sparsity_is_monotone_in_group_size() {
        let options = ExperimentOptions {
            width_mult: 0.25,
            classes: 10,
            calibration_images: 1,
            ..ExperimentOptions::default()
        };
        let model = dbpim_nn::zoo::tiny_cnn(10, 3).unwrap();
        let [g1, g8, g16] = input_column_sparsity(&model, &options).unwrap();
        assert!(g1 >= g8 && g8 >= g16, "{g1} {g8} {g16}");
        assert!(g8 > 0.05, "group-of-8 ratio {g8}");
    }
}
