//! Shared infrastructure for the experiment report generators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section. This library provides the pieces they share: strict
//! command-line option parsing, the [`ExperimentContext`] (a
//! [`BatchRunner`]-backed simulation session every generator draws cached
//! artifacts from), lightweight weight-only sparsity analysis (Fig. 2(a)),
//! activation bit-column analysis (Fig. 2(b)), full sweeps (Table 2, Fig. 7,
//! Table 3) and the published reference numbers of the prior works quoted in
//! Tables 1 and 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

use db_pim::prelude::*;
use db_pim::PipelineError;
use dbpim_fta::stats::{LayerFtaStats, ModelFtaStats};
use dbpim_fta::LayerApprox;
use dbpim_nn::Layer;
use dbpim_tensor::quant::QuantizedTensor;
use dbpim_tensor::stats::zero_bit_column_ratio;

pub mod dse;
pub mod experiments;
pub mod reference;

/// A malformed experiment command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionsError {
    /// The flag at fault (e.g. `--width`).
    pub flag: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value for `{}`: {}", self.flag, self.message)
    }
}

impl std::error::Error for OptionsError {}

/// Command-line options shared by every experiment binary.
///
/// ```text
/// --width <f32>    channel width multiplier (default 1.0 = the paper's models)
/// --seed <u64>     synthetic-weight seed (default 42)
/// --images <usize> evaluation images for fidelity experiments (default 16)
/// --cal <usize>    calibration images (default 2)
/// --classes <usize> output classes (default 100)
/// --operand-width <4|8|12|16>  weight operand width (default 8 = the paper)
/// ```
///
/// Unknown flags are ignored (so wrappers can pass extra arguments through),
/// but a known flag with a missing or malformed value is an error — silently
/// falling back to defaults would mislabel every number in the generated
/// report. `--operand-width` in particular rejects anything that is not one
/// of the supported widths (e.g. `--operand-width 10` or `wide`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOptions {
    /// Channel width multiplier applied to every zoo model.
    pub width_mult: f32,
    /// Seed for synthetic weights and data.
    pub seed: u64,
    /// Number of labelled evaluation images (Table 2).
    pub evaluation_images: usize,
    /// Number of calibration images (quantization + input sparsity).
    pub calibration_images: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Weight operand width the pipeline runs at (INT8 = the paper).
    pub operand_width: OperandWidth,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            width_mult: 1.0,
            seed: 42,
            evaluation_images: 16,
            calibration_images: 2,
            classes: 100,
            operand_width: OperandWidth::Int8,
        }
    }
}

/// Parses one flag value, attributing failures to the flag.
fn parse_value<T: FromStr>(flag: &str, raw: &str) -> Result<T, OptionsError>
where
    T::Err: fmt::Display,
{
    raw.parse().map_err(|e: T::Err| OptionsError {
        flag: flag.to_string(),
        message: format!("`{raw}` — {e}"),
    })
}

impl ExperimentOptions {
    /// The flags this parser understands.
    pub const FLAGS: [&'static str; 6] =
        ["--width", "--seed", "--images", "--cal", "--classes", "--operand-width"];

    /// Parses options from the process arguments.
    ///
    /// Prints the error and usage to stderr and exits with status 2 on a
    /// malformed command line.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match Self::from_slice(&args) {
            Ok(options) => options,
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "usage: [--width <f32>] [--seed <u64>] [--images <n>] [--cal <n>] \
                     [--classes <n>] [--operand-width <4|8|12|16>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses options from an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns [`OptionsError`] when a known flag has a missing or
    /// malformed value. Unknown arguments are ignored.
    pub fn from_slice(args: &[String]) -> Result<Self, OptionsError> {
        let mut options = Self::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !Self::FLAGS.contains(&flag) {
                i += 1;
                continue;
            }
            let raw = args.get(i + 1).ok_or_else(|| OptionsError {
                flag: flag.to_string(),
                message: "missing value".to_string(),
            })?;
            match flag {
                "--width" => options.width_mult = parse_value(flag, raw)?,
                "--seed" => options.seed = parse_value(flag, raw)?,
                "--images" => options.evaluation_images = parse_value(flag, raw)?,
                "--cal" => options.calibration_images = parse_value(flag, raw)?,
                "--classes" => options.classes = parse_value(flag, raw)?,
                "--operand-width" => options.operand_width = parse_value(flag, raw)?,
                _ => unreachable!("flag list and match arms agree"),
            }
            i += 2;
        }
        Ok(options)
    }

    /// The pipeline configuration equivalent to these options.
    #[must_use]
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::paper();
        config.width_mult = self.width_mult;
        config.seed = self.seed;
        config.calibration_images = self.calibration_images.max(1);
        config.evaluation_images = self.evaluation_images;
        config.classes = self.classes;
        config.operand_width = self.operand_width;
        config
    }
}

/// The shared state of one experiment invocation: parsed options plus a
/// [`BatchRunner`] whose [`SimSession`] caches per-model artifacts.
///
/// Every table/figure generator takes a context, so a binary that renders
/// several reports (`all_experiments`) quantizes, approximates and compiles
/// each model exactly once, however many tables consume it. The zoo sweep
/// itself is memoized per fidelity flag, so tables sharing the same sweep
/// (Fig. 7, Table 3) do not re-simulate it.
#[derive(Debug)]
pub struct ExperimentContext {
    options: ExperimentOptions,
    runner: BatchRunner,
    /// Memoized zoo sweeps: `[without fidelity, with fidelity]`.
    zoo_sweeps: std::sync::Mutex<[Option<SweepReport>; 2]>,
}

impl ExperimentContext {
    /// Creates the context for the given options.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable option values.
    pub fn new(options: ExperimentOptions) -> Result<Self, PipelineError> {
        let runner = BatchRunner::new(options.pipeline_config())?;
        Ok(Self { options, runner, zoo_sweeps: std::sync::Mutex::new([None, None]) })
    }

    /// The parsed command-line options.
    #[must_use]
    pub fn options(&self) -> &ExperimentOptions {
        &self.options
    }

    /// The batch runner executing sweeps for this context.
    #[must_use]
    pub fn runner(&self) -> &BatchRunner {
        &self.runner
    }

    /// The underlying simulation session (shared artifact cache).
    #[must_use]
    pub fn session(&self) -> &SimSession {
        self.runner.session()
    }

    /// The architecture geometry the experiments simulate.
    #[must_use]
    pub fn arch(&self) -> ArchConfig {
        self.session().config().arch
    }

    /// Sweeps all five paper models over the four Fig. 7 sparsity
    /// configurations, reusing cached artifacts. The report itself is
    /// memoized, so repeated calls (Fig. 7 then Table 3) return the cached
    /// sweep without re-simulating.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn zoo_sweep(&self, with_fidelity: bool) -> Result<SweepReport, PipelineError> {
        let slot = usize::from(with_fidelity);
        if let Some(report) = &self.zoo_sweeps.lock().expect("sweep cache lock")[slot] {
            return Ok(report.clone());
        }
        let report = self.runner.run_with_fidelity(&SweepSpec::zoo(), with_fidelity)?;
        self.zoo_sweeps.lock().expect("sweep cache lock")[slot] = Some(report.clone());
        Ok(report)
    }
}

/// Shared `main` body of the experiment binaries: parse options, build the
/// context, render one report, print it (exit status 1 on failure).
///
/// Every experiment binary also understands `--trace-out <path>` (write a
/// Chrome trace of the run) and `--log-level <level>` — both handled here,
/// so individual generators stay oblivious to observability plumbing.
pub fn run_report_binary<F>(name: &str, generate: F)
where
    F: FnOnce(&ExperimentContext) -> Result<String, PipelineError>,
{
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = dbpim_trace::log_level_from_args(&args) {
        eprintln!("{name}: {e}");
        std::process::exit(2);
    }
    let trace = match dbpim_trace::TraceSink::from_args(&args) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(2);
        }
    };
    let options = ExperimentOptions::from_args();
    let result = ExperimentContext::new(options).and_then(|context| generate(&context));
    if let Some(sink) = trace {
        if let Err(e) = sink.finish() {
            eprintln!("{name}: writing the trace failed: {e}");
        }
    }
    match result {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{name} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The five paper models in figure order.
#[must_use]
pub fn paper_models() -> [ModelKind; 5] {
    ModelKind::all()
}

/// Builds one zoo model under the given options.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn build_model(kind: ModelKind, options: &ExperimentOptions) -> Result<Model, PipelineError> {
    Ok(kind.build_with_width(options.classes, options.seed, options.width_mult)?)
}

/// Weight-only FTA sparsity statistics of a model (Fig. 2(a), the `U_act`
/// rows of Table 3).
///
/// This path quantizes each PIM layer's weights per output channel and runs
/// Algorithm 1 directly, without any calibration forward passes — weights
/// are all Fig. 2(a) needs.
///
/// # Errors
///
/// Propagates FTA approximation errors.
pub fn weight_sparsity_stats(model: &Model) -> Result<ModelFtaStats, PipelineError> {
    let tables = QueryTables::new();
    let mut layers = Vec::new();
    for node in model.nodes() {
        let weight = match &node.layer {
            Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } => weight,
            _ => continue,
        };
        let quantized = QuantizedTensor::quantize_per_channel(weight, 0);
        let approx =
            LayerApprox::from_weights(node.id, node.name.clone(), quantized.values(), &tables)?;
        layers.push(LayerFtaStats::from_layer(&approx));
    }
    Ok(ModelFtaStats { model_name: model.name().to_string(), layers })
}

/// Block-wise zero bit-column ratios of the input features of every PIM
/// layer, for the three group sizes Fig. 2(b) reports (1, 8 and 16).
///
/// # Errors
///
/// Propagates quantization or inference errors.
pub fn input_column_sparsity(
    model: &Model,
    options: &ExperimentOptions,
) -> Result<[f64; 3], PipelineError> {
    let mut gen = TensorGenerator::new(options.seed ^ 0xf19);
    let (images, _) = gen.labelled_batch(
        options.calibration_images.max(1),
        model.input_shape()[0],
        model.input_shape()[1],
        model.input_shape()[2],
        options.classes,
    )?;
    let quantized = QuantizedModel::quantize(model, &images)?;
    let group_sizes = [1usize, 8, 16];
    let mut sums = [0.0f64; 3];
    let mut samples = 0usize;
    for image in &images {
        let outputs = quantized.forward_all(image)?;
        let q_input = quantized.input_qp().quantize_tensor(image);
        for &node_id in &quantized.pim_node_ids() {
            let node = &quantized.nodes()[node_id];
            let (tensor, zero_point) = if node.inputs.is_empty() {
                (&q_input, quantized.input_qp().zero_point())
            } else {
                let producer = node.inputs[0];
                (&outputs[producer], quantized.nodes()[producer].output_qp.zero_point())
            };
            let operand: Vec<i8> =
                tensor.data().iter().map(|&v| (i32::from(v) - zero_point) as u8 as i8).collect();
            for (slot, &group) in group_sizes.iter().enumerate() {
                sums[slot] += zero_bit_column_ratio(&operand, group);
            }
            samples += 1;
        }
    }
    let mut out = [0.0f64; 3];
    if samples > 0 {
        for (o, s) in out.iter_mut().zip(sums.iter()) {
            *o = s / samples as f64;
        }
    }
    Ok(out)
}

/// Runs the full co-design pipeline for one model through a one-shot
/// session.
///
/// Callers rendering several reports should share an [`ExperimentContext`]
/// instead, so artifacts are cached across reports.
///
/// # Errors
///
/// Propagates any pipeline stage failure.
pub fn run_pipeline(
    kind: ModelKind,
    options: &ExperimentOptions,
    with_fidelity: bool,
) -> Result<CodesignResult, PipelineError> {
    SimSession::new(options.pipeline_config())?.codesign(kind, with_fidelity)
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", 100.0 * fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_known_flags_and_ignore_the_rest() {
        let args: Vec<String> = [
            "prog",
            "--width",
            "0.5",
            "--seed",
            "7",
            "--images",
            "4",
            "--cal",
            "3",
            "--classes",
            "10",
            "--bogus",
            "x",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let options = ExperimentOptions::from_slice(&args).unwrap();
        assert!((options.width_mult - 0.5).abs() < 1e-6);
        assert_eq!(options.seed, 7);
        assert_eq!(options.evaluation_images, 4);
        assert_eq!(options.calibration_images, 3);
        assert_eq!(options.classes, 10);
        let config = options.pipeline_config();
        assert_eq!(config.classes, 10);
    }

    #[test]
    fn malformed_values_are_rejected_not_swallowed() {
        let args: Vec<String> = ["--width", "abc"].iter().map(ToString::to_string).collect();
        let err = ExperimentOptions::from_slice(&args).unwrap_err();
        assert_eq!(err.flag, "--width");
        assert!(err.message.contains("abc"), "{err}");

        let args: Vec<String> = ["--seed"].iter().map(ToString::to_string).collect();
        let err = ExperimentOptions::from_slice(&args).unwrap_err();
        assert_eq!(err.flag, "--seed");
        assert!(err.to_string().contains("missing"), "{err}");

        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn operand_width_flag_accepts_supported_widths() {
        for (raw, expected) in [
            ("4", OperandWidth::Int4),
            ("8", OperandWidth::Int8),
            ("12", OperandWidth::Int12),
            ("16", OperandWidth::Int16),
            ("int12", OperandWidth::Int12),
            ("INT16", OperandWidth::Int16),
        ] {
            let args: Vec<String> =
                ["--operand-width", raw].iter().map(ToString::to_string).collect();
            let options = ExperimentOptions::from_slice(&args).unwrap();
            assert_eq!(options.operand_width, expected, "raw `{raw}`");
            assert_eq!(options.pipeline_config().operand_width, expected);
        }
        // The default is the paper's INT8.
        assert_eq!(ExperimentOptions::default().operand_width, OperandWidth::Int8);
    }

    #[test]
    fn operand_width_flag_rejects_malformed_and_unsupported_values() {
        // Unsupported bit counts.
        for raw in ["0", "2", "10", "32", "-8"] {
            let args: Vec<String> =
                ["--operand-width", raw].iter().map(ToString::to_string).collect();
            let err = ExperimentOptions::from_slice(&args).unwrap_err();
            assert_eq!(err.flag, "--operand-width");
            assert!(err.message.contains(raw), "{err}");
        }
        // Non-numeric garbage.
        let args: Vec<String> =
            ["--operand-width", "wide"].iter().map(ToString::to_string).collect();
        let err = ExperimentOptions::from_slice(&args).unwrap_err();
        assert_eq!(err.flag, "--operand-width");
        assert!(err.to_string().contains("wide"), "{err}");
        // Missing value.
        let args: Vec<String> = ["--operand-width"].iter().map(ToString::to_string).collect();
        let err = ExperimentOptions::from_slice(&args).unwrap_err();
        assert_eq!(err.flag, "--operand-width");
        assert!(err.to_string().contains("missing"), "{err}");
        // The channel multiplier flag is unaffected: `--width` still parses
        // floats and never consumes operand widths.
        let args: Vec<String> =
            ["--width", "0.5", "--operand-width", "4"].iter().map(ToString::to_string).collect();
        let options = ExperimentOptions::from_slice(&args).unwrap();
        assert!((options.width_mult - 0.5).abs() < 1e-6);
        assert_eq!(options.operand_width, OperandWidth::Int4);
    }

    #[test]
    fn flag_values_are_consumed_not_reparsed_as_flags() {
        // A value that happens to look like a flag must not be re-read as
        // one (the old parser advanced one token at a time).
        let args: Vec<String> =
            ["--seed", "3", "--cal", "2"].iter().map(ToString::to_string).collect();
        let options = ExperimentOptions::from_slice(&args).unwrap();
        assert_eq!(options.seed, 3);
        assert_eq!(options.calibration_images, 2);
    }

    #[test]
    fn weight_stats_follow_fig2a_ordering_on_a_small_model() {
        let options =
            ExperimentOptions { width_mult: 0.25, classes: 10, ..ExperimentOptions::default() };
        let model = build_model(ModelKind::ResNet18, &options).unwrap();
        let stats = weight_sparsity_stats(&model).unwrap();
        assert!(stats.binary_zero_ratio() > 0.55);
        assert!(stats.csd_zero_ratio() >= stats.binary_zero_ratio());
        assert!(stats.fta_zero_ratio() >= stats.csd_zero_ratio());
        assert!(stats.utilization() > 0.8);
    }

    #[test]
    fn input_column_sparsity_is_monotone_in_group_size() {
        let options = ExperimentOptions {
            width_mult: 0.25,
            classes: 10,
            calibration_images: 1,
            ..ExperimentOptions::default()
        };
        let model = dbpim_nn::zoo::tiny_cnn(10, 3).unwrap();
        let [g1, g8, g16] = input_column_sparsity(&model, &options).unwrap();
        assert!(g1 >= g8 && g8 >= g16, "{g1} {g8} {g16}");
        assert!(g8 > 0.05, "group-of-8 ratio {g8}");
    }

    #[test]
    fn context_shares_one_session_across_reports() {
        let options = ExperimentOptions {
            width_mult: 0.25,
            classes: 10,
            calibration_images: 1,
            evaluation_images: 2,
            seed: 5,
            ..ExperimentOptions::default()
        };
        let context = ExperimentContext::new(options).unwrap();
        let a = context.session().artifacts(ModelKind::AlexNet).unwrap();
        let b = context.session().artifacts(ModelKind::AlexNet).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(context.arch(), ArchConfig::paper());
    }
}
