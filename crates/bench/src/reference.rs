//! Published reference data quoted by the paper's comparison tables.
//!
//! Tables 1 and 3 compare DB-PIM against five prior SRAM-PIM designs. Those
//! columns are citations of silicon measurements, not experiments this
//! reproduction can rerun; they are therefore recorded here verbatim so the
//! table generators can print the full tables with only the "This Work"
//! column produced by our simulator.

use serde::Serialize;

/// Qualitative sparsity-support description of one design (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SparsitySupport {
    /// Short citation label (e.g. `"Yue et al. [12]"`).
    pub label: &'static str,
    /// `"Value"` or `"Bit"`.
    pub sparsity_type: &'static str,
    /// Which operand the design prunes: `"W"`, `"I"` or `"W+I"`.
    pub operand: &'static str,
    /// `"Digital"` or `"Analog"` compute.
    pub circuit: &'static str,
    /// `"Unstructured"` or `"Structured"` sparsity.
    pub structure: &'static str,
    /// Which ineffectual MACs the design removes.
    pub removed: &'static str,
}

/// The Table 1 comparison rows, ours last.
#[must_use]
pub fn table1_rows() -> Vec<SparsitySupport> {
    vec![
        SparsitySupport {
            label: "Yue et al. [12]",
            sparsity_type: "Value",
            operand: "W",
            circuit: "Analog",
            structure: "Structured",
            removed: "Zero W + V",
        },
        SparsitySupport {
            label: "SDP [11]",
            sparsity_type: "Value",
            operand: "W",
            circuit: "Digital",
            structure: "Structured",
            removed: "Zero W + V",
        },
        SparsitySupport {
            label: "Liu et al. [13]",
            sparsity_type: "Value",
            operand: "W",
            circuit: "Digital",
            structure: "Unstructured",
            removed: "Zero W + V",
        },
        SparsitySupport {
            label: "Tu et al. [14]",
            sparsity_type: "Bit",
            operand: "I",
            circuit: "Digital",
            structure: "Unstructured",
            removed: "Zero I + B",
        },
        SparsitySupport {
            label: "TT@CIM [15]",
            sparsity_type: "Bit",
            operand: "W",
            circuit: "Analog",
            structure: "Unstructured",
            removed: "Zero W + B",
        },
        SparsitySupport {
            label: "This Work (DB-PIM)",
            sparsity_type: "Bit",
            operand: "W+I",
            circuit: "Digital",
            structure: "Unstructured",
            removed: "Zero W + B and Zero I + B",
        },
    ]
}

/// Published implementation numbers of one prior work (Table 3 columns).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PriorWork {
    /// Short citation label.
    pub label: &'static str,
    /// Process technology in nm.
    pub technology_nm: u32,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Supply-voltage range in volts.
    pub supply_v: &'static str,
    /// Clock-frequency range in MHz.
    pub frequency_mhz: &'static str,
    /// Power range in mW.
    pub power_mw: &'static str,
    /// On-chip SRAM in KB.
    pub sram_kb: u32,
    /// PIM array capacity in KB.
    pub pim_kb: u32,
    /// Number of PIM macros.
    pub macros: u32,
    /// Evaluation dataset.
    pub dataset: &'static str,
    /// Reported actual utilization (as a display string).
    pub utilization: &'static str,
    /// Peak throughput in TOPS (8b/8b).
    pub peak_tops: f64,
    /// Peak throughput per macro in GOPS (8b/8b).
    pub peak_gops_per_macro: f64,
    /// Energy-efficiency range in TOPS/W (8b/8b).
    pub energy_efficiency: &'static str,
    /// Peak energy efficiency per unit area in TOPS/W/mm².
    pub peak_ee_per_mm2: f64,
}

/// The five prior-work columns of Table 3.
#[must_use]
pub fn table3_prior_works() -> Vec<PriorWork> {
    vec![
        PriorWork {
            label: "Yue et al. [12]",
            technology_nm: 65,
            die_area_mm2: 12.0,
            supply_v: "0.62-1.0",
            frequency_mhz: "25-100",
            power_mw: "18.60-84.10",
            sram_kb: 294,
            pim_kb: 8,
            macros: 4,
            dataset: "CIFAR10/ImageNet",
            utilization: "32.04%",
            peak_tops: 0.10,
            peak_gops_per_macro: 24.69,
            energy_efficiency: "0.09-2.37",
            peak_ee_per_mm2: 2.97,
        },
        PriorWork {
            label: "SDP [11]",
            technology_nm: 28,
            die_area_mm2: 6.07,
            supply_v: "1.0",
            frequency_mhz: "500",
            power_mw: "1050",
            sram_kb: 384,
            pim_kb: 128,
            macros: 512,
            dataset: "ImageNet",
            utilization: "48.64%",
            peak_tops: 26.21,
            peak_gops_per_macro: 51.19,
            energy_efficiency: "25-107.60",
            peak_ee_per_mm2: 17.73,
        },
        PriorWork {
            label: "Liu et al. [13]",
            technology_nm: 28,
            die_area_mm2: 3.93,
            supply_v: "0.64-1.03",
            frequency_mhz: "20-320",
            power_mw: "8.27-250.65",
            sram_kb: 96,
            pim_kb: 144,
            macros: 96,
            dataset: "Enwik8",
            utilization: "n/a",
            peak_tops: 3.33,
            peak_gops_per_macro: 34.68,
            energy_efficiency: "1.96-25.22",
            peak_ee_per_mm2: 6.42,
        },
        PriorWork {
            label: "Tu et al. [14]",
            technology_nm: 28,
            die_area_mm2: 14.36,
            supply_v: "0.60-1.0",
            frequency_mhz: "85-275",
            power_mw: "29.83-153.62",
            sram_kb: 192,
            pim_kb: 128,
            macros: 128,
            dataset: "VQA",
            utilization: "n/a",
            peak_tops: 3.55,
            peak_gops_per_macro: 27.73,
            energy_efficiency: "48.40-101",
            peak_ee_per_mm2: 7.03,
        },
        PriorWork {
            label: "TT@CIM [15]",
            technology_nm: 28,
            die_area_mm2: 8.97,
            supply_v: "0.60-0.90",
            frequency_mhz: "125-216",
            power_mw: "11.40-45.10",
            sram_kb: 114,
            pim_kb: 128,
            macros: 16,
            dataset: "CIFAR10",
            utilization: "<50%",
            peak_tops: 0.40,
            peak_gops_per_macro: 25.1,
            energy_efficiency: "5.99-13.75",
            peak_ee_per_mm2: 1.53,
        },
    ]
}

/// Headline numbers the paper reports for DB-PIM itself, used by the
/// experiment reports to print "paper vs measured" side by side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaperHeadline {
    /// Maximum hybrid speedup (AlexNet).
    pub max_hybrid_speedup: f64,
    /// Maximum weight-only speedup (AlexNet).
    pub max_weight_speedup: f64,
    /// Maximum energy saving (AlexNet, hybrid).
    pub max_energy_saving: f64,
    /// Minimum energy saving (EfficientNet-B0).
    pub min_energy_saving: f64,
    /// Reported utilization range across the five models.
    pub utilization_range: (f64, f64),
    /// Reported die area in mm².
    pub die_area_mm2: f64,
    /// Reported peak throughput in TOPS.
    pub peak_tops: f64,
    /// Reported peak throughput per macro in GOPS.
    pub peak_gops_per_macro: f64,
    /// Reported peak system energy efficiency in TOPS/W.
    pub peak_tops_per_w: f64,
}

/// The paper's published headline numbers.
#[must_use]
pub fn paper_headline() -> PaperHeadline {
    PaperHeadline {
        max_hybrid_speedup: 7.69,
        max_weight_speedup: 5.20,
        max_energy_saving: 0.8343,
        min_energy_saving: 0.6349,
        utilization_range: (0.9195, 0.9842),
        die_area_mm2: 1.15453,
        peak_tops: 0.31,
        peak_gops_per_macro: 77.5,
        peak_tops_per_w: 45.20,
    }
}

/// Per-model Fig. 7 values the paper reports (speedup with hybrid sparsity,
/// speedup with weight sparsity only, energy saving with hybrid sparsity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaperFig7Row {
    /// Model name as printed in the figure.
    pub model: &'static str,
    /// Weight-sparsity-only speedup over the dense baseline.
    pub weight_speedup: f64,
    /// Hybrid (weight + input) speedup over the dense baseline.
    pub hybrid_speedup: f64,
    /// Hybrid energy saving over the dense baseline.
    pub energy_saving: f64,
}

/// The Fig. 7 values the paper states explicitly (speedups for AlexNet/VGG19
/// and the compact models, energy savings for all five).
#[must_use]
pub fn paper_fig7_rows() -> Vec<PaperFig7Row> {
    vec![
        PaperFig7Row {
            model: "AlexNet",
            weight_speedup: 5.20,
            hybrid_speedup: 7.69,
            energy_saving: 0.8343,
        },
        PaperFig7Row {
            model: "VGG19",
            weight_speedup: 4.46,
            hybrid_speedup: 6.10,
            energy_saving: 0.7925,
        },
        PaperFig7Row {
            model: "ResNet18",
            weight_speedup: 4.0,
            hybrid_speedup: 5.5,
            energy_saving: 0.7696,
        },
        PaperFig7Row {
            model: "MobileNetV2",
            weight_speedup: 3.2,
            hybrid_speedup: 3.90,
            energy_saving: 0.6554,
        },
        PaperFig7Row {
            model: "EfficientNetB0",
            weight_speedup: 3.0,
            hybrid_speedup: 3.55,
            energy_saving: 0.6349,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_and_ours_is_hybrid() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        let ours = rows.last().unwrap();
        assert_eq!(ours.operand, "W+I");
        assert_eq!(ours.circuit, "Digital");
        assert_eq!(ours.structure, "Unstructured");
    }

    #[test]
    fn table3_prior_works_match_published_values() {
        let works = table3_prior_works();
        assert_eq!(works.len(), 5);
        assert!((works[1].peak_tops - 26.21).abs() < 1e-9);
        assert_eq!(works[0].technology_nm, 65);
        assert!(works.iter().all(|w| w.die_area_mm2 > 1.0));
    }

    #[test]
    fn headline_numbers_are_the_published_ones() {
        let headline = paper_headline();
        assert!((headline.max_hybrid_speedup - 7.69).abs() < 1e-9);
        assert!((headline.peak_gops_per_macro - 77.5).abs() < 1e-9);
        let rows = paper_fig7_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows[0].hybrid_speedup > rows[4].hybrid_speedup);
    }
}
