//! Error type for the compiler crate.

use std::error::Error;
use std::fmt;

use dbpim_arch::ArchError;
use dbpim_fta::FtaError;
use dbpim_nn::NnError;

/// Errors produced while extracting workloads or generating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// An underlying model-graph operation failed.
    Nn(NnError),
    /// An underlying FTA operation failed.
    Fta(FtaError),
    /// An architecture constraint was violated.
    Arch(ArchError),
    /// A workload references a node the model does not contain.
    UnknownNode {
        /// The offending node id.
        node_id: usize,
    },
    /// A layer cannot be mapped onto the PIM macros.
    Unmappable {
        /// Name of the layer.
        layer: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Nn(e) => write!(f, "model error: {e}"),
            CompileError::Fta(e) => write!(f, "fta error: {e}"),
            CompileError::Arch(e) => write!(f, "architecture error: {e}"),
            CompileError::UnknownNode { node_id } => write!(f, "unknown graph node {node_id}"),
            CompileError::Unmappable { layer, reason } => {
                write!(f, "layer {layer} cannot be mapped: {reason}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Nn(e) => Some(e),
            CompileError::Fta(e) => Some(e),
            CompileError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CompileError {
    fn from(e: NnError) -> Self {
        CompileError::Nn(e)
    }
}

impl From<FtaError> for CompileError {
    fn from(e: FtaError) -> Self {
        CompileError::Fta(e)
    }
}

impl From<ArchError> for CompileError {
    fn from(e: ArchError) -> Self {
        CompileError::Arch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CompileError = NnError::EmptyGraph.into();
        assert!(e.to_string().contains("model error"));
        let e: CompileError = FtaError::InvalidThreshold { threshold: 7 }.into();
        assert!(e.to_string().contains("fta error"));
        let e: CompileError = ArchError::UnsupportedThreshold { threshold: 3 }.into();
        assert!(e.to_string().contains("architecture error"));
        let e =
            CompileError::Unmappable { layer: "conv1".to_string(), reason: "too wide".to_string() };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
