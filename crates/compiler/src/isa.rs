//! The DB-PIM instruction set and compiled program containers.
//!
//! Instructions are deliberately coarse-grained ("tile"-level): the top
//! controller of the paper dispatches whole weight-tile loads, input
//! broadcasts and macro computations, while the cycle-accurate simulator
//! expands each instruction into its cycle and energy cost using the
//! architecture geometry.

use serde::{Deserialize, Serialize};

use crate::workload::PimWorkload;

/// How a model's PIM layers are mapped onto the macros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingMode {
    /// The DB-PIM mapping: Complementary Pattern blocks only, `φ_th` cells
    /// per weight, up to 16 filters per macro.
    DbPim,
    /// The dense digital-PIM baseline: eight bit-cells per weight, two
    /// filters per macro.
    Dense,
}

impl MappingMode {
    /// Short name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            MappingMode::DbPim => "db-pim",
            MappingMode::Dense => "dense",
        }
    }
}

/// Element-wise operation classes executed by the SIMD core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimdOpKind {
    /// Activation functions, batch-norm remnants, requantization.
    Elementwise,
    /// Pooling windows.
    Pooling,
    /// Residual additions and channel scaling.
    Arithmetic,
    /// Data movement only (flatten, identity).
    Move,
}

/// One instruction of the compiled stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Load a weight tile (and, in DB-PIM mode, its metadata) into one macro.
    LoadWeights {
        /// Target macro.
        macro_id: u8,
        /// Filters in the tile.
        filters: u16,
        /// Weights per filter in the tile.
        weights_per_filter: u32,
        /// Cells occupied per weight (`φ_th` for DB-PIM, 8 for dense).
        cells_per_weight: u8,
        /// Metadata bytes streamed into the macro's metadata RF.
        metadata_bytes: u32,
    },
    /// Stream input features from the feature buffer into the IPU.
    LoadInputs {
        /// Number of INT8 features fetched.
        features: u32,
    },
    /// Execute the loaded tile for a range of output positions.
    Compute {
        /// Target macro.
        macro_id: u8,
        /// Filters computed in parallel.
        filters: u16,
        /// Weights per filter multiplied per output position.
        weights_per_filter: u32,
        /// Output positions processed with the resident weights.
        output_positions: u32,
        /// `φ_th` of the tile (`None` for the dense mapping).
        threshold: Option<u8>,
    },
    /// Accumulate partial sums across weight tiles into the output RF.
    Accumulate {
        /// Partial-sum elements merged.
        elements: u32,
    },
    /// Write final outputs back to the feature buffer.
    WriteOutputs {
        /// Bytes written.
        bytes: u32,
    },
    /// An element-wise operation executed on the SIMD core.
    Simd {
        /// Operation class.
        kind: SimdOpKind,
        /// Elements processed.
        elements: u32,
    },
}

impl Instruction {
    /// Short mnemonic for debugging and traces.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::LoadWeights { .. } => "ldw",
            Instruction::LoadInputs { .. } => "ldi",
            Instruction::Compute { .. } => "cmp",
            Instruction::Accumulate { .. } => "acc",
            Instruction::WriteOutputs { .. } => "sto",
            Instruction::Simd { .. } => "simd",
        }
    }

    /// MACs nominally performed by a `Compute` instruction (zero otherwise).
    #[must_use]
    pub fn nominal_macs(&self) -> u64 {
        match self {
            Instruction::Compute { filters, weights_per_filter, output_positions, .. } => {
                u64::from(*filters) * u64::from(*weights_per_filter) * u64::from(*output_positions)
            }
            _ => 0,
        }
    }
}

/// The compiled instruction stream of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProgram {
    /// Graph node id of the layer.
    pub node_id: usize,
    /// Layer name.
    pub name: String,
    /// The PIM workload this program implements (`None` for SIMD-only layers).
    pub workload: Option<PimWorkload>,
    /// Instruction stream in issue order.
    pub instructions: Vec<Instruction>,
}

impl LayerProgram {
    /// Number of `Compute` instructions.
    #[must_use]
    pub fn compute_count(&self) -> usize {
        self.instructions.iter().filter(|i| matches!(i, Instruction::Compute { .. })).count()
    }

    /// Total nominal MACs issued by this layer's `Compute` instructions.
    #[must_use]
    pub fn nominal_macs(&self) -> u64 {
        self.instructions.iter().map(Instruction::nominal_macs).sum()
    }
}

/// The compiled program of one model under one mapping mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProgram {
    /// Name of the compiled model.
    pub model_name: String,
    /// Mapping mode the program was generated for.
    pub mode: MappingMode,
    /// Weight operand bit width the program was compiled for (8 for the
    /// paper's INT8 mapping). The simulator uses this as the dense
    /// cells-per-weight when a `Compute` carries no threshold.
    pub operand_bits: u32,
    /// Per-layer programs in execution order.
    pub layers: Vec<LayerProgram>,
}

impl ModelProgram {
    /// Total instruction count.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.layers.iter().map(|l| l.instructions.len()).sum()
    }

    /// Total nominal MACs issued across all layers.
    #[must_use]
    pub fn nominal_macs(&self) -> u64 {
        self.layers.iter().map(LayerProgram::nominal_macs).sum()
    }

    /// The per-layer program for a graph node, if present.
    #[must_use]
    pub fn layer(&self, node_id: usize) -> Option<&LayerProgram> {
        self.layers.iter().find(|l| l.node_id == node_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_and_macs() {
        let c = Instruction::Compute {
            macro_id: 0,
            filters: 16,
            weights_per_filter: 64,
            output_positions: 10,
            threshold: Some(1),
        };
        assert_eq!(c.mnemonic(), "cmp");
        assert_eq!(c.nominal_macs(), 16 * 64 * 10);
        let l = Instruction::LoadWeights {
            macro_id: 0,
            filters: 16,
            weights_per_filter: 64,
            cells_per_weight: 1,
            metadata_bytes: 384,
        };
        assert_eq!(l.mnemonic(), "ldw");
        assert_eq!(l.nominal_macs(), 0);
        assert_eq!(Instruction::LoadInputs { features: 4 }.mnemonic(), "ldi");
        assert_eq!(Instruction::Accumulate { elements: 4 }.mnemonic(), "acc");
        assert_eq!(Instruction::WriteOutputs { bytes: 4 }.mnemonic(), "sto");
        assert_eq!(Instruction::Simd { kind: SimdOpKind::Pooling, elements: 4 }.mnemonic(), "simd");
    }

    #[test]
    fn program_aggregation() {
        let layer = LayerProgram {
            node_id: 0,
            name: "conv".to_string(),
            workload: None,
            instructions: vec![
                Instruction::LoadInputs { features: 8 },
                Instruction::Compute {
                    macro_id: 0,
                    filters: 2,
                    weights_per_filter: 8,
                    output_positions: 4,
                    threshold: None,
                },
                Instruction::WriteOutputs { bytes: 8 },
            ],
        };
        assert_eq!(layer.compute_count(), 1);
        assert_eq!(layer.nominal_macs(), 64);
        let program = ModelProgram {
            model_name: "m".to_string(),
            mode: MappingMode::Dense,
            operand_bits: 8,
            layers: vec![layer],
        };
        assert_eq!(program.instruction_count(), 3);
        assert_eq!(program.nominal_macs(), 64);
        assert!(program.layer(0).is_some());
        assert!(program.layer(1).is_none());
        assert_eq!(MappingMode::DbPim.name(), "db-pim");
        assert_eq!(MappingMode::Dense.name(), "dense");
    }
}
