//! Dataflow mapping and instruction-stream generation for DB-PIM.
//!
//! The compiler sits between the algorithm side (quantized models + FTA
//! approximation) and the cycle-accurate simulator:
//!
//! * [`extract_workloads`] turns a model graph into hardware-facing
//!   [`Workload`]s — implicit-GEMM dimensions, per-filter thresholds and
//!   measured input bit sparsity for PIM layers, element counts for SIMD
//!   layers.
//! * [`Compiler`] maps those workloads onto the macro geometry
//!   ([`dbpim_arch::ArchConfig`]) and emits a coarse-grained
//!   [`Instruction`] stream for either the DB-PIM mapping or the dense
//!   baseline ([`MappingMode`]).
//!
//! # Example
//!
//! ```
//! use dbpim_compiler::{extract_workloads, Compiler, InputSparsityProfile, MappingMode};
//! use dbpim_arch::ArchConfig;
//! use dbpim_nn::zoo;
//!
//! let model = zoo::tiny_cnn(10, 1)?;
//! let workloads = extract_workloads(&model, None, &InputSparsityProfile::new())?;
//! let compiler = Compiler::new(ArchConfig::paper())?;
//! let dense = compiler.compile(&workloads, MappingMode::Dense)?;
//! let sparse = compiler.compile(&workloads, MappingMode::DbPim)?;
//! assert_eq!(dense.nominal_macs(), sparse.nominal_macs());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod isa;
mod mapping;
mod workload;

pub use error::CompileError;
pub use isa::{Instruction, LayerProgram, MappingMode, ModelProgram, SimdOpKind};
pub use mapping::{Compiler, DEFAULT_THRESHOLD};
pub use workload::{
    extract_workloads, extract_workloads_with_value_sparsity, InputSparsityProfile, ModelWorkloads,
    PimLayerKind, PimWorkload, SimdWorkload, Workload,
};
