//! Dataflow mapping: turning layer workloads into instruction streams.
//!
//! The mapper implements the weight-stationary dataflow of the paper:
//!
//! 1. Filters are grouped by their FTA threshold `φ_th`. A macro processes
//!    `16 / φ_th` filters in parallel (16 at `φ_th = 1`, 8 at `φ_th = 2`);
//!    all-zero filters (`φ_th = 0`) never touch the array. The dense baseline
//!    packs `width.bits()` bit-cells per weight — two filters per macro at
//!    the paper's INT8, one at INT12/INT16 on the paper geometry.
//! 2. A filter's weights are split into tiles of at most
//!    `rows × compartments` weights — the macro's per-filter capacity.
//! 3. For every (filter wave, weight tile) the compiler emits `LoadWeights`
//!    per macro, a `LoadInputs` covering the streamed input features, one
//!    `Compute` per macro spanning all output positions, an `Accumulate`
//!    when partial sums from several weight tiles must be merged and a final
//!    `WriteOutputs`.

use dbpim_arch::ArchConfig;
use dbpim_csd::OperandWidth;
use serde::{Deserialize, Serialize};

use crate::error::CompileError;
use crate::isa::{Instruction, LayerProgram, MappingMode, ModelProgram, SimdOpKind};
use crate::workload::{ModelWorkloads, PimWorkload, SimdWorkload, Workload};

/// Threshold assumed for filters without FTA information when compiling in
/// DB-PIM mode (the conservative worst case the paper's Algorithm 1 allows).
pub const DEFAULT_THRESHOLD: u32 = 2;

/// The dataflow mapper / instruction generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compiler {
    config: ArchConfig,
    width: OperandWidth,
}

impl Compiler {
    /// Creates an INT8 compiler for the given architecture geometry (the
    /// paper's setting).
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate configuration.
    pub fn new(config: ArchConfig) -> Result<Self, CompileError> {
        Self::with_width(config, OperandWidth::Int8)
    }

    /// Creates a compiler for an arbitrary weight operand width.
    ///
    /// The width shapes the dense mapping (one bit-cell column per weight
    /// bit, so fewer filters per macro at wider operands) and the metadata
    /// cost of the DB-PIM mapping (`width.metadata_bits_per_cell()` bits per
    /// allocated cell).
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate configuration or when a
    /// single dense weight's bit columns exceed the compartment.
    pub fn with_width(config: ArchConfig, width: OperandWidth) -> Result<Self, CompileError> {
        config.validate()?;
        // Fails when width.bits() > dbmus_per_compartment.
        config.dense_filters_per_macro_for(width)?;
        Ok(Self { config, width })
    }

    /// The architecture geometry the compiler maps onto.
    #[must_use]
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// The weight operand width the compiler maps for.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// Compiles every workload of a model under the given mapping mode.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unmappable`] when a layer cannot be tiled onto
    /// the macro geometry.
    pub fn compile(
        &self,
        workloads: &ModelWorkloads,
        mode: MappingMode,
    ) -> Result<ModelProgram, CompileError> {
        let _span = dbpim_trace::span!(
            "compiler.model",
            model = workloads.model_name,
            mode = mode.name(),
            width = self.width.bits(),
        );
        let mut layers = Vec::with_capacity(workloads.workloads.len());
        for workload in &workloads.workloads {
            let layer = match workload {
                Workload::Pim(pim) => self.compile_pim_layer(pim, mode)?,
                Workload::Simd(simd) => Self::compile_simd_layer(simd),
            };
            layers.push(layer);
        }
        Ok(ModelProgram {
            model_name: workloads.model_name.clone(),
            mode,
            operand_bits: self.width.bits(),
            layers,
        })
    }

    fn compile_simd_layer(workload: &SimdWorkload) -> LayerProgram {
        let kind = match workload.kind.as_str() {
            "pool2d" | "global_avg_pool" => SimdOpKind::Pooling,
            "add" | "channel_scale" => SimdOpKind::Arithmetic,
            "flatten" | "identity" | "batchnorm" => SimdOpKind::Move,
            _ => SimdOpKind::Elementwise,
        };
        LayerProgram {
            node_id: workload.node_id,
            name: workload.name.clone(),
            workload: None,
            instructions: vec![Instruction::Simd {
                kind,
                elements: saturate_u32(workload.elements),
            }],
        }
    }

    fn compile_pim_layer(
        &self,
        workload: &PimWorkload,
        mode: MappingMode,
    ) -> Result<LayerProgram, CompileError> {
        let mut instructions = Vec::new();
        let groups = self.filter_groups(workload, mode);
        let k_cap = self.config.weights_per_filter_capacity();
        if workload.filter_len == 0 {
            return Err(CompileError::Unmappable {
                layer: workload.name.clone(),
                reason: "layer has no weights".to_string(),
            });
        }

        for group in &groups {
            if group.filters == 0 {
                continue;
            }
            // Value-pruned groups tile over the group's densest filter rather
            // than the nominal filter length: zeros past that point never
            // need a cell, a load, or a streamed input.
            let k_tiles = group.effective_len.div_ceil(k_cap);
            if group.cells_per_weight == 0 {
                // φ_th = 0: every weight of these filters is zero, so the PIM
                // array is never touched; the SIMD core only materializes the
                // bias into the output positions.
                instructions.push(Instruction::Simd {
                    kind: SimdOpKind::Move,
                    elements: saturate_u32(group.filters as u64 * workload.output_positions as u64),
                });
                continue;
            }
            let filters_per_macro =
                self.config.dbmus_per_compartment / group.cells_per_weight as usize;
            if filters_per_macro == 0 {
                return Err(CompileError::Unmappable {
                    layer: workload.name.clone(),
                    reason: format!(
                        "{} cells per weight exceed the {}-column compartment",
                        group.cells_per_weight, self.config.dbmus_per_compartment
                    ),
                });
            }
            let filters_per_macro = match mode {
                MappingMode::DbPim => filters_per_macro,
                MappingMode::Dense => self
                    .config
                    .dense_filters_per_macro_for(self.width)
                    .expect("checked at construction"),
            };
            let wave_capacity = filters_per_macro * self.config.macros;
            let mut remaining = group.filters;
            while remaining > 0 {
                let wave_filters = remaining.min(wave_capacity);
                for (k, chunk) in chunk_sizes(group.effective_len, k_cap).into_iter().enumerate() {
                    // Load this wave's weight tile into each participating macro.
                    let mut assigned = 0usize;
                    let mut macro_id = 0u8;
                    while assigned < wave_filters {
                        let in_this_macro = (wave_filters - assigned).min(filters_per_macro);
                        let metadata_bytes = match mode {
                            MappingMode::DbPim => {
                                // Sign + block index per allocated cell
                                // (three bits for the paper's INT8 layout).
                                (in_this_macro
                                    * chunk
                                    * group.cells_per_weight as usize
                                    * self.width.metadata_bits_per_cell() as usize)
                                    .div_ceil(8)
                            }
                            MappingMode::Dense => 0,
                        };
                        instructions.push(Instruction::LoadWeights {
                            macro_id,
                            filters: in_this_macro as u16,
                            weights_per_filter: chunk as u32,
                            cells_per_weight: group.cells_per_weight,
                            metadata_bytes: saturate_u32(metadata_bytes as u64),
                        });
                        assigned += in_this_macro;
                        macro_id += 1;
                    }
                    let macros_used = macro_id;
                    // Stream the inputs this tile consumes across all output
                    // positions (they are broadcast to every macro).
                    instructions.push(Instruction::LoadInputs {
                        features: saturate_u32(chunk as u64 * workload.output_positions as u64),
                    });
                    // One Compute per participating macro, spanning every
                    // output position while the weights stay resident.
                    let mut assigned = 0usize;
                    for m in 0..macros_used {
                        let in_this_macro = (wave_filters - assigned).min(filters_per_macro);
                        instructions.push(Instruction::Compute {
                            macro_id: m,
                            filters: in_this_macro as u16,
                            weights_per_filter: chunk as u32,
                            output_positions: saturate_u32(workload.output_positions as u64),
                            threshold: match mode {
                                MappingMode::DbPim => Some(group.cells_per_weight),
                                MappingMode::Dense => None,
                            },
                        });
                        assigned += in_this_macro;
                    }
                    if k_tiles > 1 && k > 0 {
                        instructions.push(Instruction::Accumulate {
                            elements: saturate_u32(
                                wave_filters as u64 * workload.output_positions as u64,
                            ),
                        });
                    }
                }
                instructions.push(Instruction::WriteOutputs {
                    bytes: saturate_u32(wave_filters as u64 * workload.output_positions as u64),
                });
                remaining -= wave_filters;
            }
        }

        Ok(LayerProgram {
            node_id: workload.node_id,
            name: workload.name.clone(),
            workload: Some(workload.clone()),
            instructions,
        })
    }

    /// Groups a workload's filters by the number of cells each weight
    /// occupies under the chosen mapping mode.
    ///
    /// When the workload carries per-filter non-zero counts, each DB-PIM
    /// group's tiled length shrinks to its densest member — the dense
    /// baseline always maps the full nominal filter length.
    fn filter_groups(&self, workload: &PimWorkload, mode: MappingMode) -> Vec<FilterGroup> {
        match mode {
            MappingMode::Dense => vec![FilterGroup {
                cells_per_weight: self.width.bits() as u8,
                filters: workload.filters,
                effective_len: workload.filter_len,
            }],
            MappingMode::DbPim => {
                let compact = workload.filter_nonzeros.len() == workload.thresholds.len()
                    && !workload.filter_nonzeros.is_empty();
                let mut histogram = [0usize; 3];
                let mut longest = [0usize; 3];
                if workload.thresholds.is_empty() {
                    histogram[DEFAULT_THRESHOLD as usize] = workload.filters;
                } else {
                    for (i, &t) in workload.thresholds.iter().enumerate() {
                        let phi = (t as usize).min(2);
                        histogram[phi] += 1;
                        if compact {
                            longest[phi] = longest[phi].max(workload.filter_nonzeros[i]);
                        }
                    }
                }
                (0u8..=2)
                    .map(|phi| FilterGroup {
                        cells_per_weight: phi,
                        filters: histogram[phi as usize],
                        effective_len: if compact && phi > 0 {
                            // φ > 0 guarantees at least one non-zero weight
                            // per filter; the clamp only shields
                            // hand-constructed inconsistent workloads.
                            longest[phi as usize].min(workload.filter_len).max(1)
                        } else {
                            workload.filter_len
                        },
                    })
                    .filter(|g| g.filters > 0)
                    .collect()
            }
        }
    }
}

/// One group of filters sharing a cells-per-weight allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct FilterGroup {
    cells_per_weight: u8,
    filters: usize,
    /// Weights per filter the group actually tiles over (the nominal filter
    /// length, or the group's largest non-zero count when value sparsity is
    /// recorded).
    effective_len: usize,
}

/// Splits `total` into chunks of at most `cap`.
fn chunk_sizes(total: usize, cap: usize) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        let take = remaining.min(cap);
        chunks.push(take);
        remaining -= take;
    }
    chunks
}

fn saturate_u32(value: u64) -> u32 {
    u32::try_from(value).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::PimLayerKind;

    fn workload(
        filters: usize,
        filter_len: usize,
        positions: usize,
        thresholds: Vec<u32>,
    ) -> PimWorkload {
        PimWorkload {
            node_id: 0,
            name: "conv".to_string(),
            kind: PimLayerKind::Conv2d,
            filters,
            filter_len,
            output_positions: positions,
            thresholds,
            filter_nonzeros: vec![],
            input_skip_ratio: 0.0,
            macs: (filters * filter_len * positions) as u64,
        }
    }

    fn model_workloads(w: PimWorkload) -> ModelWorkloads {
        ModelWorkloads { model_name: "test".to_string(), workloads: vec![Workload::Pim(w)] }
    }

    #[test]
    fn chunking_covers_everything() {
        assert_eq!(chunk_sizes(10, 4), vec![4, 4, 2]);
        assert_eq!(chunk_sizes(4, 4), vec![4]);
        assert_eq!(chunk_sizes(0, 4), Vec::<usize>::new());
        assert_eq!(saturate_u32(u64::MAX), u32::MAX);
    }

    #[test]
    fn phi1_layer_uses_sixteen_filters_per_macro() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let w = workload(64, 27, 100, vec![1; 64]);
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        let layer = &program.layers[0];
        // 64 filters / (16 per macro * 4 macros) = exactly one wave.
        let loads: Vec<_> = layer
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::LoadWeights { .. }))
            .collect();
        assert_eq!(loads.len(), 4);
        assert_eq!(layer.compute_count(), 4);
        for inst in &layer.instructions {
            if let Instruction::Compute { filters, threshold, .. } = inst {
                assert_eq!(*filters, 16);
                assert_eq!(*threshold, Some(1));
            }
        }
    }

    #[test]
    fn phi2_layer_uses_eight_filters_per_macro() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let w = workload(64, 27, 100, vec![2; 64]);
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        let layer = &program.layers[0];
        // 64 filters / (8 per macro * 4 macros) = two waves of 4 loads each.
        let loads = layer
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::LoadWeights { .. }))
            .count();
        assert_eq!(loads, 8);
        assert_eq!(layer.compute_count(), 8);
    }

    #[test]
    fn wide_dense_mappings_scale_filters_and_metadata() {
        // INT16: one filter per macro densely, 4 metadata bits per cell in
        // DB-PIM mode.
        let compiler = Compiler::with_width(ArchConfig::paper(), OperandWidth::Int16).unwrap();
        assert_eq!(compiler.width(), OperandWidth::Int16);
        let w = workload(16, 27, 10, vec![1; 16]);
        let dense = compiler.compile(&model_workloads(w.clone()), MappingMode::Dense).unwrap();
        assert_eq!(dense.operand_bits, 16);
        for inst in &dense.layers[0].instructions {
            if let Instruction::Compute { filters, .. } = inst {
                assert_eq!(*filters, 1);
            }
            if let Instruction::LoadWeights { cells_per_weight, .. } = inst {
                assert_eq!(*cells_per_weight, 16);
            }
        }
        let sparse = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        for inst in &sparse.layers[0].instructions {
            if let Instruction::LoadWeights {
                filters, weights_per_filter, metadata_bytes, ..
            } = inst
            {
                // 4 bits per allocated cell, one cell per weight at φ=1.
                let cells = u32::from(*filters) * *weights_per_filter;
                assert_eq!(*metadata_bytes, (cells * 4).div_ceil(8));
            }
        }

        // INT8 via with_width is identical to the historical constructor.
        let int8 = Compiler::with_width(ArchConfig::paper(), OperandWidth::Int8).unwrap();
        let legacy = Compiler::new(ArchConfig::paper()).unwrap();
        let w = workload(64, 27, 100, vec![2; 64]);
        assert_eq!(
            int8.compile(&model_workloads(w.clone()), MappingMode::Dense).unwrap(),
            legacy.compile(&model_workloads(w), MappingMode::Dense).unwrap()
        );

        // A width wider than the compartment is rejected up front.
        let mut narrow = ArchConfig::paper();
        narrow.dbmus_per_compartment = 8;
        assert!(Compiler::with_width(narrow, OperandWidth::Int16).is_err());
    }

    #[test]
    fn dense_mapping_packs_two_filters_per_macro() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let w = workload(64, 27, 100, vec![1; 64]);
        let program = compiler.compile(&model_workloads(w), MappingMode::Dense).unwrap();
        let layer = &program.layers[0];
        // 64 filters / (2 per macro * 4 macros) = 8 waves of 4 loads.
        assert_eq!(layer.compute_count(), 32);
        for inst in &layer.instructions {
            if let Instruction::Compute { filters, threshold, .. } = inst {
                assert_eq!(*filters, 2);
                assert_eq!(*threshold, None);
            }
            if let Instruction::LoadWeights { cells_per_weight, metadata_bytes, .. } = inst {
                assert_eq!(*cells_per_weight, 8);
                assert_eq!(*metadata_bytes, 0);
            }
        }
        // The DB-PIM mapping of the same layer issues 8x fewer computes.
        let db = compiler
            .compile(&model_workloads(workload(64, 27, 100, vec![1; 64])), MappingMode::DbPim)
            .unwrap();
        assert_eq!(layer.compute_count() / db.layers[0].compute_count(), 8);
    }

    #[test]
    fn zero_threshold_filters_skip_the_array() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let mut thresholds = vec![0u32; 16];
        thresholds.extend(vec![1u32; 16]);
        let w = workload(32, 27, 10, thresholds);
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        let layer = &program.layers[0];
        // Only the 16 φ=1 filters reach the macros (one macro load).
        let computed_filters: u64 = layer
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Compute { filters, .. } => Some(u64::from(*filters)),
                _ => None,
            })
            .sum();
        assert_eq!(computed_filters, 16);
        assert!(layer
            .instructions
            .iter()
            .any(|i| matches!(i, Instruction::Simd { kind: SimdOpKind::Move, .. })));
    }

    #[test]
    fn long_filters_are_tiled_and_accumulated() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        // 2500 weights per filter > 1024 capacity -> 3 weight tiles.
        let w = workload(8, 2500, 4, vec![2; 8]);
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        let layer = &program.layers[0];
        assert_eq!(layer.compute_count(), 3);
        let accumulates = layer
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Accumulate { .. }))
            .count();
        assert_eq!(accumulates, 2);
        // Chunks must cover the whole filter.
        let weights: u64 = layer
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Compute { weights_per_filter, .. } => {
                    Some(u64::from(*weights_per_filter))
                }
                _ => None,
            })
            .sum();
        assert_eq!(weights, 2500);
    }

    #[test]
    fn value_pruned_filters_compact_into_fewer_tiles() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        // 2500 weights per filter nominally (3 tiles at the 1024 capacity),
        // but pruning left at most 900 non-zeros per filter: one tile.
        let mut w = workload(8, 2500, 4, vec![2; 8]);
        w.filter_nonzeros = vec![900, 100, 850, 10, 900, 900, 5, 1];
        assert!((w.value_zero_fraction() - (1.0 - 3666.0 / 20000.0)).abs() < 1e-12);
        let program = compiler.compile(&model_workloads(w.clone()), MappingMode::DbPim).unwrap();
        let layer = &program.layers[0];
        assert_eq!(layer.compute_count(), 1);
        assert!(!layer.instructions.iter().any(|i| matches!(i, Instruction::Accumulate { .. })));
        let streamed: u64 = layer
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::LoadInputs { features } => Some(u64::from(*features)),
                _ => None,
            })
            .sum();
        assert_eq!(streamed, 900 * 4);

        // The dense baseline ignores value sparsity: identical to the
        // unpruned dense mapping of the same geometry.
        let dense_pruned = compiler.compile(&model_workloads(w), MappingMode::Dense).unwrap();
        let mut unpruned = workload(8, 2500, 4, vec![2; 8]);
        let dense_ref = {
            let p =
                compiler.compile(&model_workloads(unpruned.clone()), MappingMode::Dense).unwrap();
            p.layers[0].instructions.clone()
        };
        assert_eq!(dense_pruned.layers[0].instructions, dense_ref);

        // Empty nonzero counts keep the historical tiling bit-for-bit.
        unpruned.filter_nonzeros = vec![];
        let legacy = compiler.compile(&model_workloads(unpruned), MappingMode::DbPim).unwrap();
        assert_eq!(legacy.layers[0].compute_count(), 3);
    }

    #[test]
    fn full_nonzero_counts_change_nothing() {
        // Counts equal to the filter length reproduce the legacy program
        // exactly — the pruning=0 identity at the mapper level.
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let baseline = workload(32, 2500, 16, vec![1; 16].into_iter().chain(vec![2; 16]).collect());
        let mut counted = baseline.clone();
        counted.filter_nonzeros = vec![2500; 32];
        for mode in [MappingMode::DbPim, MappingMode::Dense] {
            assert_eq!(
                compiler.compile(&model_workloads(counted.clone()), mode).unwrap().layers[0]
                    .instructions,
                compiler.compile(&model_workloads(baseline.clone()), mode).unwrap().layers[0]
                    .instructions,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn compaction_is_per_threshold_group() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        // φ=1 group pruned to ≤1000 non-zeros (1 tile), φ=2 group dense
        // (3 tiles); a shared tiling would need 3 everywhere.
        let mut w = workload(8, 2500, 4, vec![1, 1, 1, 1, 2, 2, 2, 2]);
        w.filter_nonzeros = vec![1000, 999, 4, 12, 2500, 2500, 2500, 2500];
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        let mut tiles_per_threshold = [0usize; 3];
        for inst in &program.layers[0].instructions {
            if let Instruction::Compute { threshold: Some(t), .. } = inst {
                tiles_per_threshold[*t as usize] += 1;
            }
        }
        assert_eq!(tiles_per_threshold, [0, 1, 3]);
    }

    #[test]
    fn missing_thresholds_fall_back_to_the_conservative_default() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let w = workload(8, 27, 10, vec![]);
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        for inst in &program.layers[0].instructions {
            if let Instruction::Compute { threshold, .. } = inst {
                assert_eq!(*threshold, Some(DEFAULT_THRESHOLD as u8));
            }
        }
    }

    #[test]
    fn nominal_macs_cover_the_workload() {
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let w = workload(40, 300, 64, vec![1; 20].into_iter().chain(vec![2; 20]).collect());
        let expected: u64 = 40 * 300 * 64;
        let program = compiler.compile(&model_workloads(w), MappingMode::DbPim).unwrap();
        assert_eq!(program.nominal_macs(), expected);
        assert!(program.instruction_count() > 0);
    }

    #[test]
    fn simd_layers_compile_to_one_instruction() {
        let workloads = ModelWorkloads {
            model_name: "m".to_string(),
            workloads: vec![Workload::Simd(SimdWorkload {
                node_id: 3,
                name: "relu".to_string(),
                kind: "activation".to_string(),
                elements: 1000,
            })],
        };
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let program = compiler.compile(&workloads, MappingMode::DbPim).unwrap();
        assert_eq!(program.layers[0].instructions.len(), 1);
        assert!(matches!(
            program.layers[0].instructions[0],
            Instruction::Simd { kind: SimdOpKind::Elementwise, elements: 1000 }
        ));
    }
}
