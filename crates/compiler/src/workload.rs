//! Layer workloads: the hardware-facing view of a model.
//!
//! A workload describes one graph node in the terms the mapper and simulator
//! care about: the implicit-GEMM dimensions of a PIM layer (filters ×
//! filter-length × output positions), its per-filter FTA thresholds, the
//! measured block-wise input bit sparsity of the tensor it consumes, or — for
//! everything else — the element count the SIMD core has to touch.

use std::collections::HashMap;

use dbpim_fta::ModelApprox;
use dbpim_nn::{Layer, Model, NodeId};
use serde::{Deserialize, Serialize};

use crate::error::CompileError;

/// Block-wise input bit-sparsity per graph node.
///
/// For every PIM layer the profile stores the fraction of all-zero bit
/// columns (groups of 16 features, Fig. 2(b)) of the tensor that layer reads.
/// Layers without a measurement fall back to zero (no skippable columns).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InputSparsityProfile {
    ratios: HashMap<NodeId, f64>,
}

impl InputSparsityProfile {
    /// Creates an empty profile (no input sparsity anywhere).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the zero-column ratio of the input consumed by `node_id`.
    pub fn set(&mut self, node_id: NodeId, ratio: f64) {
        self.ratios.insert(node_id, ratio.clamp(0.0, 1.0));
    }

    /// The zero-column ratio for a node (0.0 when unknown).
    #[must_use]
    pub fn ratio(&self, node_id: NodeId) -> f64 {
        self.ratios.get(&node_id).copied().unwrap_or(0.0)
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Returns `true` when no node has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// Mean ratio across recorded nodes (used in reports).
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        self.ratios.values().sum::<f64>() / self.ratios.len() as f64
    }
}

impl FromIterator<(NodeId, f64)> for InputSparsityProfile {
    fn from_iter<T: IntoIterator<Item = (NodeId, f64)>>(iter: T) -> Self {
        let mut profile = Self::new();
        for (id, ratio) in iter {
            profile.set(id, ratio);
        }
        profile
    }
}

/// The kind of a PIM-mapped layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimLayerKind {
    /// Ordinary or grouped convolution.
    Conv2d,
    /// Depthwise convolution (`groups == in_channels`).
    DepthwiseConv2d,
    /// Fully-connected layer.
    Linear,
}

/// Workload of one layer that runs on the PIM macros.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimWorkload {
    /// Graph node id.
    pub node_id: NodeId,
    /// Layer name.
    pub name: String,
    /// Layer kind.
    pub kind: PimLayerKind,
    /// Number of filters (output channels / output features).
    pub filters: usize,
    /// Weights per filter (`in/groups · k · k` or `in_features`).
    pub filter_len: usize,
    /// Output positions per filter (`oh · ow` for convolutions, 1 for FC).
    pub output_positions: usize,
    /// Per-filter FTA thresholds `φ_th` (empty when the layer is mapped
    /// densely, e.g. for the baseline).
    pub thresholds: Vec<u32>,
    /// Per-filter counts of non-zero weights after FTA, in filter order.
    /// Populated only by [`extract_workloads_with_value_sparsity`] (the
    /// value-pruned pipeline); empty means "assume every weight non-zero",
    /// which preserves the historical tiling exactly.
    pub filter_nonzeros: Vec<usize>,
    /// Block-wise zero bit-column ratio of this layer's input tensor.
    pub input_skip_ratio: f64,
    /// Multiply-accumulate count of the layer.
    pub macs: u64,
}

impl PimWorkload {
    /// Histogram of per-filter thresholds `[φ0, φ1, φ2]`.
    #[must_use]
    pub fn threshold_histogram(&self) -> [usize; 3] {
        let mut hist = [0usize; 3];
        for &t in &self.thresholds {
            hist[(t as usize).min(2)] += 1;
        }
        hist
    }

    /// Total INT8 weights of the layer.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.filters * self.filter_len
    }

    /// Fraction of exactly-zero weights recorded for this layer (`0.0` when
    /// no value-sparsity information was extracted).
    #[must_use]
    pub fn value_zero_fraction(&self) -> f64 {
        if self.filter_nonzeros.is_empty() || self.weight_count() == 0 {
            return 0.0;
        }
        let nonzero: usize = self.filter_nonzeros.iter().sum();
        1.0 - nonzero as f64 / self.weight_count() as f64
    }
}

/// Workload of one layer that runs on the SIMD core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimdWorkload {
    /// Graph node id.
    pub node_id: NodeId,
    /// Layer name.
    pub name: String,
    /// Layer kind name (e.g. `"activation"`, `"pool2d"`, `"add"`).
    pub kind: String,
    /// Number of output elements the SIMD core produces.
    pub elements: u64,
}

/// One node's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Runs on the PIM macros.
    Pim(PimWorkload),
    /// Runs on the SIMD core.
    Simd(SimdWorkload),
}

impl Workload {
    /// Graph node id of the workload.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        match self {
            Workload::Pim(w) => w.node_id,
            Workload::Simd(w) => w.node_id,
        }
    }

    /// The PIM workload, if this node runs on the macros.
    #[must_use]
    pub fn as_pim(&self) -> Option<&PimWorkload> {
        match self {
            Workload::Pim(w) => Some(w),
            Workload::Simd(_) => None,
        }
    }
}

/// The full set of workloads of one model, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWorkloads {
    /// Name of the model.
    pub model_name: String,
    /// One workload per graph node.
    pub workloads: Vec<Workload>,
}

impl ModelWorkloads {
    /// The PIM workloads in execution order.
    #[must_use]
    pub fn pim_workloads(&self) -> Vec<&PimWorkload> {
        self.workloads.iter().filter_map(Workload::as_pim).collect()
    }

    /// Total MACs mapped onto the PIM macros.
    #[must_use]
    pub fn total_pim_macs(&self) -> u64 {
        self.pim_workloads().iter().map(|w| w.macs).sum()
    }

    /// Total SIMD elements.
    #[must_use]
    pub fn total_simd_elements(&self) -> u64 {
        self.workloads
            .iter()
            .filter_map(|w| match w {
                Workload::Simd(s) => Some(s.elements),
                Workload::Pim(_) => None,
            })
            .sum()
    }
}

/// Extracts the per-node workloads of a model.
///
/// `approx` supplies the per-filter FTA thresholds; pass `None` to describe a
/// purely dense mapping (the thresholds are then left empty). `input_sparsity`
/// supplies the measured block-wise zero-column ratios.
///
/// # Errors
///
/// Propagates shape-inference errors from the model graph and
/// [`CompileError::UnknownNode`] when the approximation references a node the
/// model lacks.
pub fn extract_workloads(
    model: &Model,
    approx: Option<&ModelApprox>,
    input_sparsity: &InputSparsityProfile,
) -> Result<ModelWorkloads, CompileError> {
    extract_workloads_inner(model, approx, input_sparsity, false)
}

/// Like [`extract_workloads`], but additionally records each PIM layer's
/// per-filter non-zero weight counts ([`PimWorkload::filter_nonzeros`]) from
/// the approximation, so the mapper can compact value-pruned filters into
/// fewer weight tiles.
///
/// Only the value-pruned pipeline calls this: recording the counts for an
/// unpruned model would let incidental quantization zeros perturb the tiling,
/// breaking bit-identity with the historical dense extraction.
///
/// # Errors
///
/// Same failure modes as [`extract_workloads`].
pub fn extract_workloads_with_value_sparsity(
    model: &Model,
    approx: Option<&ModelApprox>,
    input_sparsity: &InputSparsityProfile,
) -> Result<ModelWorkloads, CompileError> {
    extract_workloads_inner(model, approx, input_sparsity, true)
}

fn extract_workloads_inner(
    model: &Model,
    approx: Option<&ModelApprox>,
    input_sparsity: &InputSparsityProfile,
    value_sparsity: bool,
) -> Result<ModelWorkloads, CompileError> {
    let shapes = model.node_output_shapes()?;
    let mut workloads = Vec::with_capacity(model.nodes().len());
    for node in model.nodes() {
        let input_shape: Vec<usize> = if node.inputs.is_empty() {
            model.input_shape().to_vec()
        } else {
            shapes
                .get(node.inputs[0])
                .cloned()
                .ok_or(CompileError::UnknownNode { node_id: node.inputs[0] })?
        };
        let output_shape = &shapes[node.id];
        let workload = match &node.layer {
            Layer::Conv2d { cfg, .. } => {
                let (oh, ow) = cfg.output_hw(input_shape[1], input_shape[2]);
                let kind = if cfg.groups == cfg.in_channels && cfg.groups > 1 {
                    PimLayerKind::DepthwiseConv2d
                } else {
                    PimLayerKind::Conv2d
                };
                Workload::Pim(PimWorkload {
                    node_id: node.id,
                    name: node.name.clone(),
                    kind,
                    filters: cfg.out_channels,
                    filter_len: cfg.filter_len(),
                    output_positions: oh * ow,
                    thresholds: thresholds_for(approx, node.id),
                    filter_nonzeros: nonzeros_for(approx, node.id, value_sparsity),
                    input_skip_ratio: input_sparsity.ratio(node.id),
                    macs: cfg.macs(oh, ow),
                })
            }
            Layer::Linear { cfg, .. } => Workload::Pim(PimWorkload {
                node_id: node.id,
                name: node.name.clone(),
                kind: PimLayerKind::Linear,
                filters: cfg.out_features,
                filter_len: cfg.in_features,
                output_positions: 1,
                thresholds: thresholds_for(approx, node.id),
                filter_nonzeros: nonzeros_for(approx, node.id, value_sparsity),
                input_skip_ratio: input_sparsity.ratio(node.id),
                macs: cfg.macs(),
            }),
            other => Workload::Simd(SimdWorkload {
                node_id: node.id,
                name: node.name.clone(),
                kind: other.kind_name().to_string(),
                elements: output_shape.iter().product::<usize>() as u64,
            }),
        };
        workloads.push(workload);
    }
    Ok(ModelWorkloads { model_name: model.name().to_string(), workloads })
}

fn thresholds_for(approx: Option<&ModelApprox>, node_id: NodeId) -> Vec<u32> {
    approx.and_then(|a| a.layer(node_id).ok()).map(|layer| layer.thresholds()).unwrap_or_default()
}

fn nonzeros_for(approx: Option<&ModelApprox>, node_id: NodeId, enabled: bool) -> Vec<usize> {
    if !enabled {
        return Vec::new();
    }
    approx
        .and_then(|a| a.layer(node_id).ok())
        .map(|layer| layer.filter_nonzero_counts())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_nn::zoo;
    use dbpim_nn::QuantizedModel;
    use dbpim_tensor::random::TensorGenerator;

    fn tiny_workloads(with_fta: bool) -> ModelWorkloads {
        let model = zoo::tiny_cnn(10, 5).unwrap();
        let approx = if with_fta {
            let mut gen = TensorGenerator::new(6);
            let (cal, _) = gen.labelled_batch(2, 3, 32, 32, 10).unwrap();
            let q = QuantizedModel::quantize(&model, &cal).unwrap();
            Some(ModelApprox::from_quantized(&q).unwrap())
        } else {
            None
        };
        let mut profile = InputSparsityProfile::new();
        profile.set(0, 0.4);
        extract_workloads(&model, approx.as_ref(), &profile).unwrap()
    }

    #[test]
    fn every_node_gets_a_workload() {
        let model = zoo::tiny_cnn(10, 5).unwrap();
        let w = tiny_workloads(false);
        assert_eq!(w.workloads.len(), model.nodes().len());
        assert_eq!(w.pim_workloads().len(), 4);
        assert!(w.total_pim_macs() > 0);
        assert!(w.total_simd_elements() > 0);
    }

    #[test]
    fn conv_workload_geometry_matches_configuration() {
        let w = tiny_workloads(false);
        let conv1 = w.pim_workloads()[0].clone();
        assert_eq!(conv1.kind, PimLayerKind::Conv2d);
        assert_eq!(conv1.filters, 16);
        assert_eq!(conv1.filter_len, 27);
        assert_eq!(conv1.output_positions, 32 * 32);
        assert_eq!(conv1.macs, 16 * 27 * 1024);
        assert!((conv1.input_skip_ratio - 0.4).abs() < 1e-12);
        assert_eq!(conv1.weight_count(), 16 * 27);
    }

    #[test]
    fn thresholds_come_from_the_fta_approximation() {
        let with = tiny_workloads(true);
        let without = tiny_workloads(false);
        let conv_with = with.pim_workloads()[0].clone();
        let conv_without = without.pim_workloads()[0].clone();
        assert_eq!(conv_with.thresholds.len(), conv_with.filters);
        assert!(conv_without.thresholds.is_empty());
        assert_eq!(conv_with.threshold_histogram().iter().sum::<usize>(), conv_with.filters);
        assert_eq!(conv_without.threshold_histogram(), [0, 0, 0]);
    }

    #[test]
    fn depthwise_convolutions_are_classified() {
        let model = dbpim_nn::ModelKind::MobileNetV2.build_with_width(10, 1, 0.25).unwrap();
        let w = extract_workloads(&model, None, &InputSparsityProfile::new()).unwrap();
        assert!(w.pim_workloads().iter().any(|p| p.kind == PimLayerKind::DepthwiseConv2d));
    }

    #[test]
    fn sparsity_profile_clamps_and_averages() {
        let mut p = InputSparsityProfile::new();
        assert!(p.is_empty());
        p.set(0, 1.5);
        p.set(1, -0.5);
        p.set(2, 0.25);
        assert_eq!(p.ratio(0), 1.0);
        assert_eq!(p.ratio(1), 0.0);
        assert_eq!(p.ratio(99), 0.0);
        assert_eq!(p.len(), 3);
        assert!((p.mean_ratio() - (1.25 / 3.0)).abs() < 1e-12);
        let q: InputSparsityProfile = vec![(4, 0.5)].into_iter().collect();
        assert_eq!(q.ratio(4), 0.5);
    }
}
