//! Design-space exploration: persisted, resumable grids over architecture
//! geometry × models × sparsity × operand width.
//!
//! The paper's evaluation fixes one geometry (Section 4.1); its *claim* is a
//! methodology that should win across geometries. This module turns the
//! session layer into a DSE engine:
//!
//! * [`DseSpec`] — an [`ArchGrid`] (axis grids over the [`ArchConfig`]
//!   parameters) crossed with models, sparsity configurations and operand
//!   widths. Enumeration is deterministic and infeasible geometries are
//!   rejected with structured errors.
//! * [`DseReport`] — the persisted result set: one [`DseEntry`] per (model,
//!   width, geometry) point, snapshotted to disk as JSON after every batch,
//!   so a killed run loses at most one batch of work.
//! * [`DseDriver`] — executes the missing points of a spec against a warm
//!   [`BatchRunner`] cache (quantize / FTA / compile run once per (model,
//!   width) regardless of grid size) and resumes from a snapshot by
//!   re-simulating only absent points.
//! * Pareto-frontier extraction over latency / energy / area / fidelity
//!   via [`DseReport::pareto_frontier`].
//!
//! Entry results are bit-identical to independent per-point
//! [`Pipeline`](crate::Pipeline) runs — the workspace test
//! `dse_exploration.rs` asserts exactly that, plus resume-only-missing and
//! the frontier against a brute-force reference.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use dbpim_arch::ArchConfig;
use dbpim_csd::OperandWidth;
use dbpim_nn::ModelKind;
use dbpim_sim::dse::{pareto_frontier, ArchGrid, GridError, ParetoMetrics};
use dbpim_sim::{AreaModel, SparsityConfig};
use dbpim_tensor::PruningSpec;
use serde::value::{get_field, type_error, Value};
use serde::{Deserialize, Error, Serialize};

use crate::error::PipelineError;
use crate::pipeline::{CodesignResult, PipelineConfig};
use crate::session::{par, BatchRunner, SessionCacheStats, SweepEntry, SweepSpec};

/// Milliseconds since the Unix epoch — the timestamp resolution of DSE
/// snapshots. Timestamps record *when* a point was computed; every equality
/// helper ([`DseReport::results_match`]) ignores them.
#[must_use]
pub fn unix_time_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// The point set of a design-space exploration: an architecture grid
/// crossed with models, sparsity configurations, operand widths and pruning
/// specs.
///
/// Serialization is hand-written so the `pruning` axis is omitted when empty
/// and tolerated when absent — specs (and snapshots embedding them) written
/// before the axis existed keep their historical bytes and still load.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSpec {
    /// Geometry axis grids.
    pub grid: ArchGrid,
    /// Zoo models to explore (duplicates are executed once).
    pub models: Vec<ModelKind>,
    /// Sparsity configurations simulated per point (duplicates are executed
    /// once, canonical Fig. 7 order).
    pub sparsity: Vec<SparsityConfig>,
    /// Weight operand widths; empty means "the session's configured width".
    pub widths: Vec<OperandWidth>,
    /// Value-level pruning specs (the joint value/bit sparsity axis); empty
    /// means "the session's configured pruning" — the identity spec by
    /// default, i.e. the classic unpruned exploration.
    pub pruning: Vec<PruningSpec>,
    /// Evaluate accuracy fidelity where defined (INT8 width, evaluation
    /// images configured).
    pub fidelity: bool,
}

impl Serialize for DseSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("grid".to_string(), self.grid.to_value()),
            ("models".to_string(), self.models.to_value()),
            ("sparsity".to_string(), self.sparsity.to_value()),
            ("widths".to_string(), self.widths.to_value()),
            ("fidelity".to_string(), self.fidelity.to_value()),
        ];
        if !self.pruning.is_empty() {
            entries.push(("pruning".to_string(), self.pruning.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for DseSpec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("DSE spec map", value))?;
        let field = |name: &str| {
            get_field(entries, name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
        };
        Ok(Self {
            grid: ArchGrid::from_value(field("grid")?)?,
            models: Vec::from_value(field("models")?)?,
            sparsity: Vec::from_value(field("sparsity")?)?,
            widths: Vec::from_value(field("widths")?)?,
            pruning: match get_field(entries, "pruning") {
                Some(found) => Vec::from_value(found)?,
                None => Vec::new(),
            },
            fidelity: bool::from_value(field("fidelity")?)?,
        })
    }
}

impl DseSpec {
    /// A spec over `grid` and `models` with all four sparsity
    /// configurations, the session width and no fidelity evaluation.
    #[must_use]
    pub fn new(grid: ArchGrid, models: Vec<ModelKind>) -> Self {
        Self {
            grid,
            models,
            sparsity: SparsityConfig::all().to_vec(),
            widths: Vec::new(),
            pruning: Vec::new(),
            fidelity: false,
        }
    }

    /// Restricts the sparsity configurations.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: Vec<SparsityConfig>) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Adds explicit operand widths (the precision axis).
    #[must_use]
    pub fn with_widths(mut self, widths: Vec<OperandWidth>) -> Self {
        self.widths = widths;
        self
    }

    /// Adds explicit pruning specs (the value-sparsity axis).
    #[must_use]
    pub fn with_pruning(mut self, pruning: Vec<PruningSpec>) -> Self {
        self.pruning = pruning;
        self
    }

    /// Requests the fidelity evaluation where defined.
    #[must_use]
    pub fn with_fidelity(mut self) -> Self {
        self.fidelity = true;
        self
    }

    /// The equivalent sweep axes (used for the shared dedup helpers).
    fn as_sweep(&self) -> SweepSpec {
        SweepSpec::new(self.models.clone())
            .with_sparsity(self.sparsity.clone())
            .with_widths(self.widths.clone())
            .with_pruning(self.pruning.clone())
    }

    /// The requested models, duplicates removed, in first-seen order.
    #[must_use]
    pub fn unique_models(&self) -> Vec<ModelKind> {
        self.as_sweep().unique_models()
    }

    /// The requested sparsity configurations in canonical Fig. 7 order.
    #[must_use]
    pub fn unique_sparsity(&self) -> Vec<SparsityConfig> {
        self.as_sweep().unique_sparsity()
    }

    /// The operand widths the exploration runs at, in canonical
    /// narrow-to-wide order (`session_width` when none were requested).
    #[must_use]
    pub fn effective_widths(&self, session_width: OperandWidth) -> Vec<OperandWidth> {
        self.as_sweep().effective_widths(session_width)
    }

    /// The pruning specs the exploration runs at, in request order
    /// (deduplicated); `session_pruning` when none were requested.
    #[must_use]
    pub fn effective_pruning(&self, session_pruning: PruningSpec) -> Vec<PruningSpec> {
        self.as_sweep().effective_pruning(session_pruning)
    }

    /// Every (model, width, pruning, geometry) point of the exploration in
    /// canonical order: models outermost (first-seen), then widths (narrow
    /// to wide), then pruning specs (request order), then geometries (grid
    /// enumeration order).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for an oversized or infeasible
    /// grid (the message names the offending point and constraint).
    pub fn points(
        &self,
        session_width: OperandWidth,
        session_pruning: PruningSpec,
    ) -> Result<Vec<DsePoint>, PipelineError> {
        let archs = self.grid.enumerate().map_err(grid_error)?;
        let mut points =
            Vec::with_capacity(self.unique_models().len() * archs.len().max(1) * 2usize);
        for kind in self.unique_models() {
            for width in self.effective_widths(session_width) {
                for pruning in self.effective_pruning(session_pruning) {
                    for &arch in &archs {
                        points.push(DsePoint { kind, width, pruning, arch });
                    }
                }
            }
        }
        Ok(points)
    }
}

fn grid_error(e: GridError) -> PipelineError {
    PipelineError::BadConfig { reason: e.to_string() }
}

/// One (model, width, pruning, geometry) point of a [`DseSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// The explored model.
    pub kind: ModelKind,
    /// The weight operand width.
    pub width: OperandWidth,
    /// The value-level pruning applied before quantization.
    pub pruning: PruningSpec,
    /// The geometry.
    pub arch: ArchConfig,
}

/// A hashable identity of one point: the model, the width's bit count, the
/// pruning spec's [`key_bits`](PruningSpec::key_bits) and every `ArchConfig`
/// field (the frequency by bit pattern). Lets the driver and the report do
/// point lookups through hash maps instead of linear scans — `ArchConfig`
/// and `PruningSpec` cannot implement `Hash`/`Eq` because of their `f64`
/// fields.
type PointKey = (ModelKind, u32, (u8, u64), [u64; 12]);

fn point_key(
    kind: ModelKind,
    width: OperandWidth,
    pruning: PruningSpec,
    arch: &ArchConfig,
) -> PointKey {
    (
        kind,
        width.bits(),
        pruning.key_bits(),
        [
            arch.macros as u64,
            arch.compartments_per_macro as u64,
            arch.dbmus_per_compartment as u64,
            arch.rows_per_dbmu as u64,
            arch.frequency_mhz.to_bits(),
            arch.feature_buffer_bytes as u64,
            arch.weight_buffer_bytes as u64,
            arch.meta_buffer_bytes as u64,
            arch.instruction_buffer_bytes as u64,
            arch.meta_rf_bytes as u64,
            arch.output_rf_bytes as u64,
            arch.dense_filters_per_macro as u64,
        ],
    )
}

impl DsePoint {
    fn key(&self) -> PointKey {
        point_key(self.kind, self.width, self.pruning, &self.arch)
    }

    /// The point's opaque hashable identity — what deduplication across
    /// shard reports keys on.
    #[must_use]
    pub fn canonical_key(&self) -> DsePointKey {
        DsePointKey(self.key())
    }
}

/// An opaque, hashable identity of one (model, width, pruning, geometry)
/// point.
///
/// `ArchConfig` and `PruningSpec` cannot implement `Hash`/`Eq` (they hold
/// `f64` fields), so consumers that need set/map semantics over points — the
/// fleet orchestrator's exactly-once bookkeeping, shard dedup — go through
/// this key instead. Two points compare equal here iff they compare equal
/// field-for-field (floats by bit pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DsePointKey(PointKey);

/// One computed point of a [`DseReport`].
///
/// Serialization is hand-written: an identity `pruning` spec is omitted, so
/// unpruned snapshots stay byte-identical to snapshots written before the
/// pruning axis existed, and old snapshots load with the identity default.
#[derive(Debug, Clone, PartialEq)]
pub struct DseEntry {
    /// The explored model.
    pub kind: ModelKind,
    /// The weight operand width of the point.
    pub width: OperandWidth,
    /// The value-level pruning of the point (identity for classic unpruned
    /// explorations).
    pub pruning: PruningSpec,
    /// The geometry of the point.
    pub arch: ArchConfig,
    /// The full co-design result at the point.
    pub result: CodesignResult,
    /// Unix-epoch milliseconds at which the point was computed. Ignored by
    /// [`DseReport::results_match`]; preserved across resumes for entries
    /// the resume did not have to recompute.
    pub computed_at_ms: u64,
}

impl Serialize for DseEntry {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("kind".to_string(), self.kind.to_value()),
            ("width".to_string(), self.width.to_value()),
            ("arch".to_string(), self.arch.to_value()),
            ("result".to_string(), self.result.to_value()),
            ("computed_at_ms".to_string(), self.computed_at_ms.to_value()),
        ];
        if self.pruning.is_active() {
            entries.push(("pruning".to_string(), self.pruning.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for DseEntry {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("DSE entry map", value))?;
        let field = |name: &str| {
            get_field(entries, name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
        };
        Ok(Self {
            kind: ModelKind::from_value(field("kind")?)?,
            width: OperandWidth::from_value(field("width")?)?,
            pruning: match get_field(entries, "pruning") {
                Some(found) => PruningSpec::from_value(found)?,
                None => PruningSpec::none(),
            },
            arch: ArchConfig::from_value(field("arch")?)?,
            result: CodesignResult::from_value(field("result")?)?,
            computed_at_ms: u64::from_value(field("computed_at_ms")?)?,
        })
    }
}

impl DseEntry {
    /// Adopts a freshly computed sweep entry, timestamping it now. This is
    /// *the* conversion every execution path — the local driver, the serve
    /// daemon's `Explore` stream, the fleet's workers — must share, so a
    /// future `DseEntry` field or timestamping change can never make one
    /// path silently diverge from the others.
    #[must_use]
    pub fn from_sweep(entry: SweepEntry) -> Self {
        Self {
            kind: entry.kind,
            width: entry.width,
            pruning: entry.pruning,
            arch: entry.arch,
            result: entry.result,
            computed_at_ms: unix_time_ms(),
        }
    }

    /// The point this entry answers.
    #[must_use]
    pub fn point(&self) -> DsePoint {
        DsePoint { kind: self.kind, width: self.width, pruning: self.pruning, arch: self.arch }
    }

    fn key(&self) -> PointKey {
        point_key(self.kind, self.width, self.pruning, &self.arch)
    }

    /// The opaque hashable identity of the entry's point (see
    /// [`DsePointKey`]).
    #[must_use]
    pub fn canonical_key(&self) -> DsePointKey {
        DsePointKey(self.key())
    }

    /// The entry's position in the DSE objective space for one sparsity
    /// configuration, or `None` when that configuration was not simulated.
    #[must_use]
    pub fn metrics(&self, sparsity: SparsityConfig, area: &AreaModel) -> Option<ParetoMetrics> {
        let run = self.result.run(sparsity)?;
        Some(ParetoMetrics {
            latency_ms: run.latency_ms(),
            energy_uj: run.total_energy_uj(),
            area_mm2: area.total_mm2(&self.arch),
            fidelity_loss: self.result.fidelity.as_ref().map_or(1.0, |f| 1.0 - f.top1_agreement),
        })
    }
}

/// The persisted outcome of a design-space exploration.
///
/// Reports serialize through the vendored `serde_json`; [`DseDriver`] saves
/// a snapshot after every batch, so a killed run resumes from disk by
/// computing only the missing points. Entries are kept in the spec's
/// canonical point order regardless of the order resumes filled them in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// The spec the report answers. Resuming against a different spec is a
    /// structured error, never a silent partial reuse.
    pub spec: DseSpec,
    /// One entry per completed (model, width, geometry) point, in canonical
    /// spec order.
    pub entries: Vec<DseEntry>,
    /// Total points the spec enumerates; `entries.len() == total_points`
    /// once the exploration is complete.
    pub total_points: usize,
    /// Points computed (not served from the snapshot) by the most recent
    /// driver run that produced this report.
    pub fresh_points: usize,
    /// Cumulative wall-clock time across the run and every resume.
    pub wall_time: Duration,
    /// Unix-epoch milliseconds of the last snapshot save. Ignored by
    /// [`results_match`](Self::results_match).
    pub saved_at_ms: u64,
}

impl DseReport {
    /// An empty report for `spec`.
    #[must_use]
    pub fn empty(spec: DseSpec, total_points: usize) -> Self {
        Self {
            spec,
            entries: Vec::new(),
            total_points,
            fresh_points: 0,
            wall_time: Duration::ZERO,
            saved_at_ms: 0,
        }
    }

    /// `true` when every point of the spec has an entry.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.entries.len() == self.total_points
    }

    /// The entry answering `point`, if computed.
    #[must_use]
    pub fn entry(&self, point: &DsePoint) -> Option<&DseEntry> {
        self.entries.iter().find(|e| {
            e.kind == point.kind
                && e.width == point.width
                && e.pruning == point.pruning
                && e.arch == point.arch
        })
    }

    /// The canonical rank of every possible point of the spec: model
    /// (first-seen in the spec), then width (narrow to wide, over *all*
    /// widths so the ranking never depends on the session width), then
    /// pruning (the spec's request order, with the identity spec appended
    /// when absent so default-session entries always rank), then geometry
    /// (grid enumeration order). Built once and used for hashed lookups —
    /// entry ordering must never cost a linear `ArchConfig` scan per
    /// element.
    fn canonical_rank(&self) -> HashMap<PointKey, usize> {
        let archs = self.spec.grid.enumerate().unwrap_or_default();
        let mut prunings: Vec<PruningSpec> = Vec::new();
        for &spec in &self.spec.pruning {
            if !prunings.contains(&spec) {
                prunings.push(spec);
            }
        }
        if !prunings.contains(&PruningSpec::none()) {
            prunings.push(PruningSpec::none());
        }
        let mut rank = HashMap::new();
        let mut next = 0usize;
        for kind in self.spec.unique_models() {
            for width in OperandWidth::all() {
                for &pruning in &prunings {
                    for arch in &archs {
                        rank.insert(point_key(kind, width, pruning, arch), next);
                        next += 1;
                    }
                }
            }
        }
        rank
    }

    fn sort_by_rank(entries: &mut [DseEntry], rank: &HashMap<PointKey, usize>) {
        // Stable sort: unknown keys go last, preserving their relative
        // order.
        entries.sort_by_cached_key(|e| rank.get(&e.key()).copied().unwrap_or(usize::MAX));
    }

    /// Sorts the entries into canonical spec order: model (first-seen in the
    /// spec), then width (narrow to wide), then geometry (grid enumeration
    /// order). Unknown keys sort last, preserving their relative order.
    pub fn sort_canonical(&mut self) {
        let rank = self.canonical_rank();
        Self::sort_by_rank(&mut self.entries, &rank);
    }

    /// `true` when both reports answer the same spec with identical results
    /// at every point. Timestamps (`computed_at_ms`, `saved_at_ms`), the
    /// wall time and the fresh-point counter are ignored — a resumed run
    /// must compare equal to a cold one.
    #[must_use]
    pub fn results_match(&self, other: &DseReport) -> bool {
        if self.spec != other.spec || self.entries.len() != other.entries.len() {
            return false;
        }
        let mut a = self.clone();
        let mut b = other.clone();
        a.sort_canonical();
        b.sort_canonical();
        a.entries.iter().zip(b.entries.iter()).all(|(x, y)| {
            x.kind == y.kind
                && x.width == y.width
                && x.pruning == y.pruning
                && x.arch == y.arch
                && x.result == y.result
        })
    }

    /// Merges another report for the *same spec* into this one: entries of
    /// `other` whose point is already present are dropped (first report
    /// wins — deterministic under the bit-identical execution the driver
    /// guarantees), the rest are adopted and the result re-sorted into
    /// canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] when the specs differ.
    pub fn merge(mut self, other: DseReport) -> Result<DseReport, PipelineError> {
        if self.spec != other.spec {
            return Err(PipelineError::BadConfig {
                reason: "cannot merge DSE reports answering different specs".to_string(),
            });
        }
        let mut have: HashSet<PointKey> = self.entries.iter().map(DseEntry::key).collect();
        for entry in other.entries {
            if have.insert(entry.key()) {
                self.entries.push(entry);
            }
        }
        self.wall_time = self.wall_time.max(other.wall_time);
        self.saved_at_ms = self.saved_at_ms.max(other.saved_at_ms);
        self.fresh_points = self.fresh_points.min(self.entries.len());
        self.sort_canonical();
        Ok(self)
    }

    /// The Pareto frontier over (latency, energy, area, fidelity) across
    /// every entry of `kind` — all widths and geometries — under one
    /// sparsity configuration. Returns `(entry index, metrics)` pairs in
    /// entry order; entries without a run for `sparsity` are excluded.
    ///
    /// All four axes are minimized; fidelity is `1 - top1_agreement` with
    /// unevaluated points at the conservative maximum (see
    /// [`ParetoMetrics`]).
    #[must_use]
    pub fn pareto_frontier(
        &self,
        kind: ModelKind,
        sparsity: SparsityConfig,
    ) -> Vec<(usize, ParetoMetrics)> {
        let area = AreaModel::calibrated_28nm();
        let candidates: Vec<(usize, ParetoMetrics)> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == kind)
            .filter_map(|(i, e)| e.metrics(sparsity, &area).map(|m| (i, m)))
            .collect();
        let metrics: Vec<ParetoMetrics> = candidates.iter().map(|(_, m)| *m).collect();
        pareto_frontier(&metrics).into_iter().map(|i| candidates[i]).collect()
    }

    /// The objective-space position of every (width, geometry) pair under a
    /// *workload mix*: the report's entries for all mix models at that pair,
    /// aggregated as if the mix ran back-to-back on one chip. Latency and
    /// energy are weight-scaled sums (weight = how often the model appears
    /// in the mix), area is the geometry's (it is shared), and fidelity
    /// loss is the weighted mean. Pairs missing an entry for any mix model
    /// — or any run for `sparsity` — are excluded rather than filled with
    /// guesses; mix members with non-positive or non-finite weights are
    /// ignored, and an effectively empty mix aggregates nothing.
    ///
    /// Candidates are returned in first-seen entry order, which is grid
    /// enumeration order on a canonically sorted report.
    #[must_use]
    pub fn aggregate_metrics(
        &self,
        mix: &[(ModelKind, f64)],
        sparsity: SparsityConfig,
    ) -> Vec<MixCandidate> {
        let area = AreaModel::calibrated_28nm();
        let mix: Vec<(ModelKind, f64)> =
            mix.iter().filter(|(_, weight)| weight.is_finite() && *weight > 0.0).copied().collect();
        if mix.is_empty() {
            return Vec::new();
        }
        // Hashed entry lookup (linear ArchConfig scans per candidate would
        // be quadratic in the grid size).
        let by_key: HashMap<PointKey, &DseEntry> =
            self.entries.iter().map(|e| (e.key(), e)).collect();
        let mut seen: HashSet<(u32, (u8, u64), [u64; 12])> = HashSet::new();
        let mut candidates = Vec::new();
        for entry in &self.entries {
            let (_, width_bits, prune_bits, arch_bits) = entry.key();
            if !seen.insert((width_bits, prune_bits, arch_bits)) {
                continue;
            }
            let mut metrics = ParetoMetrics {
                latency_ms: 0.0,
                energy_uj: 0.0,
                area_mm2: area.total_mm2(&entry.arch),
                fidelity_loss: 0.0,
            };
            let mut total_weight = 0.0;
            let mut complete = true;
            for &(kind, weight) in &mix {
                let Some(member) =
                    by_key.get(&point_key(kind, entry.width, entry.pruning, &entry.arch))
                else {
                    complete = false;
                    break;
                };
                let Some(m) = member.metrics(sparsity, &area) else {
                    complete = false;
                    break;
                };
                metrics.latency_ms += weight * m.latency_ms;
                metrics.energy_uj += weight * m.energy_uj;
                metrics.fidelity_loss += weight * m.fidelity_loss;
                total_weight += weight;
            }
            if complete {
                metrics.fidelity_loss /= total_weight;
                candidates.push(MixCandidate {
                    width: entry.width,
                    pruning: entry.pruning,
                    arch: entry.arch,
                    metrics,
                });
            }
        }
        candidates
    }

    /// The Pareto frontier of [`aggregate_metrics`](Self::aggregate_metrics):
    /// the non-dominated (width, geometry) pairs for a workload mix —
    /// "which chip should serve this traffic blend", rather than the
    /// per-model frontier [`pareto_frontier`](Self::pareto_frontier)
    /// answers. Verified against a brute-force reference in
    /// `tests/dse_exploration.rs`.
    #[must_use]
    pub fn aggregate_pareto_frontier(
        &self,
        mix: &[(ModelKind, f64)],
        sparsity: SparsityConfig,
    ) -> Vec<MixCandidate> {
        let candidates = self.aggregate_metrics(mix, sparsity);
        let metrics: Vec<ParetoMetrics> = candidates.iter().map(|c| c.metrics).collect();
        pareto_frontier(&metrics).into_iter().map(|i| candidates[i]).collect()
    }

    /// Persists the report as JSON at `path` (atomically: written to a
    /// sibling temp file, then renamed, so a kill mid-save never leaves a
    /// torn snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] when serialization or the write
    /// fails (the path is included in the message).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PipelineError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot serialize DSE report: {e}"),
        })?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot write DSE snapshot to {}: {e}", tmp.display()),
        })?;
        std::fs::rename(&tmp, path).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot move DSE snapshot into {}: {e}", path.display()),
        })
    }

    /// Loads a report previously persisted with [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] when the file cannot be read or
    /// does not parse as a DSE report.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PipelineError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot read DSE snapshot from {}: {e}", path.display()),
        })?;
        serde_json::from_str(&json).map_err(|e| PipelineError::BadConfig {
            reason: format!("malformed DSE snapshot in {}: {e}", path.display()),
        })
    }
}

/// One aggregated (width, pruning, geometry) candidate of a workload mix
/// (see [`DseReport::aggregate_metrics`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixCandidate {
    /// The operand width of every aggregated entry.
    pub width: OperandWidth,
    /// The value-level pruning of every aggregated entry.
    pub pruning: PruningSpec,
    /// The shared geometry.
    pub arch: ArchConfig,
    /// The mix-aggregated objective values (latency/energy weight-summed,
    /// area shared, fidelity loss weight-averaged).
    pub metrics: ParetoMetrics,
}

/// Executes [`DseSpec`]s against a warm [`BatchRunner`] cache, persisting a
/// resumable [`DseReport`] snapshot after every batch.
///
/// The driver's contract, asserted by `tests/dse_exploration.rs`:
///
/// * every entry is bit-identical to an independent per-point
///   [`Pipeline`](crate::Pipeline) run at that geometry;
/// * resuming from a snapshot recomputes only the missing points (the
///   expensive model-side artifacts are reused through the session cache,
///   and present entries are adopted verbatim, timestamps included);
/// * execution order (batching, parallelism) never changes results — the
///   report is sorted into canonical point order before every save.
#[derive(Debug)]
pub struct DseDriver {
    runner: Arc<BatchRunner>,
    snapshot: Option<PathBuf>,
    threads: usize,
    batch_size: usize,
    point_limit: Option<usize>,
}

impl DseDriver {
    /// Creates a driver with a fresh session for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable configurations.
    pub fn new(config: PipelineConfig) -> Result<Self, PipelineError> {
        Ok(Self::from_runner(Arc::new(BatchRunner::new(config)?)))
    }

    /// Wraps an existing (possibly shared, already warm) runner.
    #[must_use]
    pub fn from_runner(runner: Arc<BatchRunner>) -> Self {
        Self {
            runner,
            snapshot: None,
            threads: par::default_parallelism(),
            batch_size: 8,
            point_limit: None,
        }
    }

    /// Persists and resumes from a snapshot at `path`.
    #[must_use]
    pub fn with_snapshot(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot = Some(path.into());
        self
    }

    /// Overrides the worker-thread count (`1` forces sequential execution).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Points computed between snapshot saves (default 8). Smaller batches
    /// lose less work to a kill; larger ones amortize the save.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Computes at most `limit` missing points this run, leaving the report
    /// incomplete but resumable — useful for time-boxed shards and the CI
    /// resume smoke test.
    #[must_use]
    pub fn with_point_limit(mut self, limit: usize) -> Self {
        self.point_limit = Some(limit);
        self
    }

    /// The underlying runner (shared warm artifact caches).
    #[must_use]
    pub fn runner(&self) -> &BatchRunner {
        &self.runner
    }

    /// Aggregated cache counters of the underlying sessions.
    #[must_use]
    pub fn cache_stats(&self) -> SessionCacheStats {
        self.runner.cache_stats()
    }

    /// Runs (or resumes) the exploration described by `spec`.
    ///
    /// Missing points execute in parallel batches; after every batch the
    /// report is snapshotted (when a snapshot path is configured), so a
    /// killed run loses at most one batch. A failing point still persists
    /// the batch's successful siblings before the error propagates.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for oversized / infeasible grids
    /// and for a snapshot recorded under a different spec; propagates the
    /// first point failure otherwise.
    pub fn run(&self, spec: &DseSpec) -> Result<DseReport, PipelineError> {
        let session_width = self.runner.session().config().operand_width;
        let session_pruning = self.runner.session().config().pruning;
        let points = spec.points(session_width, session_pruning)?;
        let _span = dbpim_trace::span!("dse.run", points = points.len());
        let sparsity = spec.unique_sparsity();
        let start = Instant::now();

        let mut report = self.load_or_new(spec, points.len())?;
        let prior_wall = report.wall_time;
        report.fresh_points = 0;

        // Hashed point bookkeeping, built once per run: the largest legal
        // spec has tens of thousands of points, and linear `ArchConfig`
        // scans per point (or per sort key) would dwarf the simulations.
        let rank = report.canonical_rank();
        let have: HashSet<PointKey> = report.entries.iter().map(DseEntry::key).collect();
        let mut missing: Vec<DsePoint> =
            points.iter().filter(|p| !have.contains(&p.key())).copied().collect();
        if let Some(limit) = self.point_limit {
            missing.truncate(limit);
        }

        for batch in missing.chunks(self.batch_size) {
            let _batch_span = dbpim_trace::span!("dse.batch", points = batch.len());
            let computed = par::par_map(batch.to_vec(), self.threads, |point| {
                let _span = dbpim_trace::span!(
                    "dse.point",
                    model = point.kind.name(),
                    width = point.width.bits(),
                    macros = point.arch.macros,
                    rows = point.arch.rows_per_dbmu,
                );
                self.runner
                    .run_point_pruned(
                        point.kind,
                        point.width,
                        point.pruning,
                        Some(point.arch),
                        &sparsity,
                        spec.fidelity,
                    )
                    .map(DseEntry::from_sweep)
            });
            let mut failure = None;
            for result in computed {
                match result {
                    Ok(entry) => {
                        report.entries.push(entry);
                        report.fresh_points += 1;
                    }
                    Err(e) => failure = failure.or(Some(e)),
                }
            }
            DseReport::sort_by_rank(&mut report.entries, &rank);
            report.wall_time = prior_wall + start.elapsed();
            self.persist(&mut report)?;
            if let Some(e) = failure {
                return Err(e);
            }
        }

        report.wall_time = prior_wall + start.elapsed();
        if missing.is_empty() {
            // A fully-cached resume still refreshes the snapshot metadata.
            self.persist(&mut report)?;
        }
        Ok(report)
    }

    fn load_or_new(&self, spec: &DseSpec, total_points: usize) -> Result<DseReport, PipelineError> {
        let Some(path) = &self.snapshot else {
            return Ok(DseReport::empty(spec.clone(), total_points));
        };
        if !path.exists() {
            return Ok(DseReport::empty(spec.clone(), total_points));
        }
        let loaded = DseReport::load(path)?;
        if loaded.spec != *spec {
            return Err(PipelineError::BadConfig {
                reason: format!(
                    "DSE snapshot {} was recorded for a different spec; refusing to resume",
                    path.display()
                ),
            });
        }
        Ok(DseReport { total_points, ..loaded })
    }

    fn persist(&self, report: &mut DseReport) -> Result<(), PipelineError> {
        if let Some(path) = &self.snapshot {
            report.saved_at_ms = unix_time_ms();
            report.save(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ArchGrid {
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]).with_rows(vec![32, 64])
    }

    #[test]
    fn spec_points_follow_canonical_order() {
        let spec = DseSpec::new(grid(), vec![ModelKind::Vgg19, ModelKind::AlexNet])
            .with_widths(vec![OperandWidth::Int8, OperandWidth::Int4]);
        let points = spec.points(OperandWidth::Int8, PruningSpec::none()).unwrap();
        assert_eq!(points.len(), 2 * 2 * 4);
        // Model outermost, widths canonical narrow-to-wide, archs in grid
        // enumeration order.
        assert_eq!(points[0].kind, ModelKind::Vgg19);
        assert_eq!(points[0].width, OperandWidth::Int4);
        assert_eq!((points[0].arch.macros, points[0].arch.rows_per_dbmu), (2, 32));
        assert_eq!((points[3].arch.macros, points[3].arch.rows_per_dbmu), (4, 64));
        assert_eq!(points[4].width, OperandWidth::Int8);
        assert_eq!(points[8].kind, ModelKind::AlexNet);
    }

    #[test]
    fn spec_with_infeasible_grid_is_a_structured_error() {
        let spec = DseSpec::new(
            ArchGrid::around(ArchConfig::paper()).with_macros(vec![0]),
            vec![ModelKind::AlexNet],
        );
        let err = spec.points(OperandWidth::Int8, PruningSpec::none()).unwrap_err();
        assert!(err.to_string().contains("infeasible"), "{err}");
    }

    #[test]
    fn report_merge_requires_matching_specs() {
        let spec_a = DseSpec::new(grid(), vec![ModelKind::AlexNet]);
        let spec_b = DseSpec::new(grid(), vec![ModelKind::Vgg19]);
        let a = DseReport::empty(spec_a.clone(), 4);
        let b = DseReport::empty(spec_b, 4);
        assert!(a.clone().merge(b).is_err());
        let merged = a.clone().merge(DseReport::empty(spec_a, 4)).unwrap();
        assert!(merged.entries.is_empty());
        assert!(!merged.is_complete());
    }

    #[test]
    fn unix_time_is_monotone_enough_for_snapshots() {
        let a = unix_time_ms();
        let b = unix_time_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000, "clock reads as a plausible current date");
    }
}
