//! Error type for the end-to-end co-design pipeline.

use std::error::Error;
use std::fmt;

use dbpim_arch::ArchError;
use dbpim_compiler::CompileError;
use dbpim_fta::FtaError;
use dbpim_nn::NnError;
use dbpim_sim::SimError;
use dbpim_tensor::TensorError;

/// Errors produced by the end-to-end DB-PIM pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Tensor substrate failure.
    Tensor(TensorError),
    /// An architecture geometry failed validation (zero parameters, buffers
    /// too small for a single tile, ...).
    Arch(ArchError),
    /// Model graph or inference failure.
    Nn(NnError),
    /// FTA approximation failure.
    Fta(FtaError),
    /// Compilation failure.
    Compile(CompileError),
    /// Simulation failure.
    Sim(SimError),
    /// Invalid pipeline configuration.
    BadConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Tensor(e) => write!(f, "tensor error: {e}"),
            PipelineError::Arch(e) => write!(f, "architecture error: {e}"),
            PipelineError::Nn(e) => write!(f, "model error: {e}"),
            PipelineError::Fta(e) => write!(f, "fta error: {e}"),
            PipelineError::Compile(e) => write!(f, "compile error: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation error: {e}"),
            PipelineError::BadConfig { reason } => {
                write!(f, "invalid pipeline configuration: {reason}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Tensor(e) => Some(e),
            PipelineError::Arch(e) => Some(e),
            PipelineError::Nn(e) => Some(e),
            PipelineError::Fta(e) => Some(e),
            PipelineError::Compile(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
            PipelineError::BadConfig { .. } => None,
        }
    }
}

impl From<TensorError> for PipelineError {
    fn from(e: TensorError) -> Self {
        PipelineError::Tensor(e)
    }
}

impl From<ArchError> for PipelineError {
    fn from(e: ArchError) -> Self {
        PipelineError::Arch(e)
    }
}

impl From<NnError> for PipelineError {
    fn from(e: NnError) -> Self {
        PipelineError::Nn(e)
    }
}

impl From<FtaError> for PipelineError {
    fn from(e: FtaError) -> Self {
        PipelineError::Fta(e)
    }
}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PipelineError = TensorError::EmptyShape.into();
        assert!(e.to_string().contains("tensor"));
        let e: PipelineError =
            ArchError::CapacityExceeded { resource: "macros", requested: 1, available: 0 }.into();
        assert!(e.to_string().contains("architecture"));
        let e: PipelineError = NnError::EmptyGraph.into();
        assert!(e.to_string().contains("model"));
        let e: PipelineError = FtaError::InvalidThreshold { threshold: 3 }.into();
        assert!(e.to_string().contains("fta"));
        let e = PipelineError::BadConfig { reason: "zero images".to_string() };
        assert!(e.to_string().contains("zero images"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
