//! # DB-PIM: exploiting unstructured bit-level sparsity in digital SRAM-PIM
//!
//! A production-quality Rust reproduction of *"Towards Efficient SRAM-PIM
//! Architecture Design by Exploiting Unstructured Bit-Level Sparsity"*
//! (Duan et al., DAC 2024). The workspace implements both halves of the
//! paper's algorithm/architecture co-design:
//!
//! * **Algorithm** — CSD encoding, the dyadic-block sparsity pattern and the
//!   Fixed Threshold Approximation (FTA) algorithm
//!   ([`dbpim_csd`], [`dbpim_fta`]).
//! * **Architecture** — the customized PIM macro with dyadic-block multiply
//!   units, CSD-based adder trees, post-processing units and the input
//!   pre-processing unit ([`dbpim_arch`]), plus the dense digital-PIM
//!   baseline.
//! * **System** — an INT8 CIFAR-100 model zoo ([`dbpim_nn`]), a dataflow
//!   compiler ([`dbpim_compiler`]) and a cycle-accurate performance / energy
//!   / area simulator ([`dbpim_sim`]).
//!
//! This crate ties everything together into a single [`Pipeline`], and the
//! [`session`] module scales that flow up: a [`SimSession`] caches the
//! expensive per-model artifacts (quantization, FTA, compiled programs) so a
//! [`BatchRunner`] can sweep models × sparsity configurations ×
//! architectures in parallel and return structured [`SweepReport`]s.
//!
//! ```
//! use db_pim::prelude::*;
//!
//! let runner = BatchRunner::new(PipelineConfig::fast().without_fidelity())?;
//! let report = runner.run(&SweepSpec::new(vec![]))?;
//! assert!(report.is_empty());
//! # Ok::<(), db_pim::PipelineError>(())
//! ```
//!
//! Single-model usage:
//!
//! ```
//! use db_pim::prelude::*;
//!
//! let pipeline = Pipeline::new(PipelineConfig::fast().without_fidelity())?;
//! let result = pipeline.run_model(&zoo::tiny_cnn(10, 1)?)?;
//! let speedup = result.speedup(SparsityConfig::HybridSparsity);
//! assert!(speedup > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `examples/` directory contains runnable end-to-end scenarios and the
//! `dbpim-bench` crate regenerates every table and figure of the paper's
//! evaluation section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dse;
mod error;
pub mod measure;
mod pipeline;
pub mod prelude;
pub mod session;
pub mod stats;

pub use dse::{DseDriver, DseEntry, DsePoint, DsePointKey, DseReport, DseSpec, MixCandidate};
pub use error::PipelineError;
pub use pipeline::{CodesignResult, Pipeline, PipelineConfig};
pub use session::{
    BatchRunner, ModelArtifacts, ModelPrograms, SessionCacheStats, SimSession, SweepEntry,
    SweepReport, SweepSpec,
};
pub use stats::LatencyHistogram;

pub use dbpim_tensor::{PruningMode, PruningSpec};
