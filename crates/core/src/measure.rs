//! Input-feature bit-sparsity measurement.
//!
//! The IPU operates on the bit-serial form of the operand the macro actually
//! multiplies: `q_x - zero_point`, i.e. the unsigned offset representation of
//! the quantized activation. For post-ReLU feature maps this operand is rich
//! in all-zero bit columns (Fig. 2(b)); this module measures that ratio per
//! PIM layer by running the quantized model on sample images.

use dbpim_compiler::InputSparsityProfile;
use dbpim_nn::QuantizedModel;
use dbpim_tensor::stats::zero_bit_column_ratio;
use dbpim_tensor::Tensor;

use crate::error::PipelineError;

/// Group size the IPU inspects at once (one compartment row of features).
pub const IPU_GROUP: usize = 16;

/// Measures the block-wise zero bit-column ratio of every PIM layer's input
/// over a set of sample images.
///
/// # Errors
///
/// Propagates quantized-inference errors; an empty image list produces an
/// empty profile (no input sparsity assumed anywhere).
pub fn measure_input_sparsity(
    model: &QuantizedModel,
    images: &[Tensor<f32>],
) -> Result<InputSparsityProfile, PipelineError> {
    let mut profile = InputSparsityProfile::new();
    if images.is_empty() {
        return Ok(profile);
    }
    let pim_nodes = model.pim_node_ids();
    let mut sums = vec![0.0f64; pim_nodes.len()];
    for image in images {
        let outputs = model.forward_all(image)?;
        let q_input = model.input_qp().quantize_tensor(image);
        for (slot, &node_id) in pim_nodes.iter().enumerate() {
            let node = &model.nodes()[node_id];
            let (tensor, zero_point) = if node.inputs.is_empty() {
                (&q_input, model.input_qp().zero_point())
            } else {
                let producer = node.inputs[0];
                (&outputs[producer], model.nodes()[producer].output_qp.zero_point())
            };
            let operand: Vec<i8> =
                tensor.data().iter().map(|&v| (i32::from(v) - zero_point) as u8 as i8).collect();
            sums[slot] += zero_bit_column_ratio(&operand, IPU_GROUP);
        }
    }
    for (slot, &node_id) in pim_nodes.iter().enumerate() {
        profile.set(node_id, sums[slot] / images.len() as f64);
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_nn::zoo;
    use dbpim_tensor::random::TensorGenerator;

    #[test]
    fn profile_covers_every_pim_layer() {
        let model = zoo::tiny_cnn(10, 31).unwrap();
        let mut gen = TensorGenerator::new(32);
        let (images, _) = gen.labelled_batch(3, 3, 32, 32, 10).unwrap();
        let quantized = QuantizedModel::quantize(&model, &images[..2]).unwrap();
        let profile = measure_input_sparsity(&quantized, &images).unwrap();
        assert_eq!(profile.len(), quantized.pim_node_ids().len());
        for id in quantized.pim_node_ids() {
            let ratio = profile.ratio(id);
            assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} for node {id}");
        }
        // Post-ReLU layers should expose a meaningful amount of block-wise
        // zero bit columns (Fig. 2(b): tens of percent).
        assert!(profile.mean_ratio() > 0.1, "mean ratio {}", profile.mean_ratio());
    }

    #[test]
    fn empty_image_list_gives_empty_profile() {
        let model = zoo::tiny_cnn(10, 33).unwrap();
        let mut gen = TensorGenerator::new(34);
        let (images, _) = gen.labelled_batch(1, 3, 32, 32, 10).unwrap();
        let quantized = QuantizedModel::quantize(&model, &images).unwrap();
        let profile = measure_input_sparsity(&quantized, &[]).unwrap();
        assert!(profile.is_empty());
    }
}
