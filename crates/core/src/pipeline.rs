//! The end-to-end DB-PIM co-design pipeline.
//!
//! `model → INT8 quantization → FTA approximation → dataflow compilation →
//! cycle-accurate simulation` — the complete flow of Fig. 3, producing every
//! quantity the paper's evaluation section reports for a single model:
//! accuracy fidelity (Table 2), sparsity/utilization statistics (Fig. 2(a),
//! Table 3) and the four-configuration performance/energy comparison
//! (Fig. 7).

use dbpim_arch::ArchConfig;
use dbpim_compiler::InputSparsityProfile;
use dbpim_csd::OperandWidth;
use dbpim_fta::stats::ModelFtaStats;
use dbpim_fta::FidelityReport;
use dbpim_nn::{Model, ModelKind, ModelSummary};
use dbpim_sim::{RunReport, SparsityConfig};
use dbpim_tensor::PruningSpec;
use serde::{Deserialize, Serialize};

use crate::error::PipelineError;
use crate::session::ModelArtifacts;

/// Configuration of the end-to-end pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of output classes (100 for the CIFAR-100 setting).
    pub classes: usize,
    /// Seed for synthetic weights, calibration and evaluation data.
    pub seed: u64,
    /// Width multiplier applied when building zoo models (1.0 = full width).
    pub width_mult: f32,
    /// Calibration images used for quantization and input-sparsity
    /// measurement.
    pub calibration_images: usize,
    /// Labelled images used for the fidelity (Table 2) evaluation; `0` skips
    /// the fidelity step entirely (useful for performance-only experiments).
    pub evaluation_images: usize,
    /// Architecture geometry to compile for and simulate.
    pub arch: ArchConfig,
    /// Weight operand width the FTA/compile/simulate stages run at. The
    /// INT8 default reproduces the paper; other widths quantize the float
    /// weights per channel at that width and disable the (INT8-only)
    /// fidelity evaluation.
    pub operand_width: OperandWidth,
    /// Value-level magnitude pruning applied to the float weights before
    /// quantization. [`PruningSpec::none`] (the default presets) leaves the
    /// pipeline bit-identical to the unpruned flow; an active spec zeroes
    /// weights so value sparsity compounds with the bit-level sparsity the
    /// FTA/compiler/macro stages exploit.
    pub pruning: PruningSpec,
}

impl PipelineConfig {
    /// The paper's setting: CIFAR-100 classes, full-width models, the
    /// Section 4.1 architecture.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            classes: dbpim_nn::CIFAR100_CLASSES,
            seed: 42,
            width_mult: 1.0,
            calibration_images: 4,
            evaluation_images: 16,
            arch: ArchConfig::paper(),
            operand_width: OperandWidth::Int8,
            pruning: PruningSpec::none(),
        }
    }

    /// A reduced setting for fast tests and examples: width-0.25 models,
    /// fewer images.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            classes: 10,
            seed: 42,
            width_mult: 0.25,
            calibration_images: 2,
            evaluation_images: 6,
            arch: ArchConfig::paper(),
            operand_width: OperandWidth::Int8,
            pruning: PruningSpec::none(),
        }
    }

    /// Disables the fidelity evaluation (performance-only runs).
    #[must_use]
    pub fn without_fidelity(mut self) -> Self {
        self.evaluation_images = 0;
        self
    }

    /// Sets the weight operand width.
    #[must_use]
    pub fn with_operand_width(mut self, width: OperandWidth) -> Self {
        self.operand_width = width;
        self
    }

    /// Sets the value-level pruning specification (canonicalized, so every
    /// inactive spelling configures the identical pipeline).
    #[must_use]
    pub fn with_pruning(mut self, pruning: PruningSpec) -> Self {
        self.pruning = pruning.canonical();
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable settings.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.classes == 0 {
            return Err(PipelineError::BadConfig {
                reason: "classes must be non-zero".to_string(),
            });
        }
        if self.calibration_images == 0 {
            return Err(PipelineError::BadConfig {
                reason: "at least one calibration image is required".to_string(),
            });
        }
        if self.width_mult <= 0.0 {
            return Err(PipelineError::BadConfig {
                reason: "width multiplier must be positive".to_string(),
            });
        }
        self.pruning.validate().map_err(|reason| PipelineError::BadConfig { reason })?;
        self.arch.validate()?;
        Ok(())
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Everything the pipeline produces for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodesignResult {
    /// Name of the evaluated model.
    pub model_name: String,
    /// Parameter / MAC summary of the float model.
    pub summary: ModelSummary,
    /// FTA sparsity and utilization statistics (Fig. 2(a), Table 3).
    pub fta_stats: ModelFtaStats,
    /// Accuracy-fidelity report (Table 2 substitute); `None` when the
    /// fidelity evaluation was disabled.
    pub fidelity: Option<FidelityReport>,
    /// Measured block-wise input bit sparsity per PIM layer (Fig. 2(b)).
    pub input_sparsity: InputSparsityProfile,
    /// One simulation run per Fig. 7 configuration, in
    /// [`SparsityConfig::all`] order.
    pub runs: Vec<RunReport>,
}

impl CodesignResult {
    /// The run for a specific sparsity configuration.
    #[must_use]
    pub fn run(&self, sparsity: SparsityConfig) -> Option<&RunReport> {
        self.runs.iter().find(|r| r.sparsity == sparsity)
    }

    /// The dense-baseline run.
    ///
    /// # Panics
    ///
    /// Panics if the result was built without a baseline run (never produced
    /// by [`Pipeline::run_model`]).
    #[must_use]
    pub fn baseline(&self) -> &RunReport {
        self.run(SparsityConfig::DenseBaseline).expect("pipeline always simulates the baseline")
    }

    /// Speedup of a configuration over the dense baseline (Fig. 7(a)).
    #[must_use]
    pub fn speedup(&self, sparsity: SparsityConfig) -> f64 {
        self.run(sparsity).map_or(0.0, |r| r.speedup_over(self.baseline()))
    }

    /// Energy saving of a configuration over the dense baseline (Fig. 7(b)).
    #[must_use]
    pub fn energy_saving(&self, sparsity: SparsityConfig) -> f64 {
        self.run(sparsity).map_or(0.0, |r| r.energy_saving_over(self.baseline()))
    }

    /// Actual utilization `U_act` of the FTA-mapped weights (Table 3).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.fta_stats.utilization()
    }
}

/// The end-to-end co-design pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable settings.
    pub fn new(config: PipelineConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The pipeline's configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Builds a zoo model (honouring the configured width multiplier) and
    /// runs the full pipeline on it.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn run_kind(&self, kind: ModelKind) -> Result<CodesignResult, PipelineError> {
        let model =
            kind.build_with_width(self.config.classes, self.config.seed, self.config.width_mult)?;
        self.run_model(&model)
    }

    /// Runs the full pipeline on an already-built model.
    ///
    /// This is a thin wrapper over the [`session`](crate::session) layer:
    /// artifacts are prepared once and all four Fig. 7 configurations are
    /// simulated from the same compiled programs.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn run_model(&self, model: &Model) -> Result<CodesignResult, PipelineError> {
        let artifacts = ModelArtifacts::prepare(&self.config, model)?;
        artifacts.codesign_result(&SparsityConfig::all(), self.config.evaluation_images > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_nn::zoo;

    #[test]
    fn config_validation() {
        assert!(PipelineConfig::paper().validate().is_ok());
        assert!(PipelineConfig::fast().validate().is_ok());
        let mut bad = PipelineConfig::fast();
        bad.classes = 0;
        assert!(bad.validate().is_err());
        let mut bad = PipelineConfig::fast();
        bad.calibration_images = 0;
        assert!(bad.validate().is_err());
        let mut bad = PipelineConfig::fast();
        bad.width_mult = 0.0;
        assert!(Pipeline::new(bad).is_err());
        // Invalid geometries are caught at configuration time, not deep in
        // the compiler.
        let mut bad = PipelineConfig::fast();
        bad.arch.macros = 0;
        assert!(matches!(bad.validate(), Err(PipelineError::Arch(_))));
        let mut bad = PipelineConfig::fast();
        bad.arch.weight_buffer_bytes = 1;
        assert!(Pipeline::new(bad).is_err());
        assert_eq!(PipelineConfig::default(), PipelineConfig::paper());
        assert_eq!(PipelineConfig::fast().without_fidelity().evaluation_images, 0);
    }

    #[test]
    fn tiny_cnn_end_to_end() {
        let mut config = PipelineConfig::fast();
        config.evaluation_images = 4;
        let pipeline = Pipeline::new(config).unwrap();
        let model = zoo::tiny_cnn(10, 7).unwrap();
        let result = pipeline.run_model(&model).unwrap();

        assert_eq!(result.runs.len(), 4);
        assert_eq!(result.model_name, "tiny_cnn");
        assert!(result.utilization() > 0.5 && result.utilization() <= 1.0);
        let fidelity = result.fidelity.expect("fidelity requested");
        assert!(fidelity.top1_agreement >= 0.5);

        let hybrid = result.speedup(SparsityConfig::HybridSparsity);
        let weight = result.speedup(SparsityConfig::WeightSparsity);
        let input = result.speedup(SparsityConfig::InputSparsity);
        assert!(weight > 1.0, "weight speedup {weight}");
        assert!(input > 1.0, "input speedup {input}");
        assert!(hybrid >= weight, "hybrid {hybrid} vs weight {weight}");
        assert!(result.energy_saving(SparsityConfig::HybridSparsity) > 0.2);
        assert!(result.run(SparsityConfig::DenseBaseline).is_some());
        assert_eq!(result.speedup(SparsityConfig::DenseBaseline), 1.0);
    }

    #[test]
    fn fidelity_can_be_skipped() {
        let config = PipelineConfig::fast().without_fidelity();
        let pipeline = Pipeline::new(config).unwrap();
        let model = zoo::tiny_cnn(10, 9).unwrap();
        let result = pipeline.run_model(&model).unwrap();
        assert!(result.fidelity.is_none());
        assert_eq!(result.runs.len(), 4);
    }
}
