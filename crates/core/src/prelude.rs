//! Convenience re-exports of the most frequently used items across the
//! DB-PIM workspace.
//!
//! ```
//! use db_pim::prelude::*;
//!
//! let pipeline = Pipeline::new(PipelineConfig::fast())?;
//! # let _ = pipeline;
//! # Ok::<(), db_pim::PipelineError>(())
//! ```

pub use crate::dse::{
    DseDriver, DseEntry, DsePoint, DsePointKey, DseReport, DseSpec, MixCandidate,
};
pub use crate::error::PipelineError;
pub use crate::measure::measure_input_sparsity;
pub use crate::pipeline::{CodesignResult, Pipeline, PipelineConfig};
pub use crate::session::{
    BatchRunner, ModelArtifacts, ModelPrograms, SessionCacheStats, SimSession, SweepEntry,
    SweepReport, SweepSpec,
};
pub use crate::stats::LatencyHistogram;

pub use dbpim_arch::{ArchConfig, InputPreprocessor, PimMacro};
pub use dbpim_compiler::{
    extract_workloads, Compiler, InputSparsityProfile, MappingMode, ModelProgram,
};
pub use dbpim_csd::{CsdWord, DyadicBlock, OperandWidth, Sign};
pub use dbpim_fta::{evaluate_fidelity, FidelityReport, ModelApprox, QueryTables};
pub use dbpim_nn::{zoo, Model, ModelKind, QuantizedModel};
pub use dbpim_sim::{
    pareto_frontier, peak_throughput_per_macro_gops, peak_throughput_tops, ArchGrid, AreaModel,
    CostModel, GridError, ParetoMetrics, RunReport, SimConfig, Simulator, SparsityConfig,
    MAX_GRID_POINTS, PEAK_INPUT_SKIP,
};
pub use dbpim_tensor::{random::TensorGenerator, PruningMode, PruningSpec, Tensor};
