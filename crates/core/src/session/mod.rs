//! Simulation sessions and batched, parallel sweeps.
//!
//! Every experiment in the paper's evaluation section is a sweep: models ×
//! sparsity configurations (× architecture geometries). Before this module
//! existed, each experiment binary re-ran the full `model → quantize → FTA →
//! compile → simulate` pipeline per point, recomputing the expensive
//! model-side stages four times per model (once per Fig. 7 configuration).
//!
//! The session layer splits the pipeline at its natural seam:
//!
//! * [`ModelArtifacts`] — everything that depends only on the model and the
//!   [`PipelineConfig`]: the quantized model, its FTA approximation,
//!   sparsity statistics, the measured input-sparsity profile, and lazily
//!   compiled per-architecture dense/DB-PIM programs. Prepared **once**,
//!   simulated many times.
//! * [`SimSession`] — a cache of artifacts keyed by model, shared by every
//!   consumer (experiment binaries, examples, benches).
//! * [`BatchRunner`] — executes a [`SweepSpec`] (models × sparsity × arch ×
//!   operand width × pruning) in parallel over scoped std threads (see [`par`]; rayon
//!   is unavailable in the offline build environment) and returns a
//!   structured [`SweepReport`] that serializes and [`SweepReport::merge`]s
//!   for sharded sweeps.
//!
//! Results are bit-identical to independent [`Pipeline`](crate::Pipeline)
//! runs — [`Pipeline::run_model`](crate::Pipeline::run_model) itself is a
//! thin wrapper over [`ModelArtifacts`] — which the workspace test
//! `session_sweep.rs` asserts.

pub mod par;

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use dbpim_arch::ArchConfig;
use dbpim_compiler::{
    extract_workloads, extract_workloads_with_value_sparsity, Compiler, InputSparsityProfile,
    MappingMode, ModelProgram, ModelWorkloads,
};
use dbpim_csd::OperandWidth;
use dbpim_fta::stats::ModelFtaStats;
use dbpim_fta::{evaluate_fidelity, FidelityReport, ModelApprox};
use dbpim_nn::{Model, ModelKind, ModelSummary, QuantizedModel};
use dbpim_sim::{RunReport, SimConfig, Simulator, SparsityConfig};
use dbpim_tensor::random::TensorGenerator;
use dbpim_tensor::PruningSpec;
use serde::value::{get_field, type_error, Value};
use serde::{Deserialize, Error, Serialize};

use crate::error::PipelineError;
use crate::measure::measure_input_sparsity;
use crate::pipeline::{CodesignResult, PipelineConfig};

/// A snapshot of a cache's hit/miss counters.
///
/// "Artifacts" count [`ModelArtifacts`] preparations (the expensive
/// quantize → FTA → measure → extract stages); "programs" count per-geometry
/// compilations inside prepared artifacts. A *miss* is an actual build, so
/// `artifact_misses` equals the number of times the pipeline front end ran —
/// the serving layer asserts warm-cache behaviour against exactly these
/// numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionCacheStats {
    /// Artifact requests answered from cache.
    pub artifact_hits: u64,
    /// Artifact requests that had to prepare fresh artifacts.
    pub artifact_misses: u64,
    /// Program requests answered from a compiled-program cache.
    pub program_hits: u64,
    /// Program requests that had to compile.
    pub program_misses: u64,
    /// Prepared artifact sets currently resident in the cache.
    pub resident_artifacts: u64,
    /// Prepared artifact sets evicted by the LRU capacity cap (see
    /// [`SimSession::set_cache_capacity`]); `0` while the cache is
    /// unbounded.
    pub artifact_evictions: u64,
}

impl SessionCacheStats {
    /// Adds another snapshot's counters into this one (aggregation across
    /// the per-width sessions of a [`BatchRunner`]).
    pub fn absorb(&mut self, other: SessionCacheStats) {
        self.artifact_hits += other.artifact_hits;
        self.artifact_misses += other.artifact_misses;
        self.program_hits += other.program_hits;
        self.program_misses += other.program_misses;
        self.resident_artifacts += other.resident_artifacts;
        self.artifact_evictions += other.artifact_evictions;
    }

    /// Total requests observed (artifact and program layers combined).
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.artifact_hits + self.artifact_misses + self.program_hits + self.program_misses
    }
}

/// The dense-baseline and DB-PIM instruction streams of one model compiled
/// for one architecture geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPrograms {
    /// Geometry both programs were compiled for.
    pub arch: ArchConfig,
    /// The dense-baseline mapping.
    pub dense: ModelProgram,
    /// The DB-PIM (FTA weights + metadata) mapping.
    pub sparse: ModelProgram,
}

/// Everything the pipeline derives from one model under one
/// [`PipelineConfig`], shareable across simulation runs.
///
/// Preparation performs the expensive model-side stages exactly once:
/// synthetic calibration data, INT8 quantization, the FTA approximation,
/// sparsity statistics and input-sparsity measurement, plus workload
/// extraction. Compilation is per-architecture and cached on first use;
/// the fidelity evaluation is cached on first request.
#[derive(Debug)]
pub struct ModelArtifacts {
    config: PipelineConfig,
    model: Arc<Model>,
    summary: ModelSummary,
    quantized: QuantizedModel,
    approx: ModelApprox,
    fta_stats: ModelFtaStats,
    input_sparsity: InputSparsityProfile,
    /// Generator state right after the calibration draw; cloning it replays
    /// the exact evaluation batch [`crate::Pipeline::run_model`] would have
    /// drawn inline, keeping lazy fidelity bit-identical.
    eval_gen: TensorGenerator,
    sparse_workloads: ModelWorkloads,
    dense_workloads: ModelWorkloads,
    programs: Mutex<Vec<Arc<ModelPrograms>>>,
    fidelity: Mutex<Option<FidelityReport>>,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
}

impl ModelArtifacts {
    /// Runs the model-side pipeline stages for `model`.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage (data generation, quantization,
    /// approximation, measurement, workload extraction).
    pub fn prepare(config: &PipelineConfig, model: &Model) -> Result<Self, PipelineError> {
        Self::prepare_shared(config, Arc::new(model.clone()))
    }

    /// [`prepare`](Self::prepare) without cloning an already-shared model.
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn prepare_shared(
        config: &PipelineConfig,
        model: Arc<Model>,
    ) -> Result<Self, PipelineError> {
        let _span = dbpim_trace::span!(
            "pipeline.prepare",
            model = model.name(),
            width = config.operand_width.bits(),
        );
        config.validate()?;
        let summary = model.summary()?;

        // Value-level pruning happens here, before quantization, so every
        // downstream stage (quantizer, FTA, metadata, compiler, simulator)
        // sees the masked weights. The stored `model` stays the *unpruned*
        // original — cache identity in [`SimSession`] compares against the
        // model the caller handed in. An inactive spec takes the exact
        // historical path: no clone, no masking, bit-identical artifacts.
        let pruned_model;
        let work_model: &Model = if config.pruning.is_active() {
            pruned_model = model.pruned(config.pruning);
            &pruned_model
        } else {
            &model
        };

        // Synthetic calibration batch (same stream the Pipeline always used).
        let input_shape = model.input_shape();
        let (channels, height, width) = (input_shape[0], input_shape[1], input_shape[2]);
        let mut gen = TensorGenerator::new(config.seed ^ 0x5eed);
        let (calibration, _) =
            gen.labelled_batch(config.calibration_images, channels, height, width, config.classes)?;

        // Quantization and FTA approximation. Activations are always INT8;
        // the weight-side approximation runs at the configured operand
        // width. The INT8 path goes through the quantized model exactly as
        // the paper's pipeline always has, so its results stay bit-identical.
        let quantized = {
            let _span = dbpim_trace::span!("pipeline.quantize");
            QuantizedModel::quantize(work_model, &calibration)?
        };
        let approx = {
            let _span = dbpim_trace::span!("pipeline.fta");
            if config.operand_width == OperandWidth::Int8 {
                ModelApprox::from_quantized(&quantized)?
            } else {
                ModelApprox::from_model_wide(work_model, config.operand_width)?
            }
        };
        let fta_stats = ModelFtaStats::from_model(&approx);

        // The evaluation batch (fidelity) comes later and lazily; snapshot
        // the generator so the draw matches the historical inline one.
        let eval_gen = gen.clone();

        // Input bit sparsity (Fig. 2(b)) measured on the calibration batch,
        // then the hardware-facing workloads (dyadic-block metadata) for
        // both mappings.
        let _metadata_span = dbpim_trace::span!("pipeline.metadata");
        let input_sparsity = measure_input_sparsity(&quantized, &calibration)?;
        // Only the value-pruned flow records per-filter nonzero counts: the
        // counts let the compiler compact DB-PIM tiles, and the unpruned
        // flow must keep its historical tiling bit-for-bit (see
        // `extract_workloads_with_value_sparsity`). The dense baseline
        // always maps nominal filter lengths, so it never records counts.
        let sparse_workloads = if config.pruning.is_active() {
            extract_workloads_with_value_sparsity(work_model, Some(&approx), &input_sparsity)?
        } else {
            extract_workloads(work_model, Some(&approx), &input_sparsity)?
        };
        let dense_workloads = extract_workloads(work_model, None, &input_sparsity)?;
        drop(_metadata_span);

        Ok(Self {
            config: *config,
            model,
            summary,
            quantized,
            approx,
            fta_stats,
            input_sparsity,
            eval_gen,
            sparse_workloads,
            dense_workloads,
            programs: Mutex::new(Vec::new()),
            fidelity: Mutex::new(None),
            program_hits: AtomicU64::new(0),
            program_misses: AtomicU64::new(0),
        })
    }

    /// The configuration the artifacts were prepared under.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The source model.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Parameter / MAC summary of the float model.
    #[must_use]
    pub fn summary(&self) -> &ModelSummary {
        &self.summary
    }

    /// The INT8-quantized model.
    #[must_use]
    pub fn quantized(&self) -> &QuantizedModel {
        &self.quantized
    }

    /// The FTA approximation of every PIM layer.
    #[must_use]
    pub fn approx(&self) -> &ModelApprox {
        &self.approx
    }

    /// FTA sparsity and utilization statistics (Fig. 2(a), Table 3).
    #[must_use]
    pub fn fta_stats(&self) -> &ModelFtaStats {
        &self.fta_stats
    }

    /// Measured block-wise input bit sparsity per PIM layer (Fig. 2(b)).
    #[must_use]
    pub fn input_sparsity(&self) -> &InputSparsityProfile {
        &self.input_sparsity
    }

    /// The compiled dense + DB-PIM programs for `arch`, compiling (both
    /// mappings, exactly once per geometry) on first use.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    pub fn programs(&self, arch: ArchConfig) -> Result<Arc<ModelPrograms>, PipelineError> {
        let mut cache = self.programs.lock().expect("program cache lock");
        if let Some(found) = cache.iter().find(|p| p.arch == arch) {
            self.program_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.program_misses.fetch_add(1, Ordering::Relaxed);
        let _span = dbpim_trace::span!(
            "pipeline.compile",
            model = self.model.name(),
            macros = arch.macros,
            rows = arch.rows_per_dbmu,
        );
        let compiler = Compiler::with_width(arch, self.config.operand_width)?;
        let sparse = compiler.compile(&self.sparse_workloads, MappingMode::DbPim)?;
        let dense = compiler.compile(&self.dense_workloads, MappingMode::Dense)?;
        let programs = Arc::new(ModelPrograms { arch, dense, sparse });
        cache.push(Arc::clone(&programs));
        Ok(programs)
    }

    /// Simulates one sparsity configuration on one geometry, reusing the
    /// cached compiled programs.
    ///
    /// # Errors
    ///
    /// Propagates compilation or simulation failures.
    pub fn simulate(
        &self,
        arch: ArchConfig,
        sparsity: SparsityConfig,
    ) -> Result<RunReport, PipelineError> {
        let programs = self.programs(arch)?;
        let _span = dbpim_trace::span!(
            "pipeline.simulate",
            model = self.model.name(),
            sparsity = sparsity.label(),
        );
        let mut sim_config = SimConfig::new(sparsity);
        sim_config.arch = arch;
        let simulator = Simulator::new(sim_config)?;
        let program = if sparsity.weight_sparsity() { &programs.sparse } else { &programs.dense };
        Ok(simulator.simulate(program)?)
    }

    /// The fidelity report (Table 2 substitute), evaluated on first request
    /// and cached.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] when the configuration disables
    /// the fidelity evaluation (`evaluation_images == 0`) or runs at a
    /// non-INT8 operand width (the quantized executor is INT8-only), and
    /// propagates evaluation failures.
    pub fn fidelity(&self) -> Result<FidelityReport, PipelineError> {
        if self.config.evaluation_images == 0 {
            return Err(PipelineError::BadConfig {
                reason: "fidelity requested but evaluation_images is 0".to_string(),
            });
        }
        if self.config.operand_width != OperandWidth::Int8 {
            return Err(PipelineError::BadConfig {
                reason: format!(
                    "fidelity is only defined for the INT8 executor, not {}",
                    self.config.operand_width
                ),
            });
        }
        let mut cache = self.fidelity.lock().expect("fidelity cache lock");
        if let Some(report) = cache.as_ref() {
            return Ok(*report);
        }
        let _span = dbpim_trace::span!("pipeline.fidelity", model = self.model.name());
        let input_shape = self.model.input_shape();
        let mut gen = self.eval_gen.clone();
        let (eval_images, eval_labels) = gen.labelled_batch(
            self.config.evaluation_images,
            input_shape[0],
            input_shape[1],
            input_shape[2],
            self.config.classes,
        )?;
        let fta_model = self.approx.apply(&self.quantized)?;
        let report = evaluate_fidelity(&self.quantized, &fta_model, &eval_images, &eval_labels)?;
        *cache = Some(report);
        Ok(report)
    }

    /// Assembles the classic [`CodesignResult`] from the cached artifacts:
    /// one run per requested sparsity configuration (canonical
    /// [`SparsityConfig::all`] order) on the configured geometry.
    ///
    /// # Errors
    ///
    /// Propagates simulation or fidelity failures.
    pub fn codesign_result(
        &self,
        sparsity: &[SparsityConfig],
        with_fidelity: bool,
    ) -> Result<CodesignResult, PipelineError> {
        self.codesign_result_for_arch(self.config.arch, sparsity, with_fidelity)
    }

    /// [`codesign_result`](Self::codesign_result) on an explicit geometry
    /// instead of the configured one.
    ///
    /// # Errors
    ///
    /// Propagates simulation or fidelity failures.
    pub fn codesign_result_for_arch(
        &self,
        arch: ArchConfig,
        sparsity: &[SparsityConfig],
        with_fidelity: bool,
    ) -> Result<CodesignResult, PipelineError> {
        let fidelity = if with_fidelity
            && self.config.evaluation_images > 0
            && self.config.operand_width == OperandWidth::Int8
        {
            Some(self.fidelity()?)
        } else {
            None
        };
        let mut runs = Vec::with_capacity(sparsity.len());
        for config in SparsityConfig::all() {
            if sparsity.contains(&config) {
                runs.push(self.simulate(arch, config)?);
            }
        }
        Ok(CodesignResult {
            model_name: self.model.name().to_string(),
            summary: self.summary.clone(),
            fta_stats: self.fta_stats.clone(),
            fidelity,
            input_sparsity: self.input_sparsity.clone(),
            runs,
        })
    }
}

/// One artifact-cache slot: filled exactly once, concurrent requests for the
/// same model wait on the slot instead of duplicating the preparation. The
/// recency stamp orders filled slots for LRU eviction when a capacity cap is
/// configured.
#[derive(Debug, Default)]
struct ArtifactSlotEntry {
    cell: Mutex<Option<Arc<ModelArtifacts>>>,
    /// Logical time of the last hit or fill (from [`SimSession::clock`]);
    /// the smallest stamp among filled slots is the eviction victim.
    last_used: AtomicU64,
}

type ArtifactSlot = Arc<ArtifactSlotEntry>;

/// A shared cache of per-model pipeline artifacts under one configuration.
///
/// Sessions are cheap to create and thread-safe to share: artifact
/// preparation happens on first request per model and every later consumer
/// (another experiment table, another sparsity configuration, another
/// thread) reuses the cached value. Preparation is *single-flight*: N
/// concurrent requests for the same model perform exactly one build — the
/// others block on the model's cache slot and receive the shared artifacts —
/// while requests for different models proceed in parallel (the slot map
/// itself is behind a read-mostly [`RwLock`]). [`Self::cache_stats`]
/// snapshots the hit/miss counters, which the serving layer exposes over the
/// wire.
#[derive(Debug)]
pub struct SimSession {
    config: PipelineConfig,
    models: Mutex<HashMap<ModelKind, Arc<Model>>>,
    artifacts: RwLock<HashMap<String, ArtifactSlot>>,
    artifact_hits: AtomicU64,
    artifact_misses: AtomicU64,
    /// Maximum number of *filled* artifact slots kept resident;
    /// `usize::MAX` means unbounded (the historical behaviour).
    capacity: AtomicUsize,
    /// Logical clock stamping artifact hits/fills for LRU ordering.
    clock: AtomicU64,
    artifact_evictions: AtomicU64,
    /// Program counters of evicted artifact sets, folded in at eviction
    /// time so [`Self::cache_stats`] totals never decrease when a model
    /// leaves the cache.
    evicted_program_hits: AtomicU64,
    evicted_program_misses: AtomicU64,
}

impl SimSession {
    /// Creates a session.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable configurations.
    pub fn new(config: PipelineConfig) -> Result<Self, PipelineError> {
        config.validate()?;
        Ok(Self {
            config,
            models: Mutex::new(HashMap::new()),
            artifacts: RwLock::new(HashMap::new()),
            artifact_hits: AtomicU64::new(0),
            artifact_misses: AtomicU64::new(0),
            capacity: AtomicUsize::new(usize::MAX),
            clock: AtomicU64::new(0),
            artifact_evictions: AtomicU64::new(0),
            evicted_program_hits: AtomicU64::new(0),
            evicted_program_misses: AtomicU64::new(0),
        })
    }

    /// Caps the number of prepared artifact sets kept resident: once more
    /// than `cap` slots are filled, the least-recently-used one is evicted
    /// (and counted in [`SessionCacheStats::artifact_evictions`]). `None`
    /// removes the cap; a cap of `0` is clamped to `1` — a session that can
    /// cache nothing would silently degrade every request to a cold build.
    ///
    /// In-flight users of an evicted artifact set keep their `Arc` and are
    /// unaffected; the next request for that model simply rebuilds.
    pub fn set_cache_capacity(&self, cap: Option<usize>) {
        self.capacity.store(cap.map_or(usize::MAX, |c| c.max(1)), Ordering::Relaxed);
    }

    /// The configured artifact-cache capacity (`None` = unbounded).
    #[must_use]
    pub fn cache_capacity(&self) -> Option<usize> {
        match self.capacity.load(Ordering::Relaxed) {
            usize::MAX => None,
            cap => Some(cap),
        }
    }

    /// Stamps a slot as just-used for LRU ordering.
    fn touch(&self, slot: &ArtifactSlotEntry) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.last_used.store(now, Ordering::Relaxed);
    }

    /// Evicts least-recently-used filled slots until at most the configured
    /// capacity remain. `keep` names the slot that must survive (the one the
    /// caller just filled and still holds locked — its cell `try_lock` fails,
    /// so it is invisible to the candidate scan and exempted by name).
    fn enforce_capacity(&self, keep: &str) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == usize::MAX {
            return;
        }
        let mut cache = self.artifacts.write().expect("artifact cache lock");
        loop {
            // Filled slots other than `keep` that are not mid-preparation
            // (an un-lockable cell is either being filled or being read;
            // both make it a poor eviction victim right now). The victim's
            // artifacts are captured here so its program counters can be
            // folded into the session-level accumulators — evicting a model
            // must never make the cache statistics go backwards.
            let mut victim: Option<(String, u64, Arc<ModelArtifacts>)> = None;
            let mut filled_others = 0usize;
            for (name, slot) in cache.iter() {
                if name == keep {
                    continue;
                }
                let Ok(guard) = slot.cell.try_lock() else { continue };
                if let Some(artifacts) = guard.as_ref() {
                    filled_others += 1;
                    let stamp = slot.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(_, best, _)| stamp < *best) {
                        victim = Some((name.clone(), stamp, Arc::clone(artifacts)));
                    }
                }
            }
            // `keep` itself occupies one capacity unit.
            if filled_others < cap {
                return;
            }
            let Some((name, _, artifacts)) = victim else { return };
            cache.remove(&name);
            self.evicted_program_hits
                .fetch_add(artifacts.program_hits.load(Ordering::Relaxed), Ordering::Relaxed);
            self.evicted_program_misses
                .fetch_add(artifacts.program_misses.load(Ordering::Relaxed), Ordering::Relaxed);
            self.artifact_evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The built zoo model for `kind` (cached; honours the configured width
    /// multiplier, classes and seed).
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn model(&self, kind: ModelKind) -> Result<Arc<Model>, PipelineError> {
        if let Some(model) = self.models.lock().expect("model cache lock").get(&kind) {
            return Ok(Arc::clone(model));
        }
        let model = Arc::new(kind.build_with_width(
            self.config.classes,
            self.config.seed,
            self.config.width_mult,
        )?);
        Ok(Arc::clone(self.models.lock().expect("model cache lock").entry(kind).or_insert(model)))
    }

    /// The prepared artifacts for a zoo model (cached).
    ///
    /// # Errors
    ///
    /// Propagates preparation failures.
    pub fn artifacts(&self, kind: ModelKind) -> Result<Arc<ModelArtifacts>, PipelineError> {
        let model = self.model(kind)?;
        self.artifacts_for_shared(model)
    }

    /// The prepared artifacts for an arbitrary (non-zoo) model, cached by
    /// model name. A cache hit is validated against the requested model, so
    /// two distinct models sharing a name cannot receive each other's
    /// results — the mismatching one is prepared fresh, uncached.
    ///
    /// # Errors
    ///
    /// Propagates preparation failures.
    pub fn artifacts_for_model(&self, model: &Model) -> Result<Arc<ModelArtifacts>, PipelineError> {
        // Fast path first: a warm hit (or a same-name one-off) must not pay
        // the full weight-tensor clone the shared path needs.
        let existing =
            self.artifacts.read().expect("artifact cache lock").get(model.name()).cloned();
        if let Some(slot) = existing {
            let filled_with_other_model = {
                let guard = slot.cell.lock().expect("artifact slot lock");
                match guard.as_ref() {
                    Some(found) if found.model() == model => {
                        self.artifact_hits.fetch_add(1, Ordering::Relaxed);
                        self.touch(&slot);
                        return Ok(Arc::clone(found));
                    }
                    Some(_) => true,
                    None => false,
                }
            };
            if filled_with_other_model {
                // Same name, different graph/weights: don't reuse and don't
                // evict the existing entry — prepare a one-off (outside the
                // slot lock, so warm hits for the cached model keep flowing).
                self.artifact_misses.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(ModelArtifacts::prepare(&self.config, model)?));
            }
        }
        self.artifacts_for_shared(Arc::new(model.clone()))
    }

    /// The cache slot for `name`, inserting an empty one if absent. Readers
    /// share the map lock; only the first request for a new name takes the
    /// write lock.
    fn artifact_slot(&self, name: &str) -> ArtifactSlot {
        if let Some(slot) = self.artifacts.read().expect("artifact cache lock").get(name) {
            return Arc::clone(slot);
        }
        let mut cache = self.artifacts.write().expect("artifact cache lock");
        Arc::clone(cache.entry(name.to_string()).or_default())
    }

    fn artifacts_for_shared(
        &self,
        model: Arc<Model>,
    ) -> Result<Arc<ModelArtifacts>, PipelineError> {
        let name = model.name().to_string();
        let slot = self.artifact_slot(&name);
        // Holding the slot lock during preparation makes the build
        // single-flight per model name: a concurrent duplicate request waits
        // here and receives the shared artifacts instead of re-preparing.
        // Different models use different slots, so they still prepare in
        // parallel.
        let mut guard = slot.cell.lock().expect("artifact slot lock");
        let filled_with_other_model = match guard.as_ref() {
            Some(found) if *found.model() == *model => {
                self.artifact_hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&slot);
                return Ok(Arc::clone(found));
            }
            Some(_) => true,
            None => false,
        };
        self.artifact_misses.fetch_add(1, Ordering::Relaxed);
        if filled_with_other_model {
            // Same name, different graph/weights: don't reuse and don't
            // evict the existing entry — prepare a one-off, outside the
            // slot lock so warm hits for the cached model keep flowing.
            drop(guard);
            return Ok(Arc::new(ModelArtifacts::prepare_shared(&self.config, model)?));
        }
        let prepared = Arc::new(ModelArtifacts::prepare_shared(&self.config, model)?);
        *guard = Some(Arc::clone(&prepared));
        self.touch(&slot);
        // The fill may have pushed the cache over its LRU cap; the slot lock
        // is still held, so the freshly filled entry is exempt by name and
        // invisible to the victim scan.
        self.enforce_capacity(&name);
        Ok(prepared)
    }

    /// A snapshot of the session's cache counters.
    ///
    /// Program counters aggregate over every resident artifact set plus the
    /// fold-in of every evicted one, so totals are monotone even under an
    /// LRU cap. A slot whose preparation is still in flight is skipped (its
    /// counters are all zero anyway) so the snapshot never blocks behind a
    /// running build.
    #[must_use]
    pub fn cache_stats(&self) -> SessionCacheStats {
        let mut stats = SessionCacheStats {
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            artifact_misses: self.artifact_misses.load(Ordering::Relaxed),
            artifact_evictions: self.artifact_evictions.load(Ordering::Relaxed),
            program_hits: self.evicted_program_hits.load(Ordering::Relaxed),
            program_misses: self.evicted_program_misses.load(Ordering::Relaxed),
            ..SessionCacheStats::default()
        };
        for slot in self.artifacts.read().expect("artifact cache lock").values() {
            let Ok(guard) = slot.cell.try_lock() else { continue };
            if let Some(artifacts) = guard.as_ref() {
                stats.resident_artifacts += 1;
                stats.program_hits += artifacts.program_hits.load(Ordering::Relaxed);
                stats.program_misses += artifacts.program_misses.load(Ordering::Relaxed);
            }
        }
        stats
    }

    /// Runs the full co-design flow for one zoo model: all four sparsity
    /// configurations, optional fidelity.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn codesign(
        &self,
        kind: ModelKind,
        with_fidelity: bool,
    ) -> Result<CodesignResult, PipelineError> {
        self.artifacts(kind)?.codesign_result(&SparsityConfig::all(), with_fidelity)
    }

    /// Runs the full co-design flow for an arbitrary model.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn codesign_model(
        &self,
        model: &Model,
        with_fidelity: bool,
    ) -> Result<CodesignResult, PipelineError> {
        self.artifacts_for_model(model)?.codesign_result(&SparsityConfig::all(), with_fidelity)
    }

    /// Simulates one (model, sparsity) point on the session geometry.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn run(
        &self,
        kind: ModelKind,
        sparsity: SparsityConfig,
    ) -> Result<RunReport, PipelineError> {
        self.artifacts(kind)?.simulate(self.config.arch, sparsity)
    }
}

/// The point set of a sweep: models × sparsity configurations ×
/// architecture geometries × operand widths × pruning specs.
///
/// Specs serialize (vendored serde_json), so a sweep request can travel over
/// the wire to a serving daemon or be persisted next to its report. The
/// serializer is hand-written: the `pruning` axis is omitted when empty and
/// tolerated when absent, so specs produced before the axis existed — and
/// specs that simply don't prune — keep their historical wire bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Zoo models to sweep (duplicates are executed once).
    pub models: Vec<ModelKind>,
    /// Sparsity configurations per model (duplicates are executed once).
    pub sparsity: Vec<SparsityConfig>,
    /// Geometries to compile and simulate for; empty means "the session's
    /// configured architecture".
    pub archs: Vec<ArchConfig>,
    /// Weight operand widths to sweep; empty means "the session's
    /// configured width". Non-INT8 widths skip the fidelity evaluation.
    pub widths: Vec<OperandWidth>,
    /// Value-level pruning specs to sweep (the joint value/bit sparsity
    /// axis); empty means "the session's configured pruning" — by default
    /// the identity spec, i.e. the classic unpruned sweep.
    pub pruning: Vec<PruningSpec>,
}

impl Serialize for SweepSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("models".to_string(), self.models.to_value()),
            ("sparsity".to_string(), self.sparsity.to_value()),
            ("archs".to_string(), self.archs.to_value()),
            ("widths".to_string(), self.widths.to_value()),
        ];
        if !self.pruning.is_empty() {
            entries.push(("pruning".to_string(), self.pruning.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for SweepSpec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("sweep spec map", value))?;
        let field = |name: &str| {
            get_field(entries, name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
        };
        Ok(Self {
            models: Vec::from_value(field("models")?)?,
            sparsity: Vec::from_value(field("sparsity")?)?,
            archs: Vec::from_value(field("archs")?)?,
            widths: Vec::from_value(field("widths")?)?,
            pruning: match get_field(entries, "pruning") {
                Some(found) => Vec::from_value(found)?,
                None => Vec::new(),
            },
        })
    }
}

impl SweepSpec {
    /// A sweep of the given models over all four Fig. 7 sparsity
    /// configurations on the session geometry.
    #[must_use]
    pub fn new(models: Vec<ModelKind>) -> Self {
        Self {
            models,
            sparsity: SparsityConfig::all().to_vec(),
            archs: Vec::new(),
            widths: Vec::new(),
            pruning: Vec::new(),
        }
    }

    /// The paper's evaluation sweep: all five zoo models × all four
    /// sparsity configurations.
    #[must_use]
    pub fn zoo() -> Self {
        Self::new(ModelKind::all().to_vec())
    }

    /// Restricts the sparsity configurations.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: Vec<SparsityConfig>) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Adds explicit architecture geometries.
    #[must_use]
    pub fn with_archs(mut self, archs: Vec<ArchConfig>) -> Self {
        self.archs = archs;
        self
    }

    /// Adds explicit operand widths (the precision axis).
    #[must_use]
    pub fn with_widths(mut self, widths: Vec<OperandWidth>) -> Self {
        self.widths = widths;
        self
    }

    /// Adds explicit pruning specs (the value-sparsity axis).
    #[must_use]
    pub fn with_pruning(mut self, pruning: Vec<PruningSpec>) -> Self {
        self.pruning = pruning;
        self
    }

    /// The requested models with duplicates removed, in first-seen order.
    #[must_use]
    pub fn unique_models(&self) -> Vec<ModelKind> {
        let mut seen = Vec::new();
        for &kind in &self.models {
            if !seen.contains(&kind) {
                seen.push(kind);
            }
        }
        seen
    }

    /// The requested sparsity configurations in canonical Fig. 7 order,
    /// duplicates removed.
    #[must_use]
    pub fn unique_sparsity(&self) -> Vec<SparsityConfig> {
        // Canonical Fig. 7 order, filtered to the requested set.
        SparsityConfig::all().into_iter().filter(|s| self.sparsity.contains(s)).collect()
    }

    /// The geometries the sweep actually runs: the explicit list (deduped,
    /// in request order), or `session_arch` when none were given.
    #[must_use]
    pub fn effective_archs(&self, session_arch: ArchConfig) -> Vec<ArchConfig> {
        let mut archs: Vec<ArchConfig> = Vec::new();
        let requested = if self.archs.is_empty() { vec![session_arch] } else { self.archs.clone() };
        for arch in requested {
            if !archs.contains(&arch) {
                archs.push(arch);
            }
        }
        archs
    }

    /// The operand widths the sweep actually runs: the explicit list in
    /// canonical narrow-to-wide order, or `session_width` when none were
    /// given.
    #[must_use]
    pub fn effective_widths(&self, session_width: OperandWidth) -> Vec<OperandWidth> {
        if self.widths.is_empty() {
            return vec![session_width];
        }
        // Canonical narrow-to-wide order, deduplicated.
        OperandWidth::all().into_iter().filter(|w| self.widths.contains(w)).collect()
    }

    /// The pruning specs the sweep actually runs: the explicit list in
    /// request order (deduplicated), or `session_pruning` when none were
    /// given. Request order *is* the canonical order for this axis —
    /// fractions are floats, so there is no finite enumeration to rank by.
    #[must_use]
    pub fn effective_pruning(&self, session_pruning: PruningSpec) -> Vec<PruningSpec> {
        if self.pruning.is_empty() {
            return vec![session_pruning];
        }
        let mut specs: Vec<PruningSpec> = Vec::new();
        for &spec in &self.pruning {
            if !specs.contains(&spec) {
                specs.push(spec);
            }
        }
        specs
    }
}

/// One (model, width, pruning, geometry) result of a sweep.
///
/// Serialization is hand-written so an identity `pruning` spec is omitted —
/// unpruned sweep reports stay byte-identical to reports written before the
/// pruning axis existed, and old reports load with `pruning` defaulting to
/// [`PruningSpec::none`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepEntry {
    /// The swept model.
    pub kind: ModelKind,
    /// The weight operand width this entry was approximated and compiled at.
    pub width: OperandWidth,
    /// The value-level pruning applied before quantization (the identity
    /// spec for classic unpruned sweeps).
    pub pruning: PruningSpec,
    /// The geometry this entry was compiled and simulated for.
    pub arch: ArchConfig,
    /// The co-design result; `runs` holds the requested sparsity
    /// configurations in canonical [`SparsityConfig::all`] order.
    pub result: CodesignResult,
}

impl Serialize for SweepEntry {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("kind".to_string(), self.kind.to_value()),
            ("width".to_string(), self.width.to_value()),
            ("arch".to_string(), self.arch.to_value()),
            ("result".to_string(), self.result.to_value()),
        ];
        if self.pruning.is_active() {
            entries.push(("pruning".to_string(), self.pruning.to_value()));
        }
        Value::Map(entries)
    }
}

impl Deserialize for SweepEntry {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("sweep entry map", value))?;
        let field = |name: &str| {
            get_field(entries, name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
        };
        Ok(Self {
            kind: ModelKind::from_value(field("kind")?)?,
            width: OperandWidth::from_value(field("width")?)?,
            pruning: match get_field(entries, "pruning") {
                Some(found) => PruningSpec::from_value(found)?,
                None => PruningSpec::none(),
            },
            arch: ArchConfig::from_value(field("arch")?)?,
            result: CodesignResult::from_value(field("result")?)?,
        })
    }
}

/// The structured outcome of a [`BatchRunner`] sweep.
///
/// Reports serialize through the vendored `serde_json`
/// (`serde_json::to_string` / `from_str` round-trips are exercised by the
/// workspace test suite), so sharded sweeps can persist their partial
/// reports and [`merge`](Self::merge) them afterwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// One entry per (model, width, pruning, geometry), in spec order
    /// (models outer, then widths, then pruning specs, then archs).
    pub entries: Vec<SweepEntry>,
    /// Wall-clock duration of the sweep.
    pub wall_time: Duration,
    /// Distinct (model, width, pruning) artifact sets prepared.
    pub prepared_models: usize,
    /// Simulation runs executed.
    pub simulated_runs: usize,
}

impl SweepReport {
    /// `true` when the sweep contained no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The result for `kind` on the first swept width and geometry.
    #[must_use]
    pub fn result(&self, kind: ModelKind) -> Option<&CodesignResult> {
        self.entries.iter().find(|e| e.kind == kind).map(|e| &e.result)
    }

    /// The result for `kind` at a specific operand width (first swept
    /// geometry).
    #[must_use]
    pub fn result_at_width(&self, kind: ModelKind, width: OperandWidth) -> Option<&CodesignResult> {
        self.entries.iter().find(|e| e.kind == kind && e.width == width).map(|e| &e.result)
    }

    /// All results in entry order.
    pub fn results(&self) -> impl Iterator<Item = &CodesignResult> {
        self.entries.iter().map(|e| &e.result)
    }

    /// Merges another report into this one (sharded sweeps: independent
    /// processes split a sweep and combine their reports afterwards).
    ///
    /// Entries concatenate in order — `self`'s entries first, then `other`'s
    /// — except that an entry of `other` identical to one already present is
    /// dropped: overlapping shards of the same deterministic sweep dedupe
    /// instead of double-counting, and merging a report with itself is the
    /// identity. Entries that merely share a (model, width, geometry) key
    /// but differ in content (e.g. shards split by sparsity configuration)
    /// are both kept.
    ///
    /// The wall time is the maximum of the two (shards run in parallel);
    /// `prepared_models` and `simulated_runs` are recomputed from the
    /// retained entries (distinct (model, width, pruning) triples and total
    /// simulation runs respectively), so they stay consistent under overlap.
    #[must_use]
    pub fn merge(mut self, other: SweepReport) -> SweepReport {
        for entry in other.entries {
            if !self.entries.contains(&entry) {
                self.entries.push(entry);
            }
        }
        self.wall_time = self.wall_time.max(other.wall_time);
        let mut prepared: Vec<(ModelKind, OperandWidth, PruningSpec)> = Vec::new();
        for entry in &self.entries {
            if !prepared.contains(&(entry.kind, entry.width, entry.pruning)) {
                prepared.push((entry.kind, entry.width, entry.pruning));
            }
        }
        self.prepared_models = prepared.len();
        self.simulated_runs = self.entries.iter().map(|e| e.result.runs.len()).sum();
        self
    }

    /// Persists the report as JSON (vendored serde_json) at `path`.
    ///
    /// Together with [`load`](Self::load) and [`merge`](Self::merge) this is
    /// the disk half of sharded sweeps: each shard saves its partial report
    /// and a combiner loads and merges them.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] when serialization or the write
    /// fails (the path is included in the message).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PipelineError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot serialize sweep report: {e}"),
        })?;
        std::fs::write(path, json).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot write sweep report to {}: {e}", path.display()),
        })
    }

    /// Loads a report previously persisted with [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] when the file cannot be read or
    /// does not parse as a sweep report.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PipelineError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| PipelineError::BadConfig {
            reason: format!("cannot read sweep report from {}: {e}", path.display()),
        })?;
        serde_json::from_str(&json).map_err(|e| PipelineError::BadConfig {
            reason: format!("malformed sweep report in {}: {e}", path.display()),
        })
    }
}

/// One (operand width, pruning) point of the joint sweep space a
/// [`BatchRunner`] keeps a dedicated session for.
type SessionVariant = (OperandWidth, PruningSpec);

/// Executes [`SweepSpec`]s against a shared [`SimSession`], in parallel.
///
/// Parallelism has two phases: artifact preparation (the expensive
/// model-side stages plus per-geometry compilation) fans out one task per
/// distinct (model, width), then simulation fans out one task per (model,
/// width, geometry, sparsity) point. Compiled programs are reused across
/// every sparsity configuration of a model — the dense and DB-PIM programs
/// are each built exactly once per (model, width, geometry).
///
/// The runner keeps one [`SimSession`] per swept (operand width, pruning)
/// variant (the base session serves its configured pair), so artifacts are
/// cached and reused across repeated sweeps at every point of the joint
/// precision × value-sparsity space.
#[derive(Debug)]
pub struct BatchRunner {
    session: Arc<SimSession>,
    threads: usize,
    /// Lazily created sessions for (width, pruning) variants other than the
    /// base session's, kept alive so repeated sweeps reuse their artifact
    /// caches. Read-mostly after warm-up, hence the [`RwLock`].
    variant_sessions: RwLock<Vec<(SessionVariant, Arc<SimSession>)>>,
    /// Per-session artifact-cache LRU cap applied to the base session and to
    /// every lazily created width session (`None` = unbounded).
    cache_cap: Option<usize>,
}

impl BatchRunner {
    /// Creates a runner with a fresh session and one worker per hardware
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable configurations.
    pub fn new(config: PipelineConfig) -> Result<Self, PipelineError> {
        Ok(Self::from_session(SimSession::new(config)?))
    }

    /// Wraps an existing session.
    #[must_use]
    pub fn from_session(session: SimSession) -> Self {
        Self {
            session: Arc::new(session),
            threads: par::default_parallelism(),
            variant_sessions: RwLock::new(Vec::new()),
            cache_cap: None,
        }
    }

    /// Overrides the worker-thread count (`1` forces sequential execution).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Caps every per-width session's artifact cache at `cap` resident
    /// models, LRU-evicting beyond it (see
    /// [`SimSession::set_cache_capacity`]); `None` restores the unbounded
    /// default. Applies to the base session immediately and to width
    /// sessions as they are created.
    #[must_use]
    pub fn with_cache_cap(mut self, cap: Option<usize>) -> Self {
        self.session.set_cache_capacity(cap);
        self.cache_cap = cap;
        self
    }

    /// The underlying session (shared artifact cache at the configured
    /// width).
    #[must_use]
    pub fn session(&self) -> &SimSession {
        &self.session
    }

    /// The session caching artifacts for one operand width (at the base
    /// session's pruning), created on first use.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable configurations.
    pub fn session_for_width(&self, width: OperandWidth) -> Result<Arc<SimSession>, PipelineError> {
        self.session_for_variant(width, self.session.config().pruning)
    }

    /// The session caching artifacts for one (operand width, pruning)
    /// variant, created on first use. The base session serves its own
    /// configured pair; every other variant gets a sibling session with an
    /// identical configuration apart from `operand_width` and `pruning`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadConfig`] for unusable configurations.
    pub fn session_for_variant(
        &self,
        width: OperandWidth,
        pruning: PruningSpec,
    ) -> Result<Arc<SimSession>, PipelineError> {
        let base = self.session.config();
        if width == base.operand_width && pruning == base.pruning {
            return Ok(Arc::clone(&self.session));
        }
        let key = (width, pruning);
        if let Some((_, session)) = self
            .variant_sessions
            .read()
            .expect("variant session lock")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Ok(Arc::clone(session));
        }
        let mut cache = self.variant_sessions.write().expect("variant session lock");
        if let Some((_, session)) = cache.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(session));
        }
        let config = base.with_operand_width(width).with_pruning(pruning);
        let session = Arc::new(SimSession::new(config)?);
        session.set_cache_capacity(self.cache_cap);
        cache.push((key, Arc::clone(&session)));
        Ok(session)
    }

    /// Aggregated cache counters across the base session and every
    /// lazily-created variant session.
    #[must_use]
    pub fn cache_stats(&self) -> SessionCacheStats {
        let mut stats = self.session.cache_stats();
        for (_, session) in self.variant_sessions.read().expect("variant session lock").iter() {
            stats.absorb(session.cache_stats());
        }
        stats
    }

    /// Runs one (model, width, geometry) sweep point and returns its entry,
    /// reusing every cached artifact. `arch == None` means "the session's
    /// configured geometry". The entry content is bit-identical to the
    /// corresponding entry of a full [`Self::run_with_fidelity`] sweep —
    /// both paths draw from the same [`ModelArtifacts`] — which the serving
    /// layer's round-trip test asserts.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn run_point(
        &self,
        kind: ModelKind,
        width: OperandWidth,
        arch: Option<ArchConfig>,
        sparsity: &[SparsityConfig],
        with_fidelity: bool,
    ) -> Result<SweepEntry, PipelineError> {
        self.run_point_pruned(
            kind,
            width,
            self.session.config().pruning,
            arch,
            sparsity,
            with_fidelity,
        )
    }

    /// [`run_point`](Self::run_point) at an explicit pruning spec instead of
    /// the base session's configured one — the joint value/bit sparsity
    /// entry point the DSE driver and serving layer dispatch through.
    ///
    /// # Errors
    ///
    /// Propagates any stage failure.
    pub fn run_point_pruned(
        &self,
        kind: ModelKind,
        width: OperandWidth,
        pruning: PruningSpec,
        arch: Option<ArchConfig>,
        sparsity: &[SparsityConfig],
        with_fidelity: bool,
    ) -> Result<SweepEntry, PipelineError> {
        let _span = dbpim_trace::span!(
            "batch.point",
            model = kind.name(),
            width = width.bits(),
            fidelity = with_fidelity,
        );
        let session = self.session_for_variant(width, pruning)?;
        let arch = arch.unwrap_or(session.config().arch);
        arch.validate()?;
        let artifacts = session.artifacts(kind)?;
        let fidelity = with_fidelity && session.config().evaluation_images > 0;
        // codesign_result_for_arch canonicalizes the sparsity order and
        // collapses duplicates itself.
        let result = artifacts.codesign_result_for_arch(arch, sparsity, fidelity)?;
        Ok(SweepEntry { kind, width, pruning, arch, result })
    }

    /// Runs a sweep without fidelity evaluation.
    ///
    /// # Errors
    ///
    /// Propagates the first point failure.
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport, PipelineError> {
        self.run_with_fidelity(spec, false)
    }

    /// Runs a sweep, optionally evaluating fidelity per model (honoured only
    /// when the session configuration has evaluation images).
    ///
    /// # Errors
    ///
    /// Propagates the first point failure.
    pub fn run_with_fidelity(
        &self,
        spec: &SweepSpec,
        with_fidelity: bool,
    ) -> Result<SweepReport, PipelineError> {
        let start = Instant::now();
        let _span = dbpim_trace::span!(
            "batch.sweep",
            models = spec.unique_models().len(),
            fidelity = with_fidelity,
        );
        let models = spec.unique_models();
        let sparsity = spec.unique_sparsity();
        let archs = spec.effective_archs(self.session.config().arch);
        let widths = spec.effective_widths(self.session.config().operand_width);
        let prunings = spec.effective_pruning(self.session.config().pruning);
        let fidelity = with_fidelity && self.session.config().evaluation_images > 0;
        // Reject infeasible geometry or pruning overrides before any
        // expensive work.
        for arch in &archs {
            arch.validate()?;
        }
        for pruning in &prunings {
            pruning.validate().map_err(|reason| PipelineError::BadConfig { reason })?;
        }

        // Phase 1: prepare artifacts, compile every geometry, and (when
        // requested) evaluate fidelity — one parallel task per (model,
        // width, pruning). Fidelity only exists on the INT8 executor.
        let mut tasks = Vec::with_capacity(models.len() * widths.len() * prunings.len());
        for &kind in &models {
            for &width in &widths {
                for &pruning in &prunings {
                    tasks.push((kind, width, pruning));
                }
            }
        }
        let prepared = par::par_map(tasks, self.threads, |(kind, width, pruning)| {
            let session = self.session_for_variant(width, pruning)?;
            let artifacts = session.artifacts(kind)?;
            for &arch in &archs {
                artifacts.programs(arch)?;
            }
            if fidelity && width == OperandWidth::Int8 {
                artifacts.fidelity()?;
            }
            Ok::<_, PipelineError>((kind, width, pruning, artifacts))
        });
        let mut artifacts_by_point = Vec::with_capacity(prepared.len());
        for result in prepared {
            artifacts_by_point.push(result?);
        }

        // Phase 2: simulate every (model, width, pruning, arch, sparsity)
        // point in parallel.
        let mut points = Vec::new();
        for (slot, (_, _, _, artifacts)) in artifacts_by_point.iter().enumerate() {
            for (arch_slot, &arch) in archs.iter().enumerate() {
                for &config in &sparsity {
                    points.push((slot, arch_slot, arch, config, Arc::clone(artifacts)));
                }
            }
        }
        let simulated_runs = points.len();
        let runs = par::par_map(points, self.threads, |(slot, arch_slot, arch, config, a)| {
            a.simulate(arch, config).map(|report| (slot, arch_slot, config, report))
        });

        // Phase 3: assemble entries in deterministic (model, width, pruning,
        // arch) order.
        let mut grouped: HashMap<(usize, usize), Vec<(SparsityConfig, RunReport)>> = HashMap::new();
        for run in runs {
            let (slot, arch_slot, config, report) = run?;
            grouped.entry((slot, arch_slot)).or_default().push((config, report));
        }
        let mut entries = Vec::new();
        for (slot, (kind, width, pruning, artifacts)) in artifacts_by_point.iter().enumerate() {
            for (arch_slot, &arch) in archs.iter().enumerate() {
                let mut reports = grouped.remove(&(slot, arch_slot)).unwrap_or_default();
                // Canonical Fig. 7 order.
                let mut runs = Vec::with_capacity(reports.len());
                for config in SparsityConfig::all() {
                    if let Some(pos) = reports.iter().position(|(c, _)| *c == config) {
                        runs.push(reports.swap_remove(pos).1);
                    }
                }
                let result = CodesignResult {
                    model_name: artifacts.model().name().to_string(),
                    summary: artifacts.summary().clone(),
                    fta_stats: artifacts.fta_stats().clone(),
                    fidelity: if fidelity && *width == OperandWidth::Int8 {
                        Some(artifacts.fidelity()?)
                    } else {
                        None
                    },
                    input_sparsity: artifacts.input_sparsity().clone(),
                    runs,
                };
                entries.push(SweepEntry {
                    kind: *kind,
                    width: *width,
                    pruning: *pruning,
                    arch,
                    result,
                });
            }
        }

        Ok(SweepReport {
            entries,
            wall_time: start.elapsed(),
            prepared_models: models.len() * widths.len() * prunings.len(),
            simulated_runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_dedupes_and_keeps_canonical_order() {
        let spec = SweepSpec::new(vec![ModelKind::Vgg19, ModelKind::AlexNet, ModelKind::Vgg19])
            .with_sparsity(vec![
                SparsityConfig::HybridSparsity,
                SparsityConfig::DenseBaseline,
                SparsityConfig::HybridSparsity,
            ]);
        assert_eq!(spec.unique_models(), vec![ModelKind::Vgg19, ModelKind::AlexNet]);
        assert_eq!(
            spec.unique_sparsity(),
            vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]
        );
        let archs = spec.effective_archs(ArchConfig::paper());
        assert_eq!(archs, vec![ArchConfig::paper()]);
    }

    #[test]
    fn width_axis_defaults_to_the_session_width_and_dedupes() {
        let spec = SweepSpec::new(vec![ModelKind::AlexNet]);
        assert!(spec.widths.is_empty());
        assert_eq!(spec.effective_widths(OperandWidth::Int8), vec![OperandWidth::Int8]);
        assert_eq!(spec.effective_widths(OperandWidth::Int4), vec![OperandWidth::Int4]);
        let spec = spec.with_widths(vec![
            OperandWidth::Int16,
            OperandWidth::Int4,
            OperandWidth::Int16,
            OperandWidth::Int8,
        ]);
        // Canonical narrow-to-wide order, duplicates executed once.
        assert_eq!(
            spec.effective_widths(OperandWidth::Int8),
            vec![OperandWidth::Int4, OperandWidth::Int8, OperandWidth::Int16]
        );
    }

    #[test]
    fn zoo_spec_covers_all_models_and_configs() {
        let spec = SweepSpec::zoo();
        assert_eq!(spec.models.len(), 5);
        assert_eq!(spec.sparsity.len(), 4);
        assert!(spec.archs.is_empty());
    }

    #[test]
    fn empty_sweep_returns_empty_report() {
        let runner = BatchRunner::new(PipelineConfig::fast()).unwrap();
        let report = runner.run(&SweepSpec::new(Vec::new())).unwrap();
        assert!(report.is_empty());
        assert_eq!(report.prepared_models, 0);
        assert_eq!(report.simulated_runs, 0);
    }

    #[test]
    fn cache_capacity_is_clamped_and_reported() {
        let session = SimSession::new(PipelineConfig::fast()).unwrap();
        assert_eq!(session.cache_capacity(), None, "unbounded by default");
        session.set_cache_capacity(Some(0));
        assert_eq!(session.cache_capacity(), Some(1), "a zero cap would cache nothing");
        session.set_cache_capacity(Some(3));
        assert_eq!(session.cache_capacity(), Some(3));
        session.set_cache_capacity(None);
        assert_eq!(session.cache_capacity(), None);
        assert_eq!(session.cache_stats().artifact_evictions, 0);
    }

    #[test]
    fn session_rejects_bad_config() {
        let mut config = PipelineConfig::fast();
        config.classes = 0;
        assert!(SimSession::new(config).is_err());
        assert!(BatchRunner::new(config).is_err());
    }
}
