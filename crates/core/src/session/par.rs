//! Minimal data-parallel map over scoped std threads.
//!
//! The offline build environment cannot fetch `rayon`, so the batch runner
//! uses this self-contained equivalent: a fixed worker pool over
//! `std::thread::scope` pulling work items from a shared atomic cursor
//! (work-stealing by index). Results land in per-item slots, so
//! output order matches input order regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: one per available hardware thread.
#[must_use]
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item on up to `threads` worker threads, preserving
/// input order in the output.
///
/// Falls back to a plain sequential map for a single item or a single
/// worker. A panic inside `f` propagates to the caller when the scope joins.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let count = items.len();
    if count <= 1 || threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    // Per-item (input, output) cells; a worker takes the input and later
    // stores the result, so every slot is written exactly once.
    type Slot<T, R> = (Mutex<Option<T>>, Mutex<Option<R>>);
    let slots: Vec<Slot<T, R>> =
        items.into_iter().map(|item| (Mutex::new(Some(item)), Mutex::new(None))).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let (input, output) = &slots[index];
                let item = input.lock().expect("no poisoned input slots").take();
                if let Some(item) = item {
                    *output.lock().expect("no poisoned output slots") = Some(f(item));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|(_, output)| {
            output
                .into_inner()
                .expect("no poisoned output slots")
                .expect("every slot visited exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let doubled = par_map((0..256).collect(), 8, |x: i32| x * 2);
        assert_eq!(doubled, (0..256).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallbacks_match() {
        let single_thread = par_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        let single_item = par_map(vec![7], 8, |x: i32| x + 1);
        assert_eq!(single_thread, vec![2, 3, 4]);
        assert_eq!(single_item, vec![8]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallelism_default_is_positive() {
        assert!(default_parallelism() >= 1);
    }
}
