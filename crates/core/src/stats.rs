//! Observability primitives, re-exported from [`dbpim_trace`].
//!
//! The log₂-bucketed [`LatencyHistogram`] started life here (PR 7, for the
//! serving daemon's `Stats` response) and moved into the `dbpim-trace`
//! crate when tracing became a repo-wide substrate, so the fleet progress
//! view and the metrics registry share one implementation. These
//! re-exports keep `db_pim::LatencyHistogram` (and the serve wire format
//! built on it) exactly where existing code expects it.

pub use dbpim_trace::{LatencyHistogram, LATENCY_BUCKETS};
