//! Dyadic blocks: the DB-PIM bit-level sparsity pattern.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::digit::CsdDigit;
use crate::error::CsdError;

/// Sign of the single non-zero digit carried by a Complementary Pattern block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// The digit is `+1`.
    Positive,
    /// The digit is `-1` (`1̄` in the paper).
    Negative,
}

impl Sign {
    /// `+1` or `-1`.
    #[must_use]
    pub const fn factor(self) -> i32 {
        match self {
            Sign::Positive => 1,
            Sign::Negative => -1,
        }
    }

    /// The hardware encoding used in the metadata register files: `0` for
    /// positive, `1` for negative (one sign bit per stored block).
    #[must_use]
    pub const fn to_bit(self) -> u8 {
        match self {
            Sign::Positive => 0,
            Sign::Negative => 1,
        }
    }

    /// Decodes the one-bit hardware encoding.
    #[must_use]
    pub const fn from_bit(bit: u8) -> Self {
        if bit == 0 {
            Sign::Positive
        } else {
            Sign::Negative
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Positive => write!(f, "+"),
            Sign::Negative => write!(f, "-"),
        }
    }
}

/// Classification of a dyadic block.
///
/// In CSD form a 2-digit block never holds two non-zero digits, so a block is
/// either entirely zero or carries exactly one signed digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockPattern {
    /// The Zero Pattern block `00`; it is discarded by the FTA compression and
    /// never stored in the PIM array.
    Zero,
    /// A Complementary Pattern block (`01`, `10`, `0-1` or `-10`): one signed
    /// non-zero digit that maps onto the `Q`/`Q̄` pair of a 6T SRAM cell.
    Comp {
        /// `true` when the non-zero digit occupies the high (odd) position of
        /// the block, `false` for the low (even) position.
        high: bool,
        /// Sign of the non-zero digit.
        sign: Sign,
    },
}

impl BlockPattern {
    /// Returns `true` for the Zero Pattern.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        matches!(self, BlockPattern::Zero)
    }

    /// Returns `true` for a Complementary Pattern.
    #[must_use]
    pub const fn is_comp(self) -> bool {
        !self.is_zero()
    }
}

/// One dyadic block: a 2-digit slice of a CSD word together with its index.
///
/// Block `k` of a word covers digit positions `2k` and `2k + 1`, so its
/// non-zero digit (if any) weighs `± 2^(2k)` or `± 2^(2k + 1)`.
///
/// # Examples
///
/// ```
/// use dbpim_csd::{CsdWord, BlockPattern, Sign};
///
/// // 0100_0010 (CSD) = 64 + 2: DB#0 = 10 (value +2), DB#3 = 01 (value +64).
/// let w = CsdWord::from_i32(66, 8)?;
/// let blocks = w.dyadic_blocks();
/// assert_eq!(blocks[0].value(), 2);
/// assert_eq!(blocks[3].value(), 64);
/// assert_eq!(blocks[1].pattern(), BlockPattern::Zero);
/// assert_eq!(blocks.comp_blocks().count(), 2);
/// # Ok::<(), dbpim_csd::CsdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DyadicBlock {
    index: u8,
    pattern: BlockPattern,
}

impl DyadicBlock {
    /// Builds a block from its two digits (low position first).
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::NotCanonical`] when both digits are non-zero, which
    /// cannot happen inside a canonical word.
    pub fn from_digits(index: u8, lo: CsdDigit, hi: CsdDigit) -> Result<Self, CsdError> {
        let pattern = match (lo, hi) {
            (CsdDigit::Zero, CsdDigit::Zero) => BlockPattern::Zero,
            (d, CsdDigit::Zero) => BlockPattern::Comp {
                high: false,
                sign: if d == CsdDigit::PlusOne { Sign::Positive } else { Sign::Negative },
            },
            (CsdDigit::Zero, d) => BlockPattern::Comp {
                high: true,
                sign: if d == CsdDigit::PlusOne { Sign::Positive } else { Sign::Negative },
            },
            _ => return Err(CsdError::NotCanonical { position: usize::from(index) * 2 }),
        };
        Ok(Self { index, pattern })
    }

    /// Builds a Complementary Pattern block directly from metadata fields.
    #[must_use]
    pub fn comp(index: u8, high: bool, sign: Sign) -> Self {
        Self { index, pattern: BlockPattern::Comp { high, sign } }
    }

    /// Builds a Zero Pattern block at the given index.
    #[must_use]
    pub fn zero(index: u8) -> Self {
        Self { index, pattern: BlockPattern::Zero }
    }

    /// Block index (`DB#index`); weighs `2^(2 * index)` at its low position.
    #[must_use]
    pub fn index(&self) -> u8 {
        self.index
    }

    /// The block's pattern classification.
    #[must_use]
    pub fn pattern(&self) -> BlockPattern {
        self.pattern
    }

    /// Returns `true` for the Zero Pattern.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.pattern.is_zero()
    }

    /// Arithmetic value contributed by this block.
    #[must_use]
    pub fn value(&self) -> i32 {
        match self.pattern {
            BlockPattern::Zero => 0,
            BlockPattern::Comp { high, sign } => {
                let shift = 2 * u32::from(self.index) + u32::from(high);
                sign.factor() << shift
            }
        }
    }

    /// Bit position (`0..width`) of the non-zero digit, or `None` for a Zero
    /// Pattern block. This is the shift amount used by the CSD adder tree.
    #[must_use]
    pub fn digit_position(&self) -> Option<u32> {
        match self.pattern {
            BlockPattern::Zero => None,
            BlockPattern::Comp { high, .. } => Some(2 * u32::from(self.index) + u32::from(high)),
        }
    }

    /// Sign of the non-zero digit, or `None` for a Zero Pattern block.
    #[must_use]
    pub fn sign(&self) -> Option<Sign> {
        match self.pattern {
            BlockPattern::Zero => None,
            BlockPattern::Comp { sign, .. } => Some(sign),
        }
    }

    /// The `(Q, Q̄)` pair stored in the 6T SRAM cell for this block.
    ///
    /// The cross-coupled inverters of a 6T cell always hold complementary
    /// levels; the Comp. Pattern convention stores the *low* digit of the block
    /// on `Q` and the *high* digit on `Q̄`, so `(1, 0)` encodes a non-zero digit
    /// in the low position and `(0, 1)` one in the high position. Zero Pattern
    /// blocks are never stored.
    #[must_use]
    pub fn cell_state(&self) -> Option<(bool, bool)> {
        match self.pattern {
            BlockPattern::Zero => None,
            BlockPattern::Comp { high, .. } => Some((!high, high)),
        }
    }
}

impl fmt::Display for DyadicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pattern {
            BlockPattern::Zero => write!(f, "DB#{}:00", self.index),
            BlockPattern::Comp { high, sign } => {
                let (hi, lo) = if high {
                    (sign.to_string(), "0".to_string())
                } else {
                    ("0".to_string(), sign.to_string())
                };
                write!(f, "DB#{}:{}{}", self.index, hi, lo)
            }
        }
    }
}

/// The ordered dyadic-block decomposition of a CSD word (`DB#0` first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DyadicBlocks {
    blocks: Vec<DyadicBlock>,
}

impl DyadicBlocks {
    pub(crate) fn new(blocks: Vec<DyadicBlock>) -> Self {
        Self { blocks }
    }

    /// Number of blocks (4 for INT8 words).
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when the decomposition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterator over all blocks, `DB#0` first.
    pub fn iter(&self) -> std::slice::Iter<'_, DyadicBlock> {
        self.blocks.iter()
    }

    /// Iterator over the Complementary Pattern (non-zero) blocks only.
    ///
    /// These are the blocks the FTA compression keeps; Zero Pattern blocks are
    /// discarded.
    pub fn comp_blocks(&self) -> impl Iterator<Item = &DyadicBlock> {
        self.blocks.iter().filter(|b| !b.is_zero())
    }

    /// Number of Complementary Pattern blocks (equals `φ` of the word).
    #[must_use]
    pub fn comp_count(&self) -> usize {
        self.comp_blocks().count()
    }

    /// Reconstructs the value represented by the blocks.
    #[must_use]
    pub fn value(&self) -> i32 {
        self.blocks.iter().map(DyadicBlock::value).sum()
    }

    /// The blocks as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[DyadicBlock] {
        &self.blocks
    }
}

impl std::ops::Index<usize> for DyadicBlocks {
    type Output = DyadicBlock;

    fn index(&self, index: usize) -> &Self::Output {
        &self.blocks[index]
    }
}

impl<'a> IntoIterator for &'a DyadicBlocks {
    type Item = &'a DyadicBlock;
    type IntoIter = std::slice::Iter<'a, DyadicBlock>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

impl IntoIterator for DyadicBlocks {
    type Item = DyadicBlock;
    type IntoIter = std::vec::IntoIter<DyadicBlock>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.into_iter()
    }
}

impl FromIterator<DyadicBlock> for DyadicBlocks {
    fn from_iter<T: IntoIterator<Item = DyadicBlock>>(iter: T) -> Self {
        Self { blocks: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::CsdWord;

    #[test]
    fn block_values_reconstruct_every_i8() {
        for v in i8::MIN..=i8::MAX {
            let w = CsdWord::from_i8(v);
            assert_eq!(w.dyadic_blocks().value(), i32::from(v), "value {v}");
        }
    }

    #[test]
    fn comp_count_equals_phi() {
        for v in i8::MIN..=i8::MAX {
            let w = CsdWord::from_i8(v);
            assert_eq!(w.dyadic_blocks().comp_count() as u32, w.nonzero_digits());
        }
    }

    #[test]
    fn paper_figure4_example() {
        // f1_th(0) = 0100_0010 (CSD) decomposes into DB#3 = 01 and DB#0 = 10,
        // phi = 2, i.e. 75 % block sparsity on this value is NOT the claim --
        // the claim is two Comp. Pattern blocks out of four.
        let w = CsdWord::from_digits(vec![
            CsdDigit::Zero,
            CsdDigit::PlusOne,
            CsdDigit::Zero,
            CsdDigit::Zero,
            CsdDigit::Zero,
            CsdDigit::Zero,
            CsdDigit::PlusOne,
            CsdDigit::Zero,
        ])
        .unwrap();
        assert_eq!(w.to_i32(), 64 + 2);
        let blocks = w.dyadic_blocks();
        assert_eq!(blocks.comp_count(), 2);
        assert_eq!(blocks[0].pattern(), BlockPattern::Comp { high: true, sign: Sign::Positive });
        assert_eq!(blocks[3].pattern(), BlockPattern::Comp { high: false, sign: Sign::Positive });
        assert_eq!(blocks[1].pattern(), BlockPattern::Zero);
        assert_eq!(blocks[2].pattern(), BlockPattern::Zero);
    }

    #[test]
    fn digit_position_matches_value_shift() {
        let b = DyadicBlock::comp(2, true, Sign::Negative);
        assert_eq!(b.digit_position(), Some(5));
        assert_eq!(b.value(), -32);
        assert_eq!(b.sign(), Some(Sign::Negative));
    }

    #[test]
    fn zero_block_has_no_metadata() {
        let b = DyadicBlock::zero(1);
        assert!(b.is_zero());
        assert_eq!(b.value(), 0);
        assert_eq!(b.digit_position(), None);
        assert_eq!(b.sign(), None);
        assert_eq!(b.cell_state(), None);
    }

    #[test]
    fn cell_state_is_complementary() {
        for (high, _sign) in [(false, Sign::Positive), (true, Sign::Negative)] {
            let b = DyadicBlock::comp(0, high, Sign::Positive);
            let (q, qbar) = b.cell_state().unwrap();
            assert_ne!(q, qbar);
            assert_eq!(qbar, high);
        }
    }

    #[test]
    fn from_digits_rejects_double_nonzero() {
        let err = DyadicBlock::from_digits(1, CsdDigit::PlusOne, CsdDigit::MinusOne).unwrap_err();
        assert_eq!(err, CsdError::NotCanonical { position: 2 });
    }

    #[test]
    fn sign_bit_round_trips() {
        assert_eq!(Sign::from_bit(Sign::Positive.to_bit()), Sign::Positive);
        assert_eq!(Sign::from_bit(Sign::Negative.to_bit()), Sign::Negative);
        assert_eq!(Sign::Positive.factor(), 1);
        assert_eq!(Sign::Negative.factor(), -1);
    }

    #[test]
    fn blocks_collect_from_iterator() {
        let blocks: DyadicBlocks =
            vec![DyadicBlock::zero(0), DyadicBlock::comp(1, false, Sign::Positive)]
                .into_iter()
                .collect();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.value(), 4);
    }

    #[test]
    fn display_shows_index_and_digits() {
        assert_eq!(DyadicBlock::zero(2).to_string(), "DB#2:00");
        assert_eq!(DyadicBlock::comp(3, false, Sign::Negative).to_string(), "DB#3:0-");
        assert_eq!(DyadicBlock::comp(1, true, Sign::Positive).to_string(), "DB#1:+0");
    }
}
