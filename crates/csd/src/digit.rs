//! Single CSD digit.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single canonical-signed-digit value: `-1`, `0` or `+1`.
///
/// The paper writes `-1` as `1̄`. Two adjacent digits of a canonical word are
/// never both non-zero.
///
/// # Examples
///
/// ```
/// use dbpim_csd::CsdDigit;
///
/// assert_eq!(CsdDigit::PlusOne.value(), 1);
/// assert_eq!(CsdDigit::MinusOne.value(), -1);
/// assert!(CsdDigit::Zero.is_zero());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum CsdDigit {
    /// The digit `-1` (written `1̄` in the paper).
    MinusOne,
    /// The digit `0`.
    #[default]
    Zero,
    /// The digit `+1`.
    PlusOne,
}

impl CsdDigit {
    /// Numeric value of the digit (`-1`, `0` or `1`).
    #[must_use]
    pub const fn value(self) -> i32 {
        match self {
            CsdDigit::MinusOne => -1,
            CsdDigit::Zero => 0,
            CsdDigit::PlusOne => 1,
        }
    }

    /// Returns `true` for the zero digit.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        matches!(self, CsdDigit::Zero)
    }

    /// Returns `true` for `+1` or `-1`.
    #[must_use]
    pub const fn is_nonzero(self) -> bool {
        !self.is_zero()
    }

    /// Builds a digit from an integer in `{-1, 0, 1}`.
    ///
    /// Returns `None` for any other value.
    #[must_use]
    pub const fn from_value(value: i32) -> Option<Self> {
        match value {
            -1 => Some(CsdDigit::MinusOne),
            0 => Some(CsdDigit::Zero),
            1 => Some(CsdDigit::PlusOne),
            _ => None,
        }
    }

    /// The arithmetic negation of the digit.
    #[must_use]
    pub const fn negate(self) -> Self {
        match self {
            CsdDigit::MinusOne => CsdDigit::PlusOne,
            CsdDigit::Zero => CsdDigit::Zero,
            CsdDigit::PlusOne => CsdDigit::MinusOne,
        }
    }
}

impl fmt::Display for CsdDigit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdDigit::MinusOne => write!(f, "-"),
            CsdDigit::Zero => write!(f, "0"),
            CsdDigit::PlusOne => write!(f, "1"),
        }
    }
}

impl From<CsdDigit> for i32 {
    fn from(d: CsdDigit) -> Self {
        d.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_value_round_trip() {
        for d in [CsdDigit::MinusOne, CsdDigit::Zero, CsdDigit::PlusOne] {
            assert_eq!(CsdDigit::from_value(d.value()), Some(d));
        }
        assert_eq!(CsdDigit::from_value(2), None);
        assert_eq!(CsdDigit::from_value(-2), None);
    }

    #[test]
    fn negation_is_involutive() {
        for d in [CsdDigit::MinusOne, CsdDigit::Zero, CsdDigit::PlusOne] {
            assert_eq!(d.negate().negate(), d);
            assert_eq!(d.negate().value(), -d.value());
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(CsdDigit::PlusOne.to_string(), "1");
        assert_eq!(CsdDigit::Zero.to_string(), "0");
        assert_eq!(CsdDigit::MinusOne.to_string(), "-");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CsdDigit::default(), CsdDigit::Zero);
    }
}
