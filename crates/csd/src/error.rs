//! Error type for CSD encoding.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding values into CSD form.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsdError {
    /// The requested digit width cannot represent the value.
    WidthTooSmall {
        /// The value that was being encoded.
        value: i32,
        /// The requested number of digit positions.
        width: usize,
        /// The minimum number of digit positions the canonical form needs.
        required: usize,
    },
    /// A zero-digit width was requested.
    ZeroWidth,
    /// A digit sequence violates the canonical (non-adjacent) property.
    NotCanonical {
        /// Index of the lower of the two adjacent non-zero digits.
        position: usize,
    },
    /// A value lies outside the two's-complement range of an operand width.
    ValueOutOfRange {
        /// The value that was being encoded.
        value: i32,
        /// The operand bit width whose range was exceeded.
        bits: u32,
    },
    /// A bit count that is not one of the supported operand widths.
    UnsupportedWidth {
        /// The requested bit count.
        bits: u32,
    },
    /// An operand-width specification that could not be parsed at all.
    InvalidWidthSpec {
        /// The offending input.
        spec: String,
    },
}

impl fmt::Display for CsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdError::WidthTooSmall { value, width, required } => write!(
                f,
                "value {value} needs {required} CSD digits but only {width} were requested"
            ),
            CsdError::ZeroWidth => write!(f, "a CSD word must have at least one digit"),
            CsdError::NotCanonical { position } => {
                write!(f, "adjacent non-zero digits at positions {position} and {}", position + 1)
            }
            CsdError::ValueOutOfRange { value, bits } => {
                write!(f, "value {value} is outside the {bits}-bit two's-complement range")
            }
            CsdError::UnsupportedWidth { bits } => {
                write!(f, "operand width {bits} is not supported (expected 4, 8, 12 or 16)")
            }
            CsdError::InvalidWidthSpec { spec } => {
                write!(f, "`{spec}` is not an operand width (expected e.g. `8` or `int8`)")
            }
        }
    }
}

impl Error for CsdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = CsdError::WidthTooSmall { value: 300, width: 8, required: 10 };
        let msg = err.to_string();
        assert!(msg.contains("300"));
        assert!(msg.contains('8'));
        assert!(msg.contains("10"));
        assert!(msg.chars().next().is_some_and(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CsdError>();
    }
}
