//! Canonical Signed Digit (CSD) encoding and dyadic-block decomposition.
//!
//! This crate implements the algorithmic foundation of the DB-PIM co-design
//! framework (Duan et al., DAC 2024):
//!
//! * [`CsdDigit`] — a single signed digit in `{-1, 0, +1}`.
//! * [`CsdWord`] — a fixed-width canonical signed digit word obtained by
//!   non-adjacent-form recoding of a two's-complement integer. CSD guarantees
//!   that no two adjacent digits are both non-zero and that the number of
//!   non-zero digits is minimal, which raises bit-level sparsity by roughly a
//!   third compared to plain binary.
//! * [`DyadicBlock`] / [`BlockPattern`] — the paper's *dyadic block* sparsity
//!   pattern: an 8-digit CSD word is split into four 2-digit blocks, each of
//!   which is either a *Zero Pattern* (`00`) or a *Complementary Pattern*
//!   (exactly one non-zero digit). A Complementary Pattern block maps onto the
//!   cross-coupled `Q`/`Q̄` pair of a single 6T SRAM cell.
//!
//! # Example
//!
//! ```
//! use dbpim_csd::{CsdWord, BlockPattern};
//!
//! // 0b0111_1101 = 125 recodes to CSD 1000_0(-1)01 (128 - 4 + 1).
//! let w = CsdWord::from_i32(125, 8)?;
//! assert_eq!(w.to_i32(), 125);
//! assert_eq!(w.nonzero_digits(), 3);
//!
//! let blocks = w.dyadic_blocks();
//! assert_eq!(blocks.len(), 4);
//! assert!(matches!(blocks[3].pattern(), BlockPattern::Comp { .. }));
//! # Ok::<(), dbpim_csd::CsdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod digit;
mod error;
mod width;
mod word;

pub use block::{BlockPattern, DyadicBlock, DyadicBlocks, Sign};
pub use digit::CsdDigit;
pub use error::CsdError;
pub use width::OperandWidth;
pub use word::{phi, CsdWord, CSD_WIDTH_I8};

/// Counts the non-zero bits of the plain two's-complement representation of
/// `value` over `width` bits.
///
/// This is the "Ori_Zero" reference statistic in Fig. 2(a) of the paper:
/// bit-level sparsity *before* CSD recoding.
///
/// # Examples
///
/// ```
/// assert_eq!(dbpim_csd::binary_nonzero_bits(0b0101, 8), 2);
/// assert_eq!(dbpim_csd::binary_nonzero_bits(-1, 8), 8);
/// ```
pub fn binary_nonzero_bits(value: i32, width: u32) -> u32 {
    let mask: u32 = if width >= 32 { u32::MAX } else { (1u32 << width) - 1 };
    ((value as u32) & mask).count_ones()
}

/// Counts the non-zero digits of the canonical CSD recoding of `value` when
/// encoded over `width` digit positions.
///
/// This is the "CSD_Zero" statistic in Fig. 2(a): bit-level sparsity after CSD
/// recoding but before the FTA approximation.
///
/// # Errors
///
/// Returns [`CsdError::WidthTooSmall`] when the value cannot be represented in
/// `width` CSD digits.
pub fn csd_nonzero_bits(value: i32, width: u32) -> Result<u32, CsdError> {
    Ok(CsdWord::from_i32(value, width as usize)?.nonzero_digits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_nonzero_counts_masked_width() {
        assert_eq!(binary_nonzero_bits(0, 8), 0);
        assert_eq!(binary_nonzero_bits(127, 8), 7);
        assert_eq!(binary_nonzero_bits(-128, 8), 1);
        assert_eq!(binary_nonzero_bits(-1, 4), 4);
    }

    #[test]
    fn csd_nonzero_never_exceeds_binary_nonzero_plus_one() {
        // CSD is minimal: for all i8 values it uses no more non-zero digits
        // than the plain binary form of |value| does.
        for v in i8::MIN..=i8::MAX {
            let csd = csd_nonzero_bits(v as i32, 8).expect("i8 fits in 8 CSD digits");
            let bin = binary_nonzero_bits(v as i32, 8);
            assert!(csd <= bin + 1, "value {v}: csd {csd} vs binary {bin}");
        }
    }
}
