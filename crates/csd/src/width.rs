//! Operand widths: the precision axis of the CSD pipeline.
//!
//! The paper evaluates DB-PIM at 8b/8b precision, but the dyadic-block
//! machinery is defined for any even digit count. [`OperandWidth`] names the
//! weight precisions the reproduction supports and centralizes every derived
//! quantity the rest of the workspace needs: the two's-complement value
//! range, the dyadic-block count, and the per-cell metadata cost (one sign
//! bit plus enough bits to address a block index).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::CsdError;

/// A supported weight operand width.
///
/// Widths are even so every CSD word splits into whole dyadic blocks, and a
/// `w`-bit two's-complement value always fits in `w` CSD digit positions
/// (verified exhaustively by the cross-width test suite).
///
/// # Examples
///
/// ```
/// use dbpim_csd::OperandWidth;
///
/// let w = OperandWidth::Int12;
/// assert_eq!(w.bits(), 12);
/// assert_eq!(w.blocks(), 6);
/// assert_eq!((w.min_value(), w.max_value()), (-2048, 2047));
/// assert_eq!("12".parse::<OperandWidth>()?, w);
/// # Ok::<(), dbpim_csd::CsdError>(())
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum OperandWidth {
    /// 4-bit weights (two dyadic blocks).
    Int4,
    /// 8-bit weights — the paper's evaluation precision (four dyadic blocks).
    #[default]
    Int8,
    /// 12-bit weights (six dyadic blocks).
    Int12,
    /// 16-bit weights (eight dyadic blocks).
    Int16,
}

impl OperandWidth {
    /// Every supported width, narrowest first.
    #[must_use]
    pub const fn all() -> [OperandWidth; 4] {
        [OperandWidth::Int4, OperandWidth::Int8, OperandWidth::Int12, OperandWidth::Int16]
    }

    /// Bit width of the two's-complement operand.
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            OperandWidth::Int4 => 4,
            OperandWidth::Int8 => 8,
            OperandWidth::Int12 => 12,
            OperandWidth::Int16 => 16,
        }
    }

    /// Number of CSD digit positions of a word at this width (equals
    /// [`bits`](Self::bits): every `w`-bit value has a canonical form of at
    /// most `w` digits).
    #[must_use]
    pub const fn digits(self) -> usize {
        self.bits() as usize
    }

    /// Number of dyadic blocks per word (`digits / 2`).
    #[must_use]
    pub const fn blocks(self) -> usize {
        self.digits() / 2
    }

    /// Smallest representable value, `-2^(bits-1)`.
    #[must_use]
    pub const fn min_value(self) -> i32 {
        -(1 << (self.bits() - 1))
    }

    /// Largest representable value, `2^(bits-1) - 1`.
    #[must_use]
    pub const fn max_value(self) -> i32 {
        (1 << (self.bits() - 1)) - 1
    }

    /// Returns `true` when `value` lies in the width's two's-complement
    /// range.
    #[must_use]
    pub const fn contains(self, value: i32) -> bool {
        value >= self.min_value() && value <= self.max_value()
    }

    /// Bits needed to address a dyadic-block index in the metadata register
    /// file (`ceil(log2(blocks))`).
    #[must_use]
    pub const fn index_bits(self) -> u32 {
        match self {
            OperandWidth::Int4 => 1,
            OperandWidth::Int8 => 2,
            OperandWidth::Int12 | OperandWidth::Int16 => 3,
        }
    }

    /// Metadata bits stored per allocated 6T cell: one sign bit plus the
    /// block index ([`index_bits`](Self::index_bits)). The paper's INT8
    /// layout uses 3 bits.
    #[must_use]
    pub const fn metadata_bits_per_cell(self) -> u32 {
        1 + self.index_bits()
    }

    /// Largest possible non-zero digit count `φ` of a canonical word at this
    /// width (`ceil(digits / 2)`, by the non-adjacency property).
    #[must_use]
    pub const fn max_phi(self) -> u32 {
        self.bits().div_ceil(2)
    }

    /// The width with the given bit count.
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::UnsupportedWidth`] for anything other than 4, 8,
    /// 12 or 16.
    pub const fn from_bits(bits: u32) -> Result<Self, CsdError> {
        match bits {
            4 => Ok(OperandWidth::Int4),
            8 => Ok(OperandWidth::Int8),
            12 => Ok(OperandWidth::Int12),
            16 => Ok(OperandWidth::Int16),
            _ => Err(CsdError::UnsupportedWidth { bits }),
        }
    }

    /// Lower-case display / flag name, e.g. `"int8"`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            OperandWidth::Int4 => "int4",
            OperandWidth::Int8 => "int8",
            OperandWidth::Int12 => "int12",
            OperandWidth::Int16 => "int16",
        }
    }
}

impl fmt::Display for OperandWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OperandWidth {
    type Err = CsdError;

    /// Accepts a bare bit count (`"8"`) or an `int`-prefixed name
    /// (`"int8"`, `"INT8"`), rejecting everything else.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let digits = trimmed
            .strip_prefix("int")
            .or_else(|| trimmed.strip_prefix("INT"))
            .or_else(|| trimmed.strip_prefix("Int"))
            .unwrap_or(trimmed);
        match digits.parse::<u32>() {
            Ok(bits) => Self::from_bits(bits),
            Err(_) => Err(CsdError::InvalidWidthSpec { spec: s.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_consistent() {
        for width in OperandWidth::all() {
            assert_eq!(width.digits(), width.bits() as usize);
            assert_eq!(width.blocks() * 2, width.digits());
            assert_eq!(width.min_value(), -(width.max_value() + 1));
            assert!(width.contains(0));
            assert!(width.contains(width.min_value()));
            assert!(width.contains(width.max_value()));
            assert!(!width.contains(width.max_value() + 1));
            assert!(!width.contains(width.min_value() - 1));
            // index_bits really addresses every block.
            assert!(1usize << width.index_bits() >= width.blocks());
            assert!(1usize << (width.index_bits() - 1) < width.blocks() || width.blocks() == 1);
            assert_eq!(width.metadata_bits_per_cell(), 1 + width.index_bits());
            assert_eq!(Some(width), OperandWidth::from_bits(width.bits()).ok());
        }
        assert_eq!(OperandWidth::Int8.metadata_bits_per_cell(), 3);
        assert_eq!(OperandWidth::default(), OperandWidth::Int8);
    }

    #[test]
    fn ordering_follows_bit_count() {
        let all = OperandWidth::all();
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].bits() < pair[1].bits());
        }
    }

    #[test]
    fn parsing_accepts_numbers_and_names() {
        assert_eq!("4".parse::<OperandWidth>().unwrap(), OperandWidth::Int4);
        assert_eq!("int12".parse::<OperandWidth>().unwrap(), OperandWidth::Int12);
        assert_eq!("INT16".parse::<OperandWidth>().unwrap(), OperandWidth::Int16);
        assert_eq!(" 8 ".parse::<OperandWidth>().unwrap(), OperandWidth::Int8);
        assert_eq!(OperandWidth::Int4.to_string(), "int4");
    }

    #[test]
    fn parsing_rejects_unsupported_and_malformed_specs() {
        assert_eq!("10".parse::<OperandWidth>(), Err(CsdError::UnsupportedWidth { bits: 10 }));
        assert_eq!("0".parse::<OperandWidth>(), Err(CsdError::UnsupportedWidth { bits: 0 }));
        assert!(matches!("wide".parse::<OperandWidth>(), Err(CsdError::InvalidWidthSpec { .. })));
        assert!(matches!("".parse::<OperandWidth>(), Err(CsdError::InvalidWidthSpec { .. })));
        assert!(matches!("-8".parse::<OperandWidth>(), Err(CsdError::InvalidWidthSpec { .. })));
        assert!(OperandWidth::from_bits(32).is_err());
    }

    #[test]
    fn max_phi_matches_the_non_adjacency_bound() {
        assert_eq!(OperandWidth::Int4.max_phi(), 2);
        assert_eq!(OperandWidth::Int8.max_phi(), 4);
        assert_eq!(OperandWidth::Int12.max_phi(), 6);
        assert_eq!(OperandWidth::Int16.max_phi(), 8);
    }
}
