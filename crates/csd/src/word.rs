//! Fixed-width canonical signed digit words.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::block::{DyadicBlock, DyadicBlocks};
use crate::digit::CsdDigit;
use crate::error::CsdError;
use crate::width::OperandWidth;

/// Number of CSD digit positions used for INT8 weights.
///
/// Every value in `[-128, 127]` has a canonical signed-digit form whose most
/// significant non-zero digit sits at position 7 or below, so four dyadic
/// blocks always suffice. This is verified exhaustively by the test suite.
/// Equals [`OperandWidth::Int8.digits()`](OperandWidth::digits).
pub const CSD_WIDTH_I8: usize = OperandWidth::Int8.digits();

/// A canonical signed digit (CSD) word of fixed width.
///
/// Digits are stored least-significant first (`digits()[0]` weighs `2^0`).
/// The word is always canonical: no two adjacent digits are both non-zero and
/// the non-zero digit count is minimal for the represented value.
///
/// # Examples
///
/// ```
/// use dbpim_csd::CsdWord;
///
/// let w = CsdWord::from_i8(125);
/// assert_eq!(w.to_i32(), 125);
/// // 125 = 128 - 4 + 1 -> three non-zero digits instead of six binary ones.
/// assert_eq!(w.nonzero_digits(), 3);
/// assert_eq!(w.to_string(), "1000_0-01");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CsdWord {
    digits: Vec<CsdDigit>,
}

impl CsdWord {
    /// Encodes `value` into a canonical signed digit word of exactly `width`
    /// digit positions using non-adjacent-form recoding.
    ///
    /// # Errors
    ///
    /// * [`CsdError::ZeroWidth`] when `width == 0`.
    /// * [`CsdError::WidthTooSmall`] when the canonical form of `value` needs
    ///   more than `width` digit positions.
    ///
    /// # Examples
    ///
    /// ```
    /// use dbpim_csd::CsdWord;
    ///
    /// let w = CsdWord::from_i32(7, 8)?;
    /// assert_eq!(w.to_i32(), 7);
    /// assert_eq!(w.nonzero_digits(), 2); // 8 - 1
    /// # Ok::<(), dbpim_csd::CsdError>(())
    /// ```
    pub fn from_i32(value: i32, width: usize) -> Result<Self, CsdError> {
        if width == 0 {
            return Err(CsdError::ZeroWidth);
        }
        let naf = non_adjacent_form(i64::from(value));
        if naf.len() > width {
            return Err(CsdError::WidthTooSmall { value, width, required: naf.len() });
        }
        let mut digits = naf;
        digits.resize(width, CsdDigit::Zero);
        Ok(Self { digits })
    }

    /// Encodes an INT8 value into the paper's 8-digit CSD representation.
    ///
    /// This is the `w = 8` instance of a general property: every `w`-bit
    /// two's-complement value has a canonical form of at most `w` digit
    /// positions, so [`CsdWord::encode`] never fails for an in-range value of
    /// any supported [`OperandWidth`]. For `i8` specifically, the input type
    /// already guarantees the range, so this constructor is infallible.
    #[must_use]
    pub fn from_i8(value: i8) -> Self {
        Self::from_i32(i32::from(value), CSD_WIDTH_I8)
            .expect("every i8 value fits in 8 CSD digit positions")
    }

    /// Encodes a value into the canonical word of an operand width.
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::ValueOutOfRange`] when `value` does not fit the
    /// width's two's-complement range. In-range values always encode: a
    /// `w`-bit value needs at most `w` CSD digit positions.
    ///
    /// # Examples
    ///
    /// ```
    /// use dbpim_csd::{CsdWord, OperandWidth};
    ///
    /// let w = CsdWord::encode(-2048, OperandWidth::Int12)?;
    /// assert_eq!(w.width(), 12);
    /// assert_eq!(w.to_i32(), -2048);
    /// assert!(CsdWord::encode(2048, OperandWidth::Int12).is_err());
    /// # Ok::<(), dbpim_csd::CsdError>(())
    /// ```
    pub fn encode(value: i32, width: OperandWidth) -> Result<Self, CsdError> {
        if !width.contains(value) {
            return Err(CsdError::ValueOutOfRange { value, bits: width.bits() });
        }
        Self::from_i32(value, width.digits())
    }

    /// Builds a word from raw digits (least-significant first), validating the
    /// canonical non-adjacency property.
    ///
    /// # Errors
    ///
    /// * [`CsdError::ZeroWidth`] for an empty digit slice.
    /// * [`CsdError::NotCanonical`] when two adjacent digits are both non-zero.
    pub fn from_digits(digits: Vec<CsdDigit>) -> Result<Self, CsdError> {
        if digits.is_empty() {
            return Err(CsdError::ZeroWidth);
        }
        for (i, pair) in digits.windows(2).enumerate() {
            if pair[0].is_nonzero() && pair[1].is_nonzero() {
                return Err(CsdError::NotCanonical { position: i });
            }
        }
        Ok(Self { digits })
    }

    /// The zero word of the given width.
    ///
    /// # Errors
    ///
    /// Returns [`CsdError::ZeroWidth`] when `width == 0`.
    pub fn zero(width: usize) -> Result<Self, CsdError> {
        if width == 0 {
            return Err(CsdError::ZeroWidth);
        }
        Ok(Self { digits: vec![CsdDigit::Zero; width] })
    }

    /// Number of digit positions in the word.
    #[must_use]
    pub fn width(&self) -> usize {
        self.digits.len()
    }

    /// The digits of the word, least-significant first.
    #[must_use]
    pub fn digits(&self) -> &[CsdDigit] {
        &self.digits
    }

    /// Digit at position `pos` (weight `2^pos`), or `None` past the width.
    #[must_use]
    pub fn digit(&self, pos: usize) -> Option<CsdDigit> {
        self.digits.get(pos).copied()
    }

    /// Decodes the word back into an integer.
    #[must_use]
    pub fn to_i32(&self) -> i32 {
        self.digits.iter().enumerate().map(|(i, d)| d.value() << i).sum()
    }

    /// Number of non-zero digits (the paper's `φ`).
    #[must_use]
    pub fn nonzero_digits(&self) -> u32 {
        self.digits.iter().filter(|d| d.is_nonzero()).count() as u32
    }

    /// Returns `true` when every digit is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.digits.iter().all(|d| d.is_zero())
    }

    /// Iterator over `(position, digit)` pairs of the non-zero digits, from
    /// least to most significant.
    pub fn nonzero_positions(&self) -> impl Iterator<Item = (usize, CsdDigit)> + '_ {
        self.digits.iter().copied().enumerate().filter(|(_, d)| d.is_nonzero())
    }

    /// Arithmetic negation (flips every digit); the result is still canonical.
    #[must_use]
    pub fn negated(&self) -> Self {
        Self { digits: self.digits.iter().map(|d| d.negate()).collect() }
    }

    /// Splits the word into dyadic blocks of two digit positions each.
    ///
    /// Block `k` covers positions `2k` (low) and `2k + 1` (high). For the
    /// 8-digit INT8 encoding this yields the paper's four blocks
    /// `DB#3 | DB#2 | DB#1 | DB#0`. Odd-width words are conceptually
    /// zero-padded with one extra most-significant digit.
    #[must_use]
    pub fn dyadic_blocks(&self) -> DyadicBlocks {
        let block_count = self.digits.len().div_ceil(2);
        let blocks = (0..block_count)
            .map(|k| {
                let lo = self.digits[2 * k];
                let hi = self.digits.get(2 * k + 1).copied().unwrap_or(CsdDigit::Zero);
                DyadicBlock::from_digits(k as u8, lo, hi)
                    .expect("canonical words never have two non-zero digits in one block")
            })
            .collect();
        DyadicBlocks::new(blocks)
    }
}

impl fmt::Display for CsdWord {
    /// Formats most-significant digit first, with `_` every four digits,
    /// mirroring the `1000_0-01` notation used in the paper (with `-` for
    /// `1̄`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.digits.len();
        for (printed, pos) in (0..n).rev().enumerate() {
            if printed > 0 && (n - printed).is_multiple_of(4) {
                write!(f, "_")?;
            }
            write!(f, "{}", self.digits[pos])?;
        }
        Ok(())
    }
}

impl From<i8> for CsdWord {
    fn from(value: i8) -> Self {
        Self::from_i8(value)
    }
}

/// Number of non-zero digits in the canonical signed-digit form of `value`
/// (the paper's `φ`), independent of any word width.
///
/// Unlike [`CsdWord::encode`], this never fails: the non-adjacent form of any
/// `i32` is well defined, and padding a word with zero digits does not change
/// its non-zero digit count.
///
/// # Examples
///
/// ```
/// assert_eq!(dbpim_csd::phi(0), 0);
/// assert_eq!(dbpim_csd::phi(125), 3); // 128 - 4 + 1
/// assert_eq!(dbpim_csd::phi(-1), 1);
/// ```
#[must_use]
pub fn phi(value: i32) -> u32 {
    non_adjacent_form(i64::from(value)).iter().filter(|d| d.is_nonzero()).count() as u32
}

/// Canonical non-adjacent-form recoding (least-significant digit first).
///
/// The returned vector has no trailing zero digits.
fn non_adjacent_form(mut n: i64) -> Vec<CsdDigit> {
    let mut digits = Vec::new();
    while n != 0 {
        if n & 1 != 0 {
            // Choose +1 or -1 so that the remaining value is divisible by 4,
            // which guarantees the next digit is zero (non-adjacency).
            let rem = n.rem_euclid(4);
            let d = if rem == 1 { 1 } else { -1 };
            digits.push(CsdDigit::from_value(d as i32).expect("d is +/-1"));
            n -= d;
        } else {
            digits.push(CsdDigit::Zero);
        }
        n /= 2;
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_i8_round_trips_in_eight_digits() {
        for v in i8::MIN..=i8::MAX {
            let w = CsdWord::from_i8(v);
            assert_eq!(w.width(), CSD_WIDTH_I8);
            assert_eq!(w.to_i32(), i32::from(v), "round trip failed for {v}");
        }
    }

    #[test]
    fn every_i8_word_is_canonical() {
        for v in i8::MIN..=i8::MAX {
            let w = CsdWord::from_i8(v);
            for pair in w.digits().windows(2) {
                assert!(
                    !(pair[0].is_nonzero() && pair[1].is_nonzero()),
                    "adjacent non-zero digits for value {v}"
                );
            }
        }
    }

    #[test]
    fn csd_uses_no_more_nonzero_digits_than_binary() {
        for v in 0..=i8::MAX {
            let w = CsdWord::from_i8(v);
            let binary = (v as u8).count_ones();
            assert!(w.nonzero_digits() <= binary, "value {v}");
        }
    }

    #[test]
    fn paper_example_125_has_three_nonzero_digits() {
        // The paper recodes 0b0111_1101 into 1000_0(-1)01.
        let w = CsdWord::from_i8(125);
        assert_eq!(w.nonzero_digits(), 3);
        assert_eq!(w.to_string(), "1000_0-01");
    }

    #[test]
    fn width_too_small_is_reported() {
        let err = CsdWord::from_i32(300, 4).unwrap_err();
        assert!(matches!(err, CsdError::WidthTooSmall { value: 300, width: 4, .. }));
    }

    #[test]
    fn zero_width_is_rejected() {
        assert_eq!(CsdWord::from_i32(0, 0).unwrap_err(), CsdError::ZeroWidth);
        assert_eq!(CsdWord::zero(0).unwrap_err(), CsdError::ZeroWidth);
    }

    #[test]
    fn from_digits_rejects_adjacent_nonzero() {
        let err = CsdWord::from_digits(vec![CsdDigit::PlusOne, CsdDigit::MinusOne]).unwrap_err();
        assert_eq!(err, CsdError::NotCanonical { position: 0 });
    }

    #[test]
    fn negation_decodes_to_negated_value() {
        for v in -128i32..=127 {
            let w = CsdWord::from_i32(v, 9).expect("9 digits fit all i8 and -(-128)");
            assert_eq!(w.negated().to_i32(), -v);
        }
    }

    #[test]
    fn nonzero_positions_matches_count() {
        let w = CsdWord::from_i8(42);
        assert_eq!(w.nonzero_positions().count() as u32, w.nonzero_digits());
        assert_eq!(w.nonzero_positions().map(|(p, d)| d.value() << p).sum::<i32>(), 42);
    }

    #[test]
    fn zero_word_is_zero() {
        let w = CsdWord::zero(8).unwrap();
        assert!(w.is_zero());
        assert_eq!(w.to_i32(), 0);
        assert_eq!(w.nonzero_digits(), 0);
    }

    #[test]
    fn wider_words_accept_i16_range() {
        for v in [-32768, -12345, -1, 0, 1, 9999, 32767] {
            let w = CsdWord::from_i32(v, 17).unwrap();
            assert_eq!(w.to_i32(), v);
        }
    }

    #[test]
    fn from_i32_width_overflow_errors_at_every_width_boundary() {
        // For every supported width, the extreme in-range magnitudes encode
        // and the first out-of-range NAF lengths are reported as errors
        // rather than panicking (the generalization of the `from_i8`
        // "never fails" claim).
        for width in OperandWidth::all() {
            let digits = width.digits();
            let max = width.max_value();
            let min = width.min_value();
            assert_eq!(CsdWord::from_i32(max, digits).unwrap().to_i32(), max);
            assert_eq!(CsdWord::from_i32(min, digits).unwrap().to_i32(), min);
            // One digit fewer cannot hold the extreme magnitudes.
            assert!(matches!(
                CsdWord::from_i32(min, digits - 1),
                Err(CsdError::WidthTooSmall { required, .. }) if required == digits
            ));
            // Slightly out-of-range values like `max + 1 = 2^(w-1)` or
            // `min - 1` still fit `w` digit positions (CSD reaches past the
            // two's-complement range); only `encode`'s range check rejects
            // them. `±2^w` genuinely overflows the digit count.
            assert_eq!(CsdWord::from_i32(max + 1, digits).unwrap().to_i32(), max + 1);
            assert_eq!(CsdWord::from_i32(min - 1, digits).unwrap().to_i32(), min - 1);
            for value in [1 << digits, -(1 << digits)] {
                assert_eq!(
                    CsdWord::from_i32(value, digits),
                    Err(CsdError::WidthTooSmall { value, width: digits, required: digits + 1 })
                );
            }
        }
        // Spot-check a reported minimum width away from a power of two: the
        // canonical form of 300 = 256 + 64 - 16 - 4 needs digit position 8.
        let err = CsdWord::from_i32(300, 8).unwrap_err();
        assert_eq!(err, CsdError::WidthTooSmall { value: 300, width: 8, required: 9 });
    }

    #[test]
    fn encode_enforces_the_twos_complement_range() {
        for width in OperandWidth::all() {
            for value in [width.min_value(), -1, 0, 1, width.max_value()] {
                let word = CsdWord::encode(value, width).unwrap();
                assert_eq!(word.width(), width.digits());
                assert_eq!(word.to_i32(), value);
            }
            for value in [width.min_value() - 1, width.max_value() + 1] {
                assert_eq!(
                    CsdWord::encode(value, width),
                    Err(CsdError::ValueOutOfRange { value, bits: width.bits() })
                );
            }
        }
        // 2^(w-1) is representable in w digits but not in the w-bit range:
        // the range check must reject it even though the NAF would fit.
        assert!(CsdWord::from_i32(128, 8).is_ok());
        assert!(CsdWord::encode(128, OperandWidth::Int8).is_err());
    }

    #[test]
    fn phi_matches_word_nonzero_digits() {
        for v in i8::MIN..=i8::MAX {
            assert_eq!(phi(i32::from(v)), CsdWord::from_i8(v).nonzero_digits());
        }
        for v in [-32768, -4096, -100, 4095, 32767] {
            let word = CsdWord::encode(v, OperandWidth::Int16).unwrap();
            assert_eq!(phi(v), word.nonzero_digits(), "value {v}");
        }
    }

    #[test]
    fn dyadic_blocks_cover_all_positions() {
        let w = CsdWord::from_i8(-77);
        let blocks = w.dyadic_blocks();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks.value(), -77);
    }
}
