//! Property tests for the CSD encoding and dyadic-block decomposition.
//!
//! The original suite used `proptest`; the offline build environment cannot
//! fetch it, so the i8/i16 properties are checked exhaustively (stronger
//! than sampling) and the bounded-i32 round trip walks a fixed stride-61
//! lattice over the former proptest domain (deterministic, same order of
//! case count as the random suite).

use dbpim_csd::{binary_nonzero_bits, BlockPattern, CsdWord, CSD_WIDTH_I8};

/// Encoding then decoding any i8 value is the identity.
#[test]
fn i8_round_trip() {
    for v in i8::MIN..=i8::MAX {
        let w = CsdWord::from_i8(v);
        assert_eq!(w.to_i32(), i32::from(v));
        assert_eq!(w.width(), CSD_WIDTH_I8);
    }
}

/// Any i32 that fits in the requested width round-trips.
#[test]
fn i32_round_trip() {
    for v in (-100_000i32..100_000).step_by(61) {
        for extra in 0usize..8 {
            let width = 20 + extra;
            let w = CsdWord::from_i32(v, width).unwrap();
            assert_eq!(w.to_i32(), v, "value {v} at width {width}");
        }
    }
}

/// The canonical property holds for arbitrary values: no adjacent non-zero
/// digits.
#[test]
fn non_adjacent_form() {
    for v in i16::MIN..=i16::MAX {
        let w = CsdWord::from_i32(i32::from(v), 18).unwrap();
        for pair in w.digits().windows(2) {
            assert!(
                !(pair[0].is_nonzero() && pair[1].is_nonzero()),
                "adjacent non-zero digits for {v}"
            );
        }
    }
}

/// CSD never uses more non-zero digits than the plain binary form of the
/// magnitude (minimality; the "33 % fewer non-zero bits on average" claim is
/// a consequence).
#[test]
fn csd_is_minimal_vs_binary_magnitude() {
    for v in 0i32..=127 {
        let w = CsdWord::from_i32(v, 8).unwrap();
        assert!(w.nonzero_digits() <= binary_nonzero_bits(v, 8), "value {v}");
    }
}

/// The dyadic block decomposition always reconstructs the original value and
/// its Comp.-block count equals the word's non-zero digit count.
#[test]
fn dyadic_blocks_reconstruct() {
    for v in i8::MIN..=i8::MAX {
        let w = CsdWord::from_i8(v);
        let blocks = w.dyadic_blocks();
        assert_eq!(blocks.value(), i32::from(v));
        assert_eq!(blocks.comp_count() as u32, w.nonzero_digits());
        assert_eq!(blocks.len(), 4);
    }
}

/// Every Comp. Pattern block stores a complementary (Q, Q̄) pair.
#[test]
fn comp_blocks_store_complementary_state() {
    for v in i8::MIN..=i8::MAX {
        let w = CsdWord::from_i8(v);
        for block in w.dyadic_blocks().comp_blocks() {
            let (q, qbar) = block.cell_state().unwrap();
            assert_ne!(q, qbar, "value {v}");
            assert!(matches!(block.pattern(), BlockPattern::Comp { .. }));
        }
    }
}

/// Negation flips the decoded value and keeps the digit count.
#[test]
fn negation_mirrors_value() {
    for v in -127i8..=127 {
        let w = CsdWord::from_i8(v);
        let n = w.negated();
        assert_eq!(n.to_i32(), -i32::from(v));
        assert_eq!(n.nonzero_digits(), w.nonzero_digits());
    }
}

/// φ of an INT8 value never exceeds 4 (one non-zero digit per dyadic block at
/// most).
#[test]
fn phi_at_most_four() {
    for v in i8::MIN..=i8::MAX {
        assert!(CsdWord::from_i8(v).nonzero_digits() <= 4);
    }
}
