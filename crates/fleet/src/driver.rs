//! The fleet driver: claims, executes, retries and merges.
//!
//! [`FleetDriver::run`] turns a [`DseSpec`] into one merged [`DseReport`]
//! by fanning the spec's points out across N workers:
//!
//! 1. **Plan** — the canonical point list is partitioned into one shard per
//!    worker by the configured [`ShardStrategy`] (a pure function, so every
//!    resume derives the same plan).
//! 2. **Resume** — existing `shard-*.json` snapshots in the snapshot
//!    directory are adopted point-by-point; a torn or unparsable file is
//!    skipped with a diagnostic, a snapshot answering a *different spec* is
//!    a hard error.
//! 3. **Execute** — workers claim points from their own shard first and
//!    *steal* from the largest backlog once their shard drains (straggler
//!    reassignment). A failed attempt requeues the point for anyone else;
//!    repeated failures trigger a heartbeat and retire the worker; a point
//!    failing [`FleetConfig::max_point_attempts`] times aborts the run.
//!    Each shard's partial report is re-snapshotted as it grows, so a
//!    killed fleet resumes with at most the in-flight points lost.
//! 4. **Merge** — the shard reports merge through the spec-checked,
//!    key-deduplicating [`DseReport::merge`]; the result is verified to
//!    cover every point exactly once and is bit-identical (timestamps
//!    aside) to a single [`DseDriver`](db_pim::DseDriver) run —
//!    `tests/fleet_sharding.rs` asserts exactly that.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use db_pim::dse::unix_time_ms;
use db_pim::{
    BatchRunner, DsePoint, DsePointKey, DseReport, DseSpec, PipelineConfig, PipelineError,
};

use crate::shard::{ShardPlan, ShardStrategy};
use crate::worker::{
    JobContext, LocalExecutor, PointExecutor, PointJob, RemoteExecutor, WorkerSpec,
};

/// A fleet-level failure.
#[derive(Debug)]
pub enum FleetError {
    /// The spec or pipeline configuration is unusable.
    Spec(PipelineError),
    /// The configuration names no workers.
    NoWorkers,
    /// A shard snapshot in the snapshot directory answers a different spec;
    /// resuming would silently mix incompatible results.
    SnapshotSpecMismatch {
        /// The offending snapshot.
        path: PathBuf,
    },
    /// One point kept failing across workers and retries.
    PointFailed {
        /// Human-readable identity of the point.
        point: String,
        /// Attempts made before giving up.
        attempts: usize,
        /// The last failure.
        last_error: String,
    },
    /// Every worker retired before the spec was covered.
    Stalled {
        /// Points completed (and persisted) before the stall.
        completed: usize,
        /// Points the spec enumerates.
        total: usize,
        /// Worker / snapshot diagnostics accumulated during the run.
        diagnostics: Vec<String>,
    },
    /// A final shard or merged snapshot could not be persisted.
    Persist(PipelineError),
    /// The merged report failed its exactly-once coverage check (a bug, not
    /// an operational failure — surfaced loudly instead of returning a
    /// silently short report).
    Incomplete {
        /// Points present in the merged report.
        merged: usize,
        /// Points the spec enumerates.
        total: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spec(e) => write!(f, "unusable fleet spec: {e}"),
            FleetError::NoWorkers => write!(f, "fleet has no workers (local or remote)"),
            FleetError::SnapshotSpecMismatch { path } => write!(
                f,
                "shard snapshot {} answers a different spec; refusing to resume",
                path.display()
            ),
            FleetError::PointFailed { point, attempts, last_error } => {
                write!(f, "point {point} failed {attempts} attempts; last error: {last_error}")
            }
            FleetError::Stalled { completed, total, diagnostics } => write!(
                f,
                "fleet stalled at {completed}/{total} points with no live workers ({})",
                diagnostics.join("; ")
            ),
            FleetError::Persist(e) => write!(f, "cannot persist fleet snapshot: {e}"),
            FleetError::Incomplete { merged, total } => write!(
                f,
                "merged report covers {merged} of {total} points despite a completed run \
                 (fleet bookkeeping bug)"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Progress events a fleet run emits (stderr narration in `dbpim-fleet`,
/// deterministic triggers in the test suite).
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A worker connected / initialized and is claiming points.
    WorkerReady {
        /// Worker index into [`FleetConfig::workers`].
        worker: usize,
        /// Human-readable backend description.
        label: String,
    },
    /// A worker gave up after repeated failures; its claimed work was
    /// requeued for the survivors.
    WorkerRetired {
        /// Worker index.
        worker: usize,
        /// Human-readable backend description.
        label: String,
        /// Why it retired.
        reason: String,
    },
    /// A point completed.
    PointDone {
        /// Worker index that computed it.
        worker: usize,
        /// Shard the point belongs to.
        shard: usize,
        /// `true` when the point was stolen from another worker's shard.
        stolen: bool,
        /// Points completed so far (including resumed ones).
        completed: usize,
        /// Points the spec enumerates.
        total: usize,
    },
    /// A point attempt failed and was requeued.
    PointRetried {
        /// Worker index that failed it.
        worker: usize,
        /// Shard the point belongs to.
        shard: usize,
        /// Attempt number that just failed (1-based).
        attempt: usize,
        /// The failure.
        error: String,
    },
    /// A snapshot file in the shard directory was unreadable and skipped.
    SnapshotSkipped {
        /// The skipped file.
        path: PathBuf,
        /// Why it was skipped.
        reason: String,
    },
}

/// Per-worker outcome counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Human-readable backend description (`local` / `remote(addr)`).
    pub label: String,
    /// Points this worker completed.
    pub points: usize,
    /// Why the worker retired, when it did.
    pub retired: Option<String>,
}

/// Aggregate outcome counters of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// One entry per configured worker.
    pub workers: Vec<WorkerStats>,
    /// Points adopted from shard snapshots instead of recomputed.
    pub resumed_points: usize,
    /// Points computed fresh this run.
    pub fresh_points: usize,
    /// Points completed by a worker other than their shard's initial owner
    /// (straggler reassignment).
    pub reassigned_points: usize,
    /// Failed attempts that were requeued.
    pub retried_attempts: usize,
    /// Diagnostics for snapshots that were skipped or failed to save.
    pub diagnostics: Vec<String>,
    /// Wall-time distribution of fresh point executions across every
    /// worker (log₂-bucketed; resumed points are not sampled).
    pub point_latency: dbpim_trace::LatencyHistogram,
}

/// The merged report plus the run's bookkeeping.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The merged, dedup-verified report — `results_match` a single-driver
    /// run of the same spec.
    pub report: DseReport,
    /// Run statistics.
    pub stats: FleetStats,
}

/// Configuration of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The pipeline configuration local workers run and remote daemons are
    /// assumed to run (results are only bit-identical when they match).
    pub pipeline: PipelineConfig,
    /// The worker roster; one shard is planned per worker.
    pub workers: Vec<WorkerSpec>,
    /// How points are partitioned into shards.
    pub strategy: ShardStrategy,
    /// Directory for per-shard snapshots (`shard-NNN.json`) and the merged
    /// report (`merged.json`); `None` disables persistence and resume.
    pub snapshot_dir: Option<PathBuf>,
    /// Identifier shard-tagged remote requests carry (shows up in
    /// `dbpim-cli shard-status`).
    pub fleet_id: String,
    /// Shared secret presented to every remote daemon on (re)connect.
    /// Required when the endpoints run `dbpim-served --auth-token`; open
    /// daemons accept any token, so setting it is always safe.
    pub auth_token: Option<String>,
    /// Per-point remote deadline *and* response timeout — the failure
    /// detector for wedged or dead daemons.
    pub point_timeout: Duration,
    /// Failed attempts per point before the whole run aborts.
    pub max_point_attempts: usize,
    /// Consecutive failures before a worker must pass a heartbeat to keep
    /// claiming points.
    pub worker_failure_limit: usize,
    /// New points per shard between snapshot saves (default 1: maximum
    /// durability). Each save reserializes the shard's whole entry list, so
    /// on grids approaching the 4096-point cap a larger interval trades a
    /// little resume work for O(n²/k) instead of O(n²) snapshot I/O. The
    /// final authoritative save always happens regardless.
    pub save_every: usize,
}

impl FleetConfig {
    /// A configuration with the given roster and every knob at its default:
    /// round-robin sharding, no snapshots, a 120 s point timeout, 3
    /// attempts per point, heartbeat after 2 consecutive worker failures.
    #[must_use]
    pub fn new(pipeline: PipelineConfig, workers: Vec<WorkerSpec>) -> Self {
        Self {
            pipeline,
            workers,
            strategy: ShardStrategy::default(),
            snapshot_dir: None,
            fleet_id: format!("fleet-{}", unix_time_ms()),
            auth_token: None,
            point_timeout: Duration::from_secs(120),
            max_point_attempts: 3,
            worker_failure_limit: 2,
            save_every: 1,
        }
    }

    /// Sets the shard strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables snapshot persistence and resume under `dir`.
    #[must_use]
    pub fn with_snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Overrides the fleet identifier.
    #[must_use]
    pub fn with_fleet_id(mut self, fleet_id: impl Into<String>) -> Self {
        self.fleet_id = fleet_id.into();
        self
    }

    /// Sets the shared secret presented to remote daemons.
    #[must_use]
    pub fn with_auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Overrides the per-point timeout / remote deadline.
    #[must_use]
    pub fn with_point_timeout(mut self, timeout: Duration) -> Self {
        self.point_timeout = timeout;
        self
    }

    /// Overrides the per-point attempt budget (clamped to at least one).
    #[must_use]
    pub fn with_max_point_attempts(mut self, attempts: usize) -> Self {
        self.max_point_attempts = attempts.max(1);
        self
    }

    /// Overrides the per-shard snapshot interval (clamped to at least one).
    #[must_use]
    pub fn with_save_every(mut self, points: usize) -> Self {
        self.save_every = points.max(1);
        self
    }
}

/// Shared mutable state of one run (behind a mutex; the condvar wakes
/// waiting workers on requeues, completions and aborts).
struct FleetState {
    /// Per-shard queues of point indices not yet completed or claimed.
    pending: Vec<VecDeque<usize>>,
    /// Claimed-but-unfinished points.
    in_flight: usize,
    /// Completed point keys (exactly-once bookkeeping).
    done: HashSet<DsePointKey>,
    /// Completed entries per owning shard.
    shard_entries: Vec<Vec<db_pim::DseEntry>>,
    /// Failed attempts per point index.
    attempts: HashMap<usize, usize>,
    /// First fatal error; set once, aborts every worker.
    aborted: Option<FleetError>,
    fresh: usize,
    reassigned: usize,
    retried: usize,
    worker_points: Vec<usize>,
    worker_retired: Vec<Option<String>>,
    diagnostics: Vec<String>,
    /// Per-point wall-time distribution across every worker (fresh
    /// executions only; adopted snapshot points cost nothing).
    point_latency: dbpim_trace::LatencyHistogram,
}

impl FleetState {
    /// Claims the next point for `worker`: its own shard first, then the
    /// largest remaining backlog (straggler reassignment). Returns the
    /// point index, its owning shard and whether it was stolen.
    fn claim(&mut self, worker: usize) -> Option<(usize, usize, bool)> {
        if let Some(point) = self.pending.get_mut(worker).and_then(VecDeque::pop_front) {
            return Some((point, worker, false));
        }
        let victim = (0..self.pending.len())
            .filter(|&s| !self.pending[s].is_empty())
            .max_by_key(|&s| (self.pending[s].len(), usize::MAX - s))?;
        let point = self.pending[victim].pop_front().expect("victim shard is non-empty");
        Some((point, victim, true))
    }
}

/// A progress callback (called from worker threads).
type FleetObserver = Box<dyn Fn(&FleetEvent) + Send + Sync>;

/// The orchestrator. See the [module docs](self) for the lifecycle.
pub struct FleetDriver {
    config: FleetConfig,
    observer: Option<FleetObserver>,
}

impl FleetDriver {
    /// Creates a driver.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        Self { config, observer: None }
    }

    /// Registers a progress observer (called from worker threads).
    #[must_use]
    pub fn with_observer(mut self, observer: impl Fn(&FleetEvent) + Send + Sync + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    fn emit(&self, event: &FleetEvent) {
        if let Some(observer) = &self.observer {
            observer(event);
        }
    }

    /// Runs (or resumes) the fleet over `spec` and returns the merged
    /// report with run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Spec`] for unusable specs/configurations,
    /// [`FleetError::SnapshotSpecMismatch`] when the snapshot directory
    /// holds a foreign shard, [`FleetError::PointFailed`] when a point
    /// exhausts its attempts, [`FleetError::Stalled`] when every worker
    /// retires early, and [`FleetError::Persist`] when final snapshots
    /// cannot be written.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, spec: &DseSpec) -> Result<FleetOutcome, FleetError> {
        if self.config.workers.is_empty() {
            return Err(FleetError::NoWorkers);
        }
        self.config.pipeline.validate().map_err(FleetError::Spec)?;
        let points = spec
            .points(self.config.pipeline.operand_width, self.config.pipeline.pruning)
            .map_err(FleetError::Spec)?;
        let _span = dbpim_trace::span!(
            "fleet.run",
            fleet = self.config.fleet_id,
            points = points.len(),
            workers = self.config.workers.len(),
        );
        let plan = ShardPlan::partition(&points, self.config.workers.len(), self.config.strategy);
        let owners = plan.owners();
        let key_to_index: HashMap<DsePointKey, usize> =
            points.iter().enumerate().map(|(i, p)| (p.canonical_key(), i)).collect();

        let context = JobContext {
            sparsity: spec.sparsity.clone(),
            unique_sparsity: spec.unique_sparsity(),
            fidelity: spec.fidelity,
            fleet: self.config.fleet_id.clone(),
            shards: plan.shards.len(),
        };

        let mut state = FleetState {
            pending: vec![VecDeque::new(); plan.shards.len()],
            in_flight: 0,
            done: HashSet::new(),
            shard_entries: vec![Vec::new(); plan.shards.len()],
            attempts: HashMap::new(),
            aborted: None,
            fresh: 0,
            reassigned: 0,
            retried: 0,
            worker_points: vec![0; self.config.workers.len()],
            worker_retired: vec![None; self.config.workers.len()],
            diagnostics: Vec::new(),
            point_latency: dbpim_trace::LatencyHistogram::new(),
        };

        // Adopt whatever previous shard snapshots already computed. Entries
        // are re-homed into the *current* plan's shards, so resuming with a
        // different worker count (or strategy) still reuses every point.
        if let Some(dir) = &self.config.snapshot_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                FleetError::Persist(PipelineError::BadConfig {
                    reason: format!("cannot create snapshot dir {}: {e}", dir.display()),
                })
            })?;
            for path in shard_snapshot_files(dir) {
                match DseReport::load(&path) {
                    Err(e) => {
                        let reason = e.to_string();
                        state
                            .diagnostics
                            .push(format!("skipped snapshot {}: {reason}", path.display()));
                        self.emit(&FleetEvent::SnapshotSkipped { path, reason });
                    }
                    Ok(report) if report.spec != *spec => {
                        return Err(FleetError::SnapshotSpecMismatch { path });
                    }
                    Ok(report) => {
                        for entry in report.entries {
                            let key = entry.canonical_key();
                            let Some(&index) = key_to_index.get(&key) else { continue };
                            if state.done.insert(key) {
                                state.shard_entries[owners[index]].push(entry);
                            }
                        }
                    }
                }
            }
        }
        let resumed = state.done.len();
        for shard in &plan.shards {
            for &point in &shard.points {
                if !state.done.contains(&points[point].canonical_key()) {
                    state.pending[shard.id].push_back(point);
                }
            }
        }

        // One warm in-process runner shared by every local worker: the
        // session layer's single-flight cache means N local workers build
        // each (model, width) artifact set exactly once between them.
        let local_runner: Option<Arc<BatchRunner>> =
            if self.config.workers.contains(&WorkerSpec::Local) {
                Some(Arc::new(BatchRunner::new(self.config.pipeline).map_err(FleetError::Spec)?))
            } else {
                None
            };

        let shard_sizes: Vec<usize> = plan.shards.iter().map(|s| s.points.len()).collect();
        let sync = (Mutex::new(state), Condvar::new());
        // Per-shard snapshot serialization: each slot holds the entry count
        // of the newest snapshot written for that shard. Saves happen
        // outside the fleet-state lock, so without this two workers
        // completing points of one shard could persist out of order and
        // leave a *stale* snapshot on disk — costing a resumed run
        // already-completed points.
        let save_versions: Vec<Mutex<usize>> = plan.shards.iter().map(|_| Mutex::new(0)).collect();
        let start = Instant::now();

        std::thread::scope(|scope| {
            for (worker, worker_spec) in self.config.workers.iter().enumerate() {
                let sync = &sync;
                let context = &context;
                let points = &points;
                let owners = &owners;
                let shard_sizes = &shard_sizes;
                let save_versions = &save_versions;
                let local_runner = local_runner.clone();
                scope.spawn(move || {
                    self.worker_loop(
                        worker,
                        worker_spec,
                        local_runner,
                        sync,
                        context,
                        points,
                        owners,
                        shard_sizes,
                        save_versions,
                        spec,
                    );
                });
            }
        });

        let state = sync.0.into_inner().expect("no worker panicked with the state lock");
        if let Some(error) = state.aborted {
            return Err(error);
        }
        if state.done.len() < points.len() {
            return Err(FleetError::Stalled {
                completed: state.done.len(),
                total: points.len(),
                diagnostics: state.diagnostics,
            });
        }

        // Final authoritative snapshots, then the spec-checked dedup merge.
        let mut merged = DseReport::empty(spec.clone(), points.len());
        for shard in &plan.shards {
            let report = shard_report(spec, points.len(), &state.shard_entries[shard.id]);
            if let Some(dir) = &self.config.snapshot_dir {
                report.save(shard_snapshot_path(dir, shard.id)).map_err(FleetError::Persist)?;
            }
            merged = merged.merge(report).map_err(FleetError::Spec)?;
        }
        merged.fresh_points = state.fresh;
        merged.wall_time = start.elapsed();
        merged.saved_at_ms = unix_time_ms();
        if let Some(dir) = &self.config.snapshot_dir {
            merged.save(dir.join("merged.json")).map_err(FleetError::Persist)?;
        }

        // Exactly-once verification: the merge must cover every point of
        // the spec, once.
        let merged_keys: HashSet<DsePointKey> =
            merged.entries.iter().map(db_pim::DseEntry::canonical_key).collect();
        if merged.entries.len() != points.len()
            || merged_keys.len() != points.len()
            || !points.iter().all(|p| merged_keys.contains(&p.canonical_key()))
        {
            return Err(FleetError::Incomplete {
                merged: merged.entries.len(),
                total: points.len(),
            });
        }

        let stats = FleetStats {
            workers: self
                .config
                .workers
                .iter()
                .enumerate()
                .map(|(w, spec)| WorkerStats {
                    label: spec.to_string(),
                    points: state.worker_points[w],
                    retired: state.worker_retired[w].clone(),
                })
                .collect(),
            resumed_points: resumed,
            fresh_points: state.fresh,
            reassigned_points: state.reassigned,
            retried_attempts: state.retried,
            diagnostics: state.diagnostics,
            point_latency: state.point_latency,
        };
        Ok(FleetOutcome { report: merged, stats })
    }

    /// One worker's life: initialize a backend, then claim–execute–report
    /// until the run completes, aborts, or the worker retires.
    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &self,
        worker: usize,
        worker_spec: &WorkerSpec,
        local_runner: Option<Arc<BatchRunner>>,
        sync: &(Mutex<FleetState>, Condvar),
        context: &JobContext,
        points: &[DsePoint],
        owners: &[usize],
        shard_sizes: &[usize],
        save_versions: &[Mutex<usize>],
        spec: &DseSpec,
    ) {
        let (mutex, cv) = sync;
        let label = worker_spec.to_string();
        let _span = dbpim_trace::span!("fleet.worker", worker = worker, backend = label);
        let retire = |reason: String| {
            let mut state = mutex.lock().expect("fleet state lock");
            state.diagnostics.push(format!("worker {worker} ({label}) retired: {reason}"));
            state.worker_retired[worker] = Some(reason.clone());
            drop(state);
            cv.notify_all();
            self.emit(&FleetEvent::WorkerRetired { worker, label: label.clone(), reason });
        };

        let mut executor: Box<dyn PointExecutor> = match worker_spec {
            WorkerSpec::Local => Box::new(LocalExecutor {
                runner: local_runner.expect("a local worker implies a shared runner"),
            }),
            WorkerSpec::Remote(addr) => {
                let mut remote = RemoteExecutor::new(
                    addr.clone(),
                    self.config.point_timeout,
                    self.config.auth_token.clone(),
                );
                // Fail fast on an endpoint that was never alive: the
                // heartbeat is a connect + version-checked ping.
                if let Err(reason) = remote.heartbeat() {
                    retire(reason);
                    return;
                }
                Box::new(remote)
            }
        };
        self.emit(&FleetEvent::WorkerReady { worker, label: label.clone() });

        let mut consecutive_failures = 0usize;
        loop {
            // Claim the next point (or learn that the run is over).
            let claimed = {
                let mut state = mutex.lock().expect("fleet state lock");
                loop {
                    if state.aborted.is_some() {
                        return;
                    }
                    if let Some((point, shard, stolen)) = state.claim(worker) {
                        state.in_flight += 1;
                        if stolen {
                            state.reassigned += 1;
                        }
                        break Some((point, shard, stolen));
                    }
                    if state.in_flight == 0 {
                        // Nothing pending, nothing running: the run is done
                        // (or stalled — the driver decides after the join).
                        cv.notify_all();
                        break None;
                    }
                    let (next, _timeout) = cv
                        .wait_timeout(state, Duration::from_millis(100))
                        .expect("fleet state lock");
                    state = next;
                }
            };
            let Some((point_index, shard, stolen)) = claimed else { return };

            let job =
                PointJob { point: points[point_index], shard, shard_points: shard_sizes[shard] };
            let point = point_label(&job.point);
            let point_span = dbpim_trace::span!(
                "fleet.point",
                worker = worker,
                shard = shard,
                point = point,
                model = job.point.kind.name(),
                stolen = stolen,
            );
            // With a collector installed the open span's id becomes the
            // parent of whatever the executor does remotely; without one
            // there is no context and wire requests stay byte-identical
            // to their untraced form.
            let trace = point_span.id().map(|id| dbpim_serve::TraceContext {
                fleet: context.fleet.clone(),
                point: point.clone(),
                parent_span: id,
            });
            let point_start = Instant::now();
            let executed = executor.run(&job, context, trace);
            let point_elapsed = point_start.elapsed();
            drop(point_span);
            match executed {
                Ok(entry) => {
                    consecutive_failures = 0;
                    let owner = owners[point_index];
                    let (completed, total, snapshot) = {
                        let mut state = mutex.lock().expect("fleet state lock");
                        state.in_flight -= 1;
                        state.point_latency.record(point_elapsed);
                        if state.done.insert(entry.canonical_key()) {
                            state.shard_entries[owner].push(entry);
                            state.fresh += 1;
                            state.worker_points[worker] += 1;
                        }
                        let snapshot = self
                            .config
                            .snapshot_dir
                            .as_ref()
                            .map(|dir| (dir.clone(), state.shard_entries[owner].clone()));
                        (state.done.len(), points.len(), snapshot)
                    };
                    cv.notify_all();
                    self.emit(&FleetEvent::PointDone { worker, shard, stolen, completed, total });
                    if let Some((dir, entries)) = snapshot {
                        // Serialize saves per shard and skip stale or
                        // too-frequent ones: a concurrent completer may
                        // already have persisted a superset of this clone
                        // (shard entry lists only grow, so the count is a
                        // valid version), and `save_every` bounds how often
                        // the whole shard is reserialized.
                        let mut saved = save_versions[owner].lock().expect("shard save lock");
                        if entries.len() >= *saved + self.config.save_every {
                            let report = shard_report(spec, total, &entries);
                            match report.save(shard_snapshot_path(&dir, owner)) {
                                Ok(()) => *saved = entries.len(),
                                Err(e) => {
                                    let mut state = mutex.lock().expect("fleet state lock");
                                    state
                                        .diagnostics
                                        .push(format!("shard {owner} snapshot save failed: {e}"));
                                }
                            }
                        }
                    }
                }
                Err(error) => {
                    let attempt = {
                        let mut state = mutex.lock().expect("fleet state lock");
                        state.in_flight -= 1;
                        state.retried += 1;
                        let attempts = state.attempts.entry(point_index).or_insert(0);
                        *attempts += 1;
                        let attempt = *attempts;
                        if attempt >= self.config.max_point_attempts {
                            let point = points[point_index];
                            state.aborted = Some(FleetError::PointFailed {
                                point: format!(
                                    "{} @ {} on {} macros x {} rows",
                                    point.kind.name(),
                                    point.width,
                                    point.arch.macros,
                                    point.arch.rows_per_dbmu
                                ),
                                attempts: attempt,
                                last_error: error.clone(),
                            });
                        } else {
                            // Requeue at the front of the owning shard so an
                            // idle worker picks it up before fresh work.
                            state.pending[owners[point_index]].push_front(point_index);
                        }
                        attempt
                    };
                    cv.notify_all();
                    self.emit(&FleetEvent::PointRetried {
                        worker,
                        shard,
                        attempt,
                        error: error.clone(),
                    });
                    consecutive_failures += 1;
                    if consecutive_failures >= self.config.worker_failure_limit {
                        match executor.heartbeat() {
                            Ok(()) => consecutive_failures = 0,
                            Err(reason) => {
                                retire(format!(
                                    "heartbeat failed after {consecutive_failures} consecutive \
                                     errors (last point error: {error}): {reason}"
                                ));
                                return;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Human-readable identity of one DSE point — the `point` field of
/// propagated trace contexts and `fleet.point` spans (a label for
/// correlation, not the exactly-once bookkeeping key).
fn point_label(point: &DsePoint) -> String {
    format!(
        "{}/{}@{}x{}",
        point.kind.name(),
        point.width,
        point.arch.macros,
        point.arch.rows_per_dbmu
    )
}

/// A shard's persisted report: the full spec, the shard's entries (sorted
/// into canonical order), and the spec-wide total so completeness is
/// judged against the whole exploration.
fn shard_report(spec: &DseSpec, total_points: usize, entries: &[db_pim::DseEntry]) -> DseReport {
    let mut report = DseReport::empty(spec.clone(), total_points);
    report.entries = entries.to_vec();
    report.fresh_points = report.entries.len();
    report.saved_at_ms = unix_time_ms();
    report.sort_canonical();
    report
}

/// `dir/shard-NNN.json`.
fn shard_snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.json"))
}

/// Every `shard-*.json` in `dir`, name-sorted for deterministic adoption
/// and diagnostics order.
fn shard_snapshot_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rosters_are_rejected() {
        let config = FleetConfig::new(PipelineConfig::fast(), Vec::new());
        let spec = DseSpec::new(
            dbpim_sim::ArchGrid::around(dbpim_arch::ArchConfig::paper()),
            vec![dbpim_nn::ModelKind::AlexNet],
        );
        let err = FleetDriver::new(config).run(&spec).unwrap_err();
        assert!(matches!(err, FleetError::NoWorkers), "{err}");
    }

    #[test]
    fn snapshot_paths_are_stable() {
        let dir = Path::new("/tmp/fleet");
        assert_eq!(shard_snapshot_path(dir, 7), Path::new("/tmp/fleet/shard-007.json"));
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = FleetConfig::new(PipelineConfig::fast(), vec![WorkerSpec::Local]);
        assert_eq!(config.strategy, ShardStrategy::RoundRobin);
        assert_eq!(config.max_point_attempts, 3);
        assert!(config.fleet_id.starts_with("fleet-"));
        assert_eq!(config.clone().with_max_point_attempts(0).max_point_attempts, 1);
    }
}
