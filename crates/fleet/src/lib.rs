//! # dbpim-fleet: the sharded sweep orchestrator
//!
//! PR 3 made sweeps *servable* (a daemon with a warm artifact cache), PR 4
//! made them *resumable* (persisted [`DseReport`](db_pim::DseReport)
//! snapshots with a spec-checked, deduplicating merge). This crate is the
//! layer both were converging on: it fans one design-space exploration out
//! across **multiple workers** — locally spawned in-process sessions,
//! remote `dbpim-serve` daemons, or a mix — and merges the per-shard
//! snapshots into a single report that is bit-identical (timestamps aside)
//! to a single-driver run.
//!
//! The moving parts:
//!
//! * [`ShardPlan`] / [`ShardStrategy`] — deterministic partitioning of the
//!   spec's canonical point list ([`RoundRobin`](ShardStrategy::RoundRobin),
//!   [`Contiguous`](ShardStrategy::Contiguous), or
//!   [`CostWeighted`](ShardStrategy::CostWeighted) LPT balancing on a
//!   grid-size cost heuristic).
//! * [`WorkerSpec`] — where points execute: in-process (every local worker
//!   shares one warm [`BatchRunner`](db_pim::BatchRunner) cache) or against
//!   a daemon endpoint via single-point, shard-tagged `Explore` streams
//!   (protocol v4, authenticating with [`FleetConfig::auth_token`] when
//!   the daemons require it), each bounded by a per-point deadline.
//! * [`FleetDriver`] — the orchestrator: per-shard work queues with
//!   straggler reassignment (an idle worker steals from the largest
//!   backlog), per-point retry with a global attempt budget,
//!   heartbeat-based worker retirement, per-shard snapshot persistence
//!   after every point, and the final exactly-once-verified merge.
//! * [`FleetProgress`] — the monitoring surface: per-daemon `ShardStatus`
//!   answers folded into one deduplicated fleet-wide view (completions
//!   capped per shard, failure dominating), rendered by
//!   `dbpim-fleet --status`.
//!
//! SparseP (Giannoula et al.) reports the same lesson for real PIM
//! hardware: once the per-point kernel is fixed, the partitioning and
//! load-balancing strategy dominates end-to-end sweep throughput — which
//! is why the strategy is a first-class, swappable knob here.
//!
//! ```no_run
//! use db_pim::{DseSpec, PipelineConfig};
//! use dbpim_arch::ArchConfig;
//! use dbpim_fleet::{FleetConfig, FleetDriver, ShardStrategy, WorkerSpec};
//! use dbpim_nn::ModelKind;
//! use dbpim_sim::ArchGrid;
//!
//! let spec = DseSpec::new(
//!     ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4, 8]),
//!     vec![ModelKind::AlexNet],
//! );
//! let config = FleetConfig::new(
//!     PipelineConfig::fast().without_fidelity(),
//!     vec![WorkerSpec::Remote("127.0.0.1:7641".to_string()), WorkerSpec::Local],
//! )
//! .with_strategy(ShardStrategy::CostWeighted)
//! .with_snapshot_dir("fleet-snapshots");
//! let outcome = FleetDriver::new(config).run(&spec)?;
//! assert!(outcome.report.is_complete());
//! # Ok::<(), dbpim_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod options;
pub mod progress;
pub mod shard;
pub mod trace;
mod worker;

pub use driver::{
    FleetConfig, FleetDriver, FleetError, FleetEvent, FleetOutcome, FleetStats, WorkerStats,
};
pub use options::FleetOptions;
pub use progress::{FleetProgress, ShardProgress};
pub use shard::{point_cost, Shard, ShardPlan, ShardStrategy};
pub use trace::{collect_remote_trace, remote_lane, RemoteTrace};
pub use worker::WorkerSpec;
