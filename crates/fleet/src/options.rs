//! Strict command-line parsing for the fleet-specific flags.
//!
//! ```text
//! --workers <n>           local in-process workers (default: 1 when no
//!                         endpoints are given, else 0)
//! --endpoints a:p,b:p     remote dbpim-served endpoints, one worker each
//! --strategy <name>       round-robin | contiguous | cost-weighted
//! --snapshot-dir <dir>    per-shard snapshots + merged report; enables resume
//! --fleet-id <name>       identifier shard-tagged requests carry
//! --auth-token <secret>   shared secret presented to every remote daemon
//! --point-timeout-ms <n>  remote per-point deadline / liveness timeout
//! --retries <n>           attempts per point before the run aborts
//! --save-every <n>        new points per shard between snapshot saves
//! ```
//!
//! Same conventions as every other parser in the workspace: unknown flags
//! are ignored (the `dbpim-fleet` binary layers these on top of the
//! `dse_sweep` grid/pipeline flags), a known flag with a missing or
//! malformed value is an error.

use std::path::PathBuf;
use std::time::Duration;

use db_pim::PipelineConfig;
use dbpim_serve::options::{parse_value, OptionsError};

use crate::driver::FleetConfig;
use crate::shard::ShardStrategy;
use crate::worker::WorkerSpec;

/// Parsed fleet flags.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOptions {
    /// Local in-process workers (`None` = default: 1 without endpoints,
    /// 0 with).
    pub workers: Option<usize>,
    /// Remote daemon endpoints, one worker each.
    pub endpoints: Vec<String>,
    /// Shard strategy.
    pub strategy: ShardStrategy,
    /// Snapshot directory (enables persistence and resume).
    pub snapshot_dir: Option<PathBuf>,
    /// Fleet identifier override.
    pub fleet_id: Option<String>,
    /// Shared secret presented to every remote daemon.
    pub auth_token: Option<String>,
    /// Per-point timeout in milliseconds.
    pub point_timeout_ms: u64,
    /// Attempts per point before the run aborts.
    pub retries: usize,
    /// New points per shard between snapshot saves.
    pub save_every: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            workers: None,
            endpoints: Vec::new(),
            strategy: ShardStrategy::default(),
            snapshot_dir: None,
            fleet_id: None,
            auth_token: None,
            point_timeout_ms: 120_000,
            retries: 3,
            save_every: 1,
        }
    }
}

impl FleetOptions {
    /// The flags this parser understands.
    pub const FLAGS: [&'static str; 9] = [
        "--workers",
        "--endpoints",
        "--strategy",
        "--snapshot-dir",
        "--fleet-id",
        "--auth-token",
        "--point-timeout-ms",
        "--retries",
        "--save-every",
    ];

    /// One-line usage fragment (the binary prepends the grid/pipeline
    /// flags).
    pub const USAGE: &'static str = "[--workers <n>] [--endpoints host:port,...] \
         [--strategy round-robin|contiguous|cost-weighted] [--snapshot-dir <dir>] \
         [--fleet-id <name>] [--auth-token <secret>] [--point-timeout-ms <n>] [--retries <n>] \
         [--save-every <n>]";

    /// Parses the fleet flags from an explicit argument list. Unknown
    /// arguments are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`OptionsError`] when a known flag has a missing or
    /// malformed value.
    pub fn from_slice(args: &[String]) -> Result<Self, OptionsError> {
        let mut options = Self::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !Self::FLAGS.contains(&flag) {
                i += 1;
                continue;
            }
            let raw = args.get(i + 1).ok_or_else(|| OptionsError {
                flag: flag.to_string(),
                message: "missing value".to_string(),
            })?;
            match flag {
                "--workers" => options.workers = Some(parse_value(flag, raw)?),
                "--endpoints" => {
                    options.endpoints = raw
                        .split(',')
                        .map(str::trim)
                        .filter(|part| !part.is_empty())
                        .map(ToString::to_string)
                        .collect();
                    if options.endpoints.is_empty() {
                        return Err(OptionsError {
                            flag: flag.to_string(),
                            message: format!("`{raw}` names no endpoints"),
                        });
                    }
                }
                "--strategy" => options.strategy = parse_value(flag, raw)?,
                "--snapshot-dir" => options.snapshot_dir = Some(PathBuf::from(raw)),
                "--fleet-id" => options.fleet_id = Some(raw.clone()),
                "--auth-token" => options.auth_token = Some(raw.clone()),
                "--point-timeout-ms" => {
                    options.point_timeout_ms = parse_value::<u64>(flag, raw)?.max(1);
                }
                "--retries" => options.retries = parse_value::<usize>(flag, raw)?.max(1),
                "--save-every" => options.save_every = parse_value::<usize>(flag, raw)?.max(1),
                _ => unreachable!("flag list and match arms agree"),
            }
            i += 2;
        }
        Ok(options)
    }

    /// The worker roster: one remote worker per endpoint (in request
    /// order), then the local workers. With neither endpoints nor an
    /// explicit `--workers`, a single local worker keeps the binary useful
    /// out of the box.
    #[must_use]
    pub fn worker_specs(&self) -> Vec<WorkerSpec> {
        let locals = self.workers.unwrap_or(usize::from(self.endpoints.is_empty()));
        let mut specs: Vec<WorkerSpec> =
            self.endpoints.iter().cloned().map(WorkerSpec::Remote).collect();
        specs.extend(std::iter::repeat_n(WorkerSpec::Local, locals));
        specs
    }

    /// The fleet configuration these options describe for `pipeline`.
    #[must_use]
    pub fn fleet_config(&self, pipeline: PipelineConfig) -> FleetConfig {
        let mut config = FleetConfig::new(pipeline, self.worker_specs())
            .with_strategy(self.strategy)
            .with_point_timeout(Duration::from_millis(self.point_timeout_ms))
            .with_max_point_attempts(self.retries)
            .with_save_every(self.save_every);
        if let Some(dir) = &self.snapshot_dir {
            config = config.with_snapshot_dir(dir);
        }
        if let Some(fleet_id) = &self.fleet_id {
            config = config.with_fleet_id(fleet_id.clone());
        }
        if let Some(token) = &self.auth_token {
            config = config.with_auth_token(token.clone());
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn fleet_flags_parse_strictly_and_ignore_the_rest() {
        let options = FleetOptions::from_slice(&args(&[
            "--width",
            "0.25",
            "--workers",
            "2",
            "--endpoints",
            "127.0.0.1:7641, 127.0.0.1:7642",
            "--strategy",
            "cost-weighted",
            "--snapshot-dir",
            "/tmp/fleet",
            "--fleet-id",
            "ci-run",
            "--auth-token",
            "sesame",
            "--point-timeout-ms",
            "5000",
            "--retries",
            "5",
        ]))
        .unwrap();
        assert_eq!(options.workers, Some(2));
        assert_eq!(options.endpoints, vec!["127.0.0.1:7641", "127.0.0.1:7642"]);
        assert_eq!(options.strategy, ShardStrategy::CostWeighted);
        assert_eq!(options.snapshot_dir, Some(PathBuf::from("/tmp/fleet")));
        assert_eq!(options.fleet_id.as_deref(), Some("ci-run"));
        assert_eq!(options.auth_token.as_deref(), Some("sesame"));
        assert_eq!(options.point_timeout_ms, 5000);
        assert_eq!(options.retries, 5);
        // Remotes first, then the locals.
        assert_eq!(
            options.worker_specs(),
            vec![
                WorkerSpec::Remote("127.0.0.1:7641".to_string()),
                WorkerSpec::Remote("127.0.0.1:7642".to_string()),
                WorkerSpec::Local,
                WorkerSpec::Local,
            ]
        );
        let config = options.fleet_config(PipelineConfig::fast());
        assert_eq!(config.fleet_id, "ci-run");
        assert_eq!(config.auth_token.as_deref(), Some("sesame"));
        assert_eq!(config.point_timeout, Duration::from_millis(5000));
        assert_eq!(config.max_point_attempts, 5);
    }

    #[test]
    fn worker_roster_defaults_depend_on_endpoints() {
        let bare = FleetOptions::from_slice(&args(&[])).unwrap();
        assert_eq!(bare.worker_specs(), vec![WorkerSpec::Local], "one local worker by default");

        let remote_only =
            FleetOptions::from_slice(&args(&["--endpoints", "127.0.0.1:7641"])).unwrap();
        assert_eq!(
            remote_only.worker_specs(),
            vec![WorkerSpec::Remote("127.0.0.1:7641".to_string())],
            "endpoints displace the default local worker"
        );

        let mixed =
            FleetOptions::from_slice(&args(&["--endpoints", "127.0.0.1:7641", "--workers", "1"]))
                .unwrap();
        assert_eq!(mixed.worker_specs().len(), 2);
    }

    #[test]
    fn malformed_fleet_values_are_rejected_not_swallowed() {
        let err = FleetOptions::from_slice(&args(&["--workers", "two"])).unwrap_err();
        assert_eq!(err.flag, "--workers");

        let err = FleetOptions::from_slice(&args(&["--strategy", "random"])).unwrap_err();
        assert_eq!(err.flag, "--strategy");
        assert!(err.message.contains("random"), "{err}");

        let err = FleetOptions::from_slice(&args(&["--endpoints", " , "])).unwrap_err();
        assert_eq!(err.flag, "--endpoints");

        let err = FleetOptions::from_slice(&args(&["--retries"])).unwrap_err();
        assert_eq!(err.flag, "--retries");
        assert!(err.to_string().contains("missing"), "{err}");

        // Zero-valued knobs that would hang or never run (or never save)
        // are clamped.
        let options = FleetOptions::from_slice(&args(&[
            "--retries",
            "0",
            "--point-timeout-ms",
            "0",
            "--save-every",
            "0",
        ]))
        .unwrap();
        assert_eq!(options.retries, 1);
        assert_eq!(options.point_timeout_ms, 1);
        assert_eq!(options.save_every, 1);
    }

    #[test]
    fn save_every_reaches_the_config() {
        let options = FleetOptions::from_slice(&args(&["--save-every", "8"])).unwrap();
        assert_eq!(options.save_every, 8);
        assert_eq!(options.fleet_config(PipelineConfig::fast()).save_every, 8);
        assert_eq!(FleetOptions::default().save_every, 1, "maximum durability by default");
    }
}
