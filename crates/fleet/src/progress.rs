//! Fleet-level progress: aggregating per-daemon [`ShardStatus`] answers.
//!
//! Every daemon only sees the shard-tagged requests dispatched *to it*, so
//! under straggler reassignment the same shard reports progress from
//! several daemons and the naive sum over-counts. This module folds the
//! per-endpoint views into one [`FleetProgress`]: per shard, completions
//! are summed across endpoints and **capped at the shard's point total**
//! (a completed point is completed no matter how many daemons touched the
//! shard), failure dominates the merged state, and per-fleet totals fall
//! out of the shard rows.
//!
//! The aggregation is a pure function of the collected statuses — the
//! `dbpim-fleet --status` mode does the fetching, the tests feed it
//! scripted views.

use std::collections::BTreeMap;
use std::fmt;

use dbpim_serve::{ShardState, ShardStatus};

/// One shard's progress merged across every endpoint that saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProgress {
    /// The shard index (`0..of`).
    pub shard: usize,
    /// Total shards of the fleet run (as reported; the largest wins when
    /// endpoints disagree mid-resize).
    pub of: usize,
    /// Points the shard contains.
    pub total_points: usize,
    /// Points completed across all endpoints, capped at `total_points`.
    pub completed_points: usize,
    /// Merged lifecycle: `Failed` if any endpoint reports a failure,
    /// otherwise `Finished` once every point is covered, otherwise
    /// `Running`.
    pub state: ShardState,
    /// Endpoints that reported this shard (> 1 means reassignment).
    pub endpoints: usize,
    /// Unix-epoch milliseconds of the freshest update any endpoint saw.
    pub updated_at_ms: u64,
}

/// One fleet run's progress: its shard rows plus the derived totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetProgress {
    /// The fleet identifier the shard tags carried.
    pub fleet: String,
    /// Per-shard merged progress, ordered by shard index.
    pub shards: Vec<ShardProgress>,
}

impl FleetProgress {
    /// Folds per-endpoint status answers into one view per fleet, keyed
    /// and ordered by fleet identifier. The input is whatever each
    /// endpoint's `ShardStatus` request returned — endpoints that answered
    /// nothing contribute nothing.
    #[must_use]
    pub fn aggregate(per_endpoint: &[Vec<ShardStatus>]) -> Vec<FleetProgress> {
        let mut fleets: BTreeMap<String, BTreeMap<usize, ShardProgress>> = BTreeMap::new();
        for statuses in per_endpoint {
            for status in statuses {
                let row = fleets
                    .entry(status.fleet.clone())
                    .or_default()
                    .entry(status.shard)
                    .or_insert_with(|| ShardProgress {
                        shard: status.shard,
                        of: status.of,
                        total_points: status.total_points,
                        completed_points: 0,
                        state: ShardState::Running,
                        endpoints: 0,
                        updated_at_ms: 0,
                    });
                row.of = row.of.max(status.of);
                row.total_points = row.total_points.max(status.total_points);
                row.completed_points =
                    (row.completed_points + status.completed_points).min(row.total_points);
                row.endpoints += 1;
                row.updated_at_ms = row.updated_at_ms.max(status.updated_at_ms);
                if status.state == ShardState::Failed {
                    row.state = ShardState::Failed;
                }
            }
        }
        fleets
            .into_iter()
            .map(|(fleet, shards)| {
                let mut shards: Vec<ShardProgress> = shards.into_values().collect();
                for shard in &mut shards {
                    if shard.state != ShardState::Failed
                        && shard.completed_points >= shard.total_points
                        && shard.total_points > 0
                    {
                        shard.state = ShardState::Finished;
                    }
                }
                FleetProgress { fleet, shards }
            })
            .collect()
    }

    /// Points completed across every shard (already deduplicated by the
    /// per-shard cap).
    #[must_use]
    pub fn completed_points(&self) -> usize {
        self.shards.iter().map(|s| s.completed_points).sum()
    }

    /// Points the fleet's shards contain in total.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.shards.iter().map(|s| s.total_points).sum()
    }

    /// `true` once every shard finished (and none failed).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.state == ShardState::Finished)
    }
}

impl fmt::Display for FleetProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet {}: {}/{} points",
            self.fleet,
            self.completed_points(),
            self.total_points()
        )?;
        for shard in &self.shards {
            let state = match shard.state {
                ShardState::Running => "running",
                ShardState::Finished => "finished",
                ShardState::Failed => "failed",
            };
            writeln!(
                f,
                "  shard {}/{}: {}/{} points, {state}, {} endpoint(s)",
                shard.shard, shard.of, shard.completed_points, shard.total_points, shard.endpoints
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(
        fleet: &str,
        shard: usize,
        of: usize,
        total: usize,
        completed: usize,
        state: ShardState,
    ) -> ShardStatus {
        ShardStatus {
            fleet: fleet.to_string(),
            shard,
            of,
            total_points: total,
            completed_points: completed,
            state,
            updated_at_ms: 100,
        }
    }

    #[test]
    fn reassigned_shards_never_over_count() {
        // Shard 0 ran on two daemons: 4 points on one, 3 on the other —
        // but the shard only *has* 5 points (2 were recomputed after a
        // straggler steal). The merged view caps at the total.
        let views = vec![
            vec![status("run-a", 0, 2, 5, 4, ShardState::Running)],
            vec![
                status("run-a", 0, 2, 5, 3, ShardState::Finished),
                status("run-a", 1, 2, 5, 5, ShardState::Finished),
            ],
        ];
        let fleets = FleetProgress::aggregate(&views);
        assert_eq!(fleets.len(), 1);
        let fleet = &fleets[0];
        assert_eq!(fleet.fleet, "run-a");
        assert_eq!(fleet.shards.len(), 2);
        assert_eq!(fleet.shards[0].completed_points, 5, "capped at the shard total");
        assert_eq!(fleet.shards[0].endpoints, 2);
        assert_eq!(fleet.shards[0].state, ShardState::Finished, "all points covered");
        assert_eq!(fleet.completed_points(), 10);
        assert_eq!(fleet.total_points(), 10);
        assert!(fleet.is_complete());
    }

    #[test]
    fn failure_dominates_and_partial_progress_stays_running() {
        let views = vec![
            vec![status("run-b", 0, 2, 4, 4, ShardState::Failed)],
            vec![
                status("run-b", 0, 2, 4, 1, ShardState::Running),
                status("run-b", 1, 2, 4, 2, ShardState::Running),
            ],
        ];
        let fleets = FleetProgress::aggregate(&views);
        let fleet = &fleets[0];
        assert_eq!(fleet.shards[0].state, ShardState::Failed, "one failure taints the shard");
        assert_eq!(fleet.shards[1].state, ShardState::Running);
        assert_eq!(fleet.shards[1].completed_points, 2);
        assert!(!fleet.is_complete());
    }

    #[test]
    fn distinct_fleets_stay_separate_and_ordered() {
        let views = vec![vec![
            status("zeta", 0, 1, 2, 2, ShardState::Finished),
            status("alpha", 0, 1, 3, 1, ShardState::Running),
        ]];
        let fleets = FleetProgress::aggregate(&views);
        assert_eq!(fleets.len(), 2);
        assert_eq!(fleets[0].fleet, "alpha");
        assert_eq!(fleets[1].fleet, "zeta");
        assert!(fleets[1].is_complete());
        assert!(!fleets[0].is_complete());

        let rendered = fleets[0].to_string();
        assert!(rendered.contains("fleet alpha: 1/3 points"), "{rendered}");
        assert!(rendered.contains("shard 0/1: 1/3 points, running, 1 endpoint(s)"), "{rendered}");
    }

    #[test]
    fn empty_views_aggregate_to_nothing() {
        assert!(FleetProgress::aggregate(&[]).is_empty());
        assert!(FleetProgress::aggregate(&[Vec::new(), Vec::new()]).is_empty());
    }
}
