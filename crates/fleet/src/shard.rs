//! Deterministic partitioning of a DSE point set into shards.
//!
//! A [`ShardPlan`] splits the canonical point list of a
//! [`DseSpec`](db_pim::DseSpec) — every (model, width, geometry) point, in
//! the spec's enumeration order — into one [`Shard`] per worker. Planning
//! is a pure function of the point list, the worker count and the
//! [`ShardStrategy`], so every fleet participant (and every resume) derives
//! the same plan without coordination.
//!
//! The partition invariant — every point in exactly one shard, no gaps, no
//! duplicates — is what makes the merged fleet report provably equal to a
//! single-driver run; `tests/fleet_sharding.rs` asserts it for every
//! strategy.

use std::fmt;
use std::str::FromStr;

use db_pim::DsePoint;
use dbpim_sim::geometry_cost;

/// How a [`ShardPlan`] distributes points across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Point `i` goes to shard `i % shards`. Interleaves the grid, so every
    /// shard sees a similar mix of geometries — the robust default when
    /// point costs are unknown.
    #[default]
    RoundRobin,
    /// Consecutive runs of points per shard (earlier shards take the
    /// remainder). Maximizes per-shard artifact-cache locality — adjacent
    /// points usually share a (model, width) — at the risk of imbalance
    /// when cost grows along an axis.
    Contiguous,
    /// Longest-processing-time assignment using the per-point
    /// [`point_cost`] heuristic: points are placed heaviest-first onto the
    /// currently lightest shard. Best wall-clock balance for grids whose
    /// geometries differ wildly in simulation cost.
    CostWeighted,
}

impl ShardStrategy {
    /// Every strategy, in documentation order.
    #[must_use]
    pub fn all() -> [ShardStrategy; 3] {
        [ShardStrategy::RoundRobin, ShardStrategy::Contiguous, ShardStrategy::CostWeighted]
    }

    /// The canonical command-line name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ShardStrategy::RoundRobin => "round-robin",
            ShardStrategy::Contiguous => "contiguous",
            ShardStrategy::CostWeighted => "cost-weighted",
        }
    }
}

impl fmt::Display for ShardStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ShardStrategy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Ok(ShardStrategy::RoundRobin),
            "contiguous" => Ok(ShardStrategy::Contiguous),
            "cost-weighted" | "costweighted" | "cost" => Ok(ShardStrategy::CostWeighted),
            other => Err(format!(
                "unknown shard strategy `{other}` (expected round-robin, contiguous or \
                 cost-weighted)"
            )),
        }
    }
}

/// The relative execution cost of one DSE point: the geometry's simulated
/// cell count ([`geometry_cost`]) scaled by the operand width's bit count
/// (the digit-serial macro walks one dyadic block per weight bit pair, so
/// wider operands simulate proportionally longer), discounted for value
/// pruning — pruned filters compact into fewer weight tiles, but input
/// streaming and SIMD work survive, so at most half the cost is pruned
/// away even at an extreme fraction. An identity spec leaves the historical
/// cost untouched exactly.
#[must_use]
pub fn point_cost(point: &DsePoint) -> u64 {
    let base = geometry_cost(&point.arch).saturating_mul(u64::from(point.width.bits())).max(1);
    if !point.pruning.is_active() {
        return base;
    }
    let keep = 1.0 - 0.5 * point.pruning.fraction.clamp(0.0, 1.0);
    ((base as f64 * keep) as u64).max(1)
}

/// One shard of a plan: the point indices (into the spec's canonical point
/// list) a worker is initially responsible for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// The shard index (`0..plan.shards.len()`).
    pub id: usize,
    /// Point indices assigned to this shard, ascending.
    pub points: Vec<usize>,
}

/// A deterministic partition of a spec's point list into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The strategy that produced the plan.
    pub strategy: ShardStrategy,
    /// Points the partitioned spec enumerates.
    pub total_points: usize,
    /// One shard per worker, id-ordered. Shards may be empty when there are
    /// more workers than points.
    pub shards: Vec<Shard>,
}

impl ShardPlan {
    /// Partitions `points` into `shards` shards (clamped to at least one).
    ///
    /// The result is a pure function of the inputs: the same point list,
    /// shard count and strategy always produce the same plan.
    #[must_use]
    pub fn partition(points: &[DsePoint], shards: usize, strategy: ShardStrategy) -> Self {
        let count = shards.max(1);
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); count];
        match strategy {
            ShardStrategy::RoundRobin => {
                for index in 0..points.len() {
                    assigned[index % count].push(index);
                }
            }
            ShardStrategy::Contiguous => {
                let base = points.len() / count;
                let extra = points.len() % count;
                let mut next = 0usize;
                for (id, bucket) in assigned.iter_mut().enumerate() {
                    let take = base + usize::from(id < extra);
                    bucket.extend(next..next + take);
                    next += take;
                }
            }
            ShardStrategy::CostWeighted => {
                // Longest-processing-time: heaviest point first, onto the
                // lightest shard; ties break on the lower index / lower
                // shard id, keeping the plan deterministic.
                let mut order: Vec<usize> = (0..points.len()).collect();
                order.sort_by_key(|&i| (std::cmp::Reverse(point_cost(&points[i])), i));
                let mut loads = vec![0u64; count];
                for index in order {
                    let lightest = (0..count).min_by_key(|&id| (loads[id], id)).expect("count>=1");
                    loads[lightest] = loads[lightest].saturating_add(point_cost(&points[index]));
                    assigned[lightest].push(index);
                }
                for bucket in &mut assigned {
                    bucket.sort_unstable();
                }
            }
        }
        Self {
            strategy,
            total_points: points.len(),
            shards: assigned
                .into_iter()
                .enumerate()
                .map(|(id, points)| Shard { id, points })
                .collect(),
        }
    }

    /// The shard owning each point index (`point → shard id`).
    #[must_use]
    pub fn owners(&self) -> Vec<usize> {
        let mut owners = vec![usize::MAX; self.total_points];
        for shard in &self.shards {
            for &point in &shard.points {
                owners[point] = shard.id;
            }
        }
        owners
    }

    /// `true` when the shards cover `0..total_points` with no duplicates
    /// and no gaps — the invariant every strategy must uphold.
    #[must_use]
    pub fn is_complete_partition(&self) -> bool {
        let mut seen = vec![false; self.total_points];
        for shard in &self.shards {
            for &point in &shard.points {
                if point >= self.total_points || seen[point] {
                    return false;
                }
                seen[point] = true;
            }
        }
        seen.into_iter().all(|covered| covered)
    }

    /// Total heuristic cost per shard (for balance diagnostics).
    #[must_use]
    pub fn shard_costs(&self, points: &[DsePoint]) -> Vec<u64> {
        self.shards.iter().map(|s| s.points.iter().map(|&i| point_cost(&points[i])).sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_pim::{DseSpec, PipelineConfig};
    use dbpim_arch::ArchConfig;
    use dbpim_nn::ModelKind;
    use dbpim_sim::ArchGrid;

    fn sample_points() -> Vec<DsePoint> {
        let spec = DseSpec::new(
            ArchGrid::around(ArchConfig::paper())
                .with_macros(vec![2, 4, 8])
                .with_rows(vec![32, 64]),
            vec![ModelKind::AlexNet, ModelKind::MobileNetV2],
        );
        spec.points(PipelineConfig::fast().operand_width, db_pim::PruningSpec::none())
            .expect("feasible grid")
    }

    #[test]
    fn strategies_parse_and_render_round_trip() {
        for strategy in ShardStrategy::all() {
            assert_eq!(strategy.name().parse::<ShardStrategy>().unwrap(), strategy);
        }
        assert_eq!("rr".parse::<ShardStrategy>().unwrap(), ShardStrategy::RoundRobin);
        assert_eq!("COST".parse::<ShardStrategy>().unwrap(), ShardStrategy::CostWeighted);
        let err = "random".parse::<ShardStrategy>().unwrap_err();
        assert!(err.contains("random"), "{err}");
        assert_eq!(ShardStrategy::default(), ShardStrategy::RoundRobin);
    }

    #[test]
    fn every_strategy_yields_a_complete_partition() {
        let points = sample_points();
        for strategy in ShardStrategy::all() {
            for shards in [1, 2, 3, 5, points.len(), points.len() + 3] {
                let plan = ShardPlan::partition(&points, shards, strategy);
                assert_eq!(plan.shards.len(), shards);
                assert!(
                    plan.is_complete_partition(),
                    "{strategy} over {shards} shards leaves gaps or duplicates"
                );
                assert_eq!(
                    plan,
                    ShardPlan::partition(&points, shards, strategy),
                    "not a pure function"
                );
            }
        }
    }

    #[test]
    fn round_robin_interleaves_and_contiguous_chunks() {
        let points = sample_points();
        let rr = ShardPlan::partition(&points, 3, ShardStrategy::RoundRobin);
        assert_eq!(rr.shards[0].points[..3], [0, 3, 6]);
        assert_eq!(rr.shards[1].points[..3], [1, 4, 7]);
        let contiguous = ShardPlan::partition(&points, 3, ShardStrategy::Contiguous);
        assert_eq!(contiguous.shards[0].points, (0..4).collect::<Vec<_>>());
        assert_eq!(contiguous.shards[2].points, (8..12).collect::<Vec<_>>());
    }

    #[test]
    fn cost_weighted_balances_heterogeneous_grids() {
        let points = sample_points();
        // The grid spans 2..8 macros, a 4x per-point cost spread.
        let costs: Vec<u64> = points.iter().map(point_cost).collect();
        let heaviest = *costs.iter().max().unwrap();
        let plan = ShardPlan::partition(&points, 3, ShardStrategy::CostWeighted);
        let loads = plan.shard_costs(&points);
        let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
        assert!(
            spread <= heaviest,
            "LPT must keep the load spread within one heaviest point: {loads:?}"
        );
        // And it beats contiguous chunking on this deliberately skewed grid.
        let naive = ShardPlan::partition(&points, 3, ShardStrategy::Contiguous);
        let naive_loads = naive.shard_costs(&points);
        assert!(
            loads.iter().max().unwrap() <= naive_loads.iter().max().unwrap(),
            "cost-weighted ({loads:?}) should not be worse than contiguous ({naive_loads:?})"
        );
    }

    #[test]
    fn owners_invert_the_plan() {
        let points = sample_points();
        let plan = ShardPlan::partition(&points, 4, ShardStrategy::RoundRobin);
        let owners = plan.owners();
        assert_eq!(owners.len(), points.len());
        for shard in &plan.shards {
            for &point in &shard.points {
                assert_eq!(owners[point], shard.id);
            }
        }
    }

    #[test]
    fn point_cost_scales_with_width_and_geometry() {
        let points = sample_points();
        // Same model and width: the 8-macro point costs 4x the 2-macro one.
        let cheap = points.iter().find(|p| p.arch.macros == 2).unwrap();
        let dear = points.iter().find(|p| p.arch.macros == 8).unwrap();
        assert_eq!(point_cost(dear), 4 * point_cost(cheap));
    }

    #[test]
    fn point_cost_discounts_value_pruning() {
        let dense = sample_points()[0];
        let mut pruned = dense;
        pruned.pruning = db_pim::PruningSpec::unstructured(0.5);
        // Half the weights pruned discounts a quarter of the cost; the
        // identity spec is exactly the historical cost.
        assert_eq!(point_cost(&pruned), (point_cost(&dense) as f64 * 0.75) as u64);
        assert!(point_cost(&pruned) < point_cost(&dense));
        let mut identity = dense;
        identity.pruning = db_pim::PruningSpec::none();
        assert_eq!(point_cost(&identity), point_cost(&dense));
    }
}
