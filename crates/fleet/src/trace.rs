//! Remote trace collection and clock alignment for merged fleet traces.
//!
//! A fleet run spans processes: the driver dispatches `fleet.point` work,
//! remote daemons execute it inside `serve.request` spans. Each process
//! records spans against its *own* monotonic epoch and its *own* wall
//! clock, so merging them into one Chrome trace needs two corrections:
//!
//! 1. **Epoch translation** — a remote span's offset-from-epoch becomes a
//!    wall-clock time via the snapshot's `epoch_unix_micros` anchor.
//! 2. **Clock alignment** — remote wall clocks drift; the NTP-style offset
//!    the [`Client`] estimates during its ping handshake (`offset =
//!    server_time − request midpoint`) maps a daemon's wall clock onto the
//!    driver's.
//!
//! The result of [`remote_lane`] is a [`ProcessLane`] whose timestamps are
//! microseconds since the *driver's* collector epoch — directly mergeable
//! by `ChromeTrace::render_lanes`, so daemon-side `serve.request` spans
//! nest visually under the driver's `fleet.point` dispatches. Alignment is
//! only as good as the offset estimate (half the ping round-trip bounds
//! the error); sub-millisecond nesting across hosts is not guaranteed.

use std::time::Duration;

use dbpim_serve::Client;
use dbpim_trace::{CollectorSnapshot, ProcessLane, TraceSpan};

/// One daemon's drained span buffer plus the clock-offset estimate
/// captured during the collection handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTrace {
    /// The daemon endpoint (`host:port`) the spans came from.
    pub endpoint: String,
    /// The drained collector contents (spans, drop count, epoch anchor,
    /// daemon pid).
    pub snapshot: CollectorSnapshot,
    /// Estimated daemon-clock minus driver-clock offset in microseconds
    /// (NTP-style, from the ping request/response timestamps).
    pub clock_offset_micros: i64,
}

/// Connects to `endpoint`, estimates its clock offset via the version
/// handshake, authenticates when a token is given, and drains the daemon's
/// trace buffer.
///
/// # Errors
///
/// Returns a human-readable diagnostic naming the endpoint for connect,
/// handshake, auth or collection failures — callers typically warn and
/// skip the endpoint rather than fail the merge.
pub fn collect_remote_trace(
    endpoint: &str,
    auth_token: Option<&str>,
    timeout: Duration,
) -> Result<RemoteTrace, String> {
    let mut client = Client::connect_timeout(endpoint, timeout)
        .map_err(|e| format!("connect to {endpoint}: {e}"))?;
    client.set_response_timeout(Some(timeout)).map_err(|e| format!("configure {endpoint}: {e}"))?;
    client.ping().map_err(|e| format!("ping {endpoint}: {e}"))?;
    if let Some(token) = auth_token {
        client.authenticate(token).map_err(|e| format!("auth {endpoint}: {e}"))?;
    }
    let snapshot = client.trace_snapshot().map_err(|e| format!("trace from {endpoint}: {e}"))?;
    Ok(RemoteTrace {
        endpoint: endpoint.to_string(),
        snapshot,
        // A pre-v5 daemon answers no timestamp; assume synchronized clocks
        // rather than discarding its spans.
        clock_offset_micros: client.clock_offset_micros().unwrap_or(0),
    })
}

/// Maps one remote trace onto the driver's clock as a process lane:
/// `driver_relative = (remote_epoch + span_start − offset) −
/// driver_epoch`, clamped at zero (a span that aligns before the driver's
/// epoch is pinned to it rather than wrapped).
#[must_use]
pub fn remote_lane(remote: &RemoteTrace, driver_epoch_unix_micros: u64) -> ProcessLane {
    let to_i64 = |micros: u64| i64::try_from(micros).unwrap_or(i64::MAX);
    let spans = remote
        .snapshot
        .spans
        .iter()
        .map(|span| {
            let driver_relative = to_i64(remote.snapshot.epoch_unix_micros)
                .saturating_add(to_i64(span.start_micros))
                .saturating_sub(remote.clock_offset_micros)
                .saturating_sub(to_i64(driver_epoch_unix_micros));
            TraceSpan { start_micros: u64::try_from(driver_relative).unwrap_or(0), ..span.clone() }
        })
        .collect();
    ProcessLane {
        pid: remote.snapshot.pid,
        name: format!("dbpim-served {}", remote.endpoint),
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start_micros: u64) -> TraceSpan {
        TraceSpan {
            id: 42,
            name: "serve.request".to_string(),
            thread: 1,
            depth: 0,
            start_micros,
            duration_micros: 500,
            args: vec![("point".to_string(), "alexnet/int8@4x64".to_string())],
        }
    }

    #[test]
    fn remote_lanes_align_onto_the_driver_clock() {
        // Driver epoch at unix 1_000_000 µs; daemon epoch at 1_500_000 on a
        // clock running 200_000 µs fast. A span 50_000 µs into the daemon's
        // trace happened at unix 1_550_000 daemon-time = 1_350_000
        // driver-time = 350_000 µs after the driver's epoch.
        let remote = RemoteTrace {
            endpoint: "127.0.0.1:7641".to_string(),
            snapshot: CollectorSnapshot {
                epoch_unix_micros: 1_500_000,
                pid: 4242,
                dropped: 0,
                spans: vec![span(50_000)],
            },
            clock_offset_micros: 200_000,
        };
        let lane = remote_lane(&remote, 1_000_000);
        assert_eq!(lane.pid, 4242);
        assert_eq!(lane.name, "dbpim-served 127.0.0.1:7641");
        assert_eq!(lane.spans.len(), 1);
        assert_eq!(lane.spans[0].start_micros, 350_000);
        // Everything but the timestamp is carried through untouched.
        assert_eq!(lane.spans[0].id, 42);
        assert_eq!(lane.spans[0].duration_micros, 500);
        assert_eq!(lane.spans[0].arg("point"), Some("alexnet/int8@4x64"));
    }

    #[test]
    fn spans_aligning_before_the_driver_epoch_clamp_to_zero() {
        let remote = RemoteTrace {
            endpoint: "a:1".to_string(),
            snapshot: CollectorSnapshot {
                epoch_unix_micros: 900_000,
                pid: 7,
                dropped: 0,
                spans: vec![span(0)],
            },
            clock_offset_micros: 0,
        };
        let lane = remote_lane(&remote, 1_000_000);
        assert_eq!(lane.spans[0].start_micros, 0, "clamped, not wrapped");
    }

    #[test]
    fn dead_endpoints_fail_with_a_named_address() {
        let err =
            collect_remote_trace("127.0.0.1:9", None, Duration::from_millis(200)).unwrap_err();
        assert!(err.contains("127.0.0.1:9"), "{err}");
    }
}
