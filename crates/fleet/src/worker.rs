//! Fleet workers: where a claimed DSE point actually executes.
//!
//! A worker is either **local** — an in-process session sharing one warm
//! [`BatchRunner`] cache with every other local worker — or **remote** — a
//! blocking [`Client`] connection to a `dbpim-serve` daemon, dispatching
//! each point as a single-point `Explore` stream tagged with its shard so
//! the daemon's `ShardStatus` registry tracks fleet progress.
//!
//! Both backends run the exact same `run_point` pipeline underneath, so a
//! point's result is bit-identical no matter which worker computes it —
//! the property that makes straggler reassignment and retry safe.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use db_pim::{BatchRunner, DseEntry, DsePoint, DseSpec};
use dbpim_serve::{Client, ShardAnnotation, TraceContext};
use dbpim_sim::{ArchGrid, SparsityConfig};

/// Where one fleet worker executes its points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerSpec {
    /// In-process, against a shared warm [`BatchRunner`].
    Local,
    /// Against the `dbpim-serve` daemon at this `host:port` endpoint. The
    /// daemon must run the *same pipeline configuration* as the fleet
    /// (seed, width multiplier, classes, calibration/evaluation images) —
    /// the fleet's bit-identity guarantee is only as good as that match.
    Remote(String),
}

impl fmt::Display for WorkerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerSpec::Local => f.write_str("local"),
            WorkerSpec::Remote(addr) => write!(f, "remote({addr})"),
        }
    }
}

/// One claimed unit of work: a point plus its owning shard's identity (the
/// shard tag remote requests carry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PointJob {
    pub point: DsePoint,
    pub shard: usize,
    pub shard_points: usize,
}

/// The spec-derived context every executor shares.
#[derive(Debug, Clone)]
pub(crate) struct JobContext {
    /// The raw sparsity request of the fleet spec (ordering preserved so a
    /// remote single-point spec equals the local one field-for-field).
    pub sparsity: Vec<SparsityConfig>,
    /// Canonicalized sparsity list local `run_point` calls use.
    pub unique_sparsity: Vec<SparsityConfig>,
    pub fidelity: bool,
    pub fleet: String,
    pub shards: usize,
}

/// A point-execution backend. Errors are strings: the driver's retry /
/// retire logic only needs a diagnostic, and the underlying error types
/// (pipeline vs. client) do not unify.
pub(crate) trait PointExecutor {
    /// Executes one point. An `Err` marks the attempt failed; the driver
    /// requeues the point and decides the worker's fate. The trace context
    /// (present only while a collector is installed) identifies the
    /// driver-side `fleet.point` span; remote backends propagate it on the
    /// wire so the daemon's `serve.request` span nests under it in a
    /// merged fleet trace.
    fn run(
        &mut self,
        job: &PointJob,
        context: &JobContext,
        trace: Option<TraceContext>,
    ) -> Result<DseEntry, String>;

    /// Cheap liveness probe after failures: `Ok` lets the worker keep
    /// claiming points, `Err` retires it.
    fn heartbeat(&mut self) -> Result<(), String>;
}

/// In-process execution on the shared warm runner.
pub(crate) struct LocalExecutor {
    pub runner: Arc<BatchRunner>,
}

impl PointExecutor for LocalExecutor {
    fn run(
        &mut self,
        job: &PointJob,
        context: &JobContext,
        // In-process execution already happens *inside* the driver's
        // fleet.point span; there is nothing to propagate.
        _trace: Option<TraceContext>,
    ) -> Result<DseEntry, String> {
        let point = job.point;
        self.runner
            .run_point_pruned(
                point.kind,
                point.width,
                point.pruning,
                Some(point.arch),
                &context.unique_sparsity,
                context.fidelity,
            )
            .map(DseEntry::from_sweep)
            .map_err(|e| e.to_string())
    }

    fn heartbeat(&mut self) -> Result<(), String> {
        // An in-process session cannot go away.
        Ok(())
    }
}

/// Execution over a serve-daemon connection, one single-point `Explore`
/// stream per job. The connection is rebuilt lazily after failures, and a
/// response timeout bounds how long a wedged daemon can stall the worker —
/// that timeout *is* the fleet's failure detector for remote workers.
pub(crate) struct RemoteExecutor {
    addr: String,
    timeout: Duration,
    auth_token: Option<String>,
    client: Option<Client>,
}

impl RemoteExecutor {
    pub fn new(addr: String, timeout: Duration, auth_token: Option<String>) -> Self {
        Self { addr, timeout, auth_token, client: None }
    }

    /// The live connection, (re)established, version-checked and — when the
    /// fleet carries a token — authenticated on demand. Open daemons accept
    /// any token, so presenting one is always safe; a daemon *requiring*
    /// auth rejects every work request until the handshake lands, which is
    /// why it happens here, inside the reconnect path, and not once at
    /// startup.
    fn client(&mut self) -> Result<&mut Client, String> {
        if self.client.is_none() {
            let mut client = Client::connect_timeout(self.addr.as_str(), self.timeout)
                .map_err(|e| format!("connect to {}: {e}", self.addr))?;
            client
                .set_response_timeout(Some(self.timeout))
                .map_err(|e| format!("configure {}: {e}", self.addr))?;
            client.ping().map_err(|e| format!("ping {}: {e}", self.addr))?;
            if let Some(token) = &self.auth_token {
                client.authenticate(token).map_err(|e| format!("auth {}: {e}", self.addr))?;
            }
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("just ensured"))
    }

    /// The degenerate one-point spec for `job`: its geometry as an unswept
    /// grid, its model and width pinned, the fleet's sparsity/fidelity
    /// settings verbatim. The daemon runs it through the same `run_point`
    /// path a local worker uses.
    fn single_point_spec(job: &PointJob, context: &JobContext) -> DseSpec {
        DseSpec {
            grid: ArchGrid::around(job.point.arch),
            models: vec![job.point.kind],
            sparsity: context.sparsity.clone(),
            widths: vec![job.point.width],
            // An identity spec travels as an empty axis, keeping the wire
            // request byte-identical to pre-pruning daemons' expectations.
            pruning: if job.point.pruning.is_active() {
                vec![job.point.pruning]
            } else {
                Vec::new()
            },
            fidelity: context.fidelity,
        }
    }
}

impl PointExecutor for RemoteExecutor {
    fn run(
        &mut self,
        job: &PointJob,
        context: &JobContext,
        trace: Option<TraceContext>,
    ) -> Result<DseEntry, String> {
        let spec = Self::single_point_spec(job, context);
        let annotation = ShardAnnotation {
            fleet: context.fleet.clone(),
            shard: job.shard,
            of: context.shards,
            points: job.shard_points,
        };
        let deadline_ms = u64::try_from(self.timeout.as_millis()).unwrap_or(u64::MAX);
        let addr = self.addr.clone();
        let outcome = self.client()?.explore_streaming_traced(
            &spec,
            Some(deadline_ms),
            Some(annotation),
            trace,
            |_, _| {},
        );
        match outcome {
            Ok(mut report) if report.entries.len() == 1 => {
                Ok(report.entries.pop().expect("length checked"))
            }
            Ok(report) => {
                // A daemon answering a 1-point spec with anything else is
                // not speaking our dialect; drop the connection.
                self.client = None;
                Err(format!(
                    "{addr} answered a single-point exploration with {} entries",
                    report.entries.len()
                ))
            }
            Err(e) => {
                // Any failure invalidates the connection (a timeout leaves
                // the stream in an unknown position); reconnect on the next
                // attempt.
                self.client = None;
                Err(format!("{addr}: {e}"))
            }
        }
    }

    fn heartbeat(&mut self) -> Result<(), String> {
        self.client = None; // force a fresh connect + ping
        self.client().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_pim::PipelineConfig;
    use dbpim_arch::ArchConfig;
    use dbpim_csd::OperandWidth;
    use dbpim_nn::ModelKind;

    #[test]
    fn single_point_specs_pin_exactly_one_point() {
        let point = DsePoint {
            kind: ModelKind::AlexNet,
            width: OperandWidth::Int4,
            pruning: db_pim::PruningSpec::unstructured(0.25),
            arch: ArchConfig::paper(),
        };
        let context = JobContext {
            sparsity: vec![SparsityConfig::HybridSparsity, SparsityConfig::DenseBaseline],
            unique_sparsity: vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity],
            fidelity: false,
            fleet: "test".to_string(),
            shards: 2,
        };
        let job = PointJob { point, shard: 1, shard_points: 5 };
        let spec = RemoteExecutor::single_point_spec(&job, &context);
        let points = spec
            .points(PipelineConfig::fast().operand_width, db_pim::PruningSpec::none())
            .expect("feasible");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].kind, point.kind);
        assert_eq!(points[0].width, point.width);
        assert_eq!(points[0].pruning, point.pruning);
        assert_eq!(points[0].arch, point.arch);
        // The raw sparsity request is carried verbatim (the daemon
        // canonicalizes exactly like a local run_point does).
        assert_eq!(spec.sparsity, context.sparsity);
    }

    #[test]
    fn dead_endpoints_fail_with_a_named_address() {
        // A port from the reserved test range nothing listens on.
        let mut executor =
            RemoteExecutor::new("127.0.0.1:9".to_string(), Duration::from_millis(200), None);
        let err = executor.heartbeat().unwrap_err();
        assert!(err.contains("127.0.0.1:9"), "{err}");
    }
}
