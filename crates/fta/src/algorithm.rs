//! Algorithm 1: Fixed Threshold Approximation (FTA), over any operand width.
//!
//! Per filter, the algorithm determines a threshold `φ_th ∈ {0, 1, 2}` from
//! the mode of the per-weight non-zero CSD digit counts and snaps every
//! weight to the nearest value representable with at most `φ_th` non-zero
//! digits. The result is *regular* — each weight of a filter contributes the
//! same number of Complementary Pattern blocks — while the positions of the
//! non-zero digits remain *unstructured*, which is exactly the property the
//! DB-PIM macro exploits.
//!
//! The paper runs the algorithm on INT8 weights; every type here carries an
//! [`OperandWidth`] (taken from the [`QueryTables`] it was built with) so the
//! same code serves INT4/INT12/INT16 weight tensors. Approximated values are
//! stored as `i32` regardless of width; at [`OperandWidth::Int8`] they are
//! numerically identical to the historical `i8` pipeline.

use dbpim_csd::OperandWidth;
use dbpim_nn::{NodeId, QuantizedModel};
use dbpim_tensor::quant::WideQuantizedTensor;
use dbpim_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FtaError;
use crate::table::{QueryTables, MAX_THRESHOLD};

/// One filter after FTA approximation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterApprox {
    /// The fixed threshold `φ_th` chosen for this filter.
    threshold: u32,
    /// Operand width of the approximated weights.
    width: OperandWidth,
    /// Approximated weights, in the filter's original flattened order.
    values: Vec<i32>,
}

impl FilterApprox {
    /// Runs Algorithm 1 on one filter's flattened weights.
    ///
    /// Accepts any integer type that widens to `i32` (`i8` for the INT8
    /// pipeline, `i32` for the width-generic one); the operand width is the
    /// one the `tables` were built for.
    ///
    /// # Errors
    ///
    /// Never fails for thresholds derived by the algorithm itself; the error
    /// type is shared with the explicit-threshold constructor.
    pub fn approximate<T: Into<i32> + Copy>(
        weights: &[T],
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let wide: Vec<i32> = weights.iter().map(|&w| w.into()).collect();
        let threshold = select_threshold(&wide);
        Self::approximate_wide_with_threshold(&wide, threshold, tables)
    }

    /// Approximates one filter with an explicitly chosen threshold (used by
    /// ablation studies).
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] when `threshold > 2`.
    pub fn approximate_with_threshold<T: Into<i32> + Copy>(
        weights: &[T],
        threshold: u32,
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let wide: Vec<i32> = weights.iter().map(|&w| w.into()).collect();
        Self::approximate_wide_with_threshold(&wide, threshold, tables)
    }

    fn approximate_wide_with_threshold(
        weights: &[i32],
        threshold: u32,
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let table = tables.table(threshold)?;
        // Zero is exactly representable at every threshold (it has no
        // non-zero CSD digits), so value-pruned weights skip the query-table
        // search entirely and a fully-pruned filter (threshold 0) never
        // consumes a table entry. `T(0) = {0}` makes the short-circuit
        // bit-identical to the searched result for any input.
        let values = if threshold == 0 {
            vec![0; weights.len()]
        } else {
            weights.iter().map(|&w| if w == 0 { 0 } else { table.nearest(w) }).collect()
        };
        Ok(Self { threshold, width: tables.width(), values })
    }

    /// The filter's fixed threshold `φ_th`.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The operand width of the approximated weights.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// The approximated weights.
    #[must_use]
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Number of weights in the filter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for an empty filter (never produced by the algorithm).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of non-zero CSD digits actually present across the
    /// filter's approximated weights (each occupies one stored 6T cell).
    #[must_use]
    pub fn stored_blocks(&self) -> usize {
        self.values.iter().map(|&v| dbpim_csd::phi(v) as usize).sum()
    }

    /// Number of non-zero approximated weights — the value-level density the
    /// compiler uses to compact pruned filters into fewer tiles.
    #[must_use]
    pub fn nonzero_weights(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count()
    }

    /// Number of cell slots the filter occupies in the PIM array
    /// (`threshold` per weight): padded slots are allocated but idle.
    #[must_use]
    pub fn allocated_slots(&self) -> usize {
        self.values.len() * self.threshold as usize
    }

    /// Mean absolute approximation error against the original weights.
    #[must_use]
    pub fn mean_abs_error(&self, original: &[i32]) -> f64 {
        if original.is_empty() {
            return 0.0;
        }
        let sum: i64 = original
            .iter()
            .zip(&self.values)
            .map(|(&o, &a)| (i64::from(o) - i64::from(a)).abs())
            .sum();
        sum as f64 / original.len() as f64
    }
}

/// Chooses the per-filter threshold `φ_th` exactly as Algorithm 1 does:
///
/// * all weights zero → 0,
/// * mode of the non-zero digit counts is 0 → 1,
/// * mode in `1..=2` → the mode,
/// * mode above 2 → 2.
///
/// Width-independent: the non-zero digit count of a value's canonical form
/// does not depend on how many zero digits pad the word.
#[must_use]
pub fn select_threshold<T: Into<i32> + Copy>(weights: &[T]) -> u32 {
    if weights.is_empty() || weights.iter().all(|&w| w.into() == 0) {
        return 0;
    }
    // One bucket per possible φ: canonical words of the widest supported
    // operand (INT16) never exceed eight non-zero digits. Stack-allocated —
    // this runs once per filter on the hot FTA path.
    const CAP: usize = OperandWidth::Int16.max_phi() as usize;
    let mut hist = [0usize; CAP + 1];
    for &w in weights {
        let phi = dbpim_csd::phi(w.into()) as usize;
        hist[phi.min(CAP)] += 1;
    }
    let mut mode = 0usize;
    for (phi, &count) in hist.iter().enumerate() {
        if count > hist[mode] {
            mode = phi;
        }
    }
    match mode as u32 {
        0 => 1,
        m if m <= MAX_THRESHOLD => m,
        _ => MAX_THRESHOLD,
    }
}

/// FTA approximation of one PIM-mapped layer (convolution or linear).
///
/// The weight tensor's leading dimension indexes the filters; everything
/// behind it is flattened into the filter's weight vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerApprox {
    node_id: NodeId,
    name: String,
    width: OperandWidth,
    weight_shape: Vec<usize>,
    filter_len: usize,
    original: Vec<i32>,
    filters: Vec<FilterApprox>,
}

impl LayerApprox {
    /// Approximates the INT8 weight tensor of one layer.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::BadWeightShape`] for tensors of rank below 2.
    pub fn from_weights(
        node_id: NodeId,
        name: impl Into<String>,
        weights: &Tensor<i8>,
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let wide: Vec<i32> = weights.data().iter().map(|&w| i32::from(w)).collect();
        let wide = Tensor::from_vec(wide, weights.shape().to_vec())
            .expect("same element count as the source tensor");
        Self::from_wide_weights(node_id, name, &wide, tables)
    }

    /// Approximates a width-generic weight tensor (`i32` values in the range
    /// of the `tables`' operand width).
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::BadWeightShape`] for tensors of rank below 2.
    pub fn from_wide_weights(
        node_id: NodeId,
        name: impl Into<String>,
        weights: &Tensor<i32>,
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let shape = weights.shape().to_vec();
        if shape.len() < 2 {
            return Err(FtaError::BadWeightShape { shape });
        }
        let filters_count = shape[0];
        let filter_len = weights.numel() / filters_count;
        let mut filters = Vec::with_capacity(filters_count);
        for f in 0..filters_count {
            let slice = &weights.data()[f * filter_len..(f + 1) * filter_len];
            filters.push(FilterApprox::approximate(slice, tables)?);
        }
        Ok(Self {
            node_id,
            name: name.into(),
            width: tables.width(),
            weight_shape: shape,
            filter_len,
            original: weights.data().to_vec(),
            filters,
        })
    }

    /// Id of the graph node this layer approximates.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// The layer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operand width of the approximated weights.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// Number of filters (output channels).
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Number of weights per filter.
    #[must_use]
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// Per-filter approximations.
    #[must_use]
    pub fn filters(&self) -> &[FilterApprox] {
        &self.filters
    }

    /// The original (pre-approximation) weights, flattened.
    #[must_use]
    pub fn original_values(&self) -> &[i32] {
        &self.original
    }

    /// Per-filter thresholds `φ_th`.
    #[must_use]
    pub fn thresholds(&self) -> Vec<u32> {
        self.filters.iter().map(FilterApprox::threshold).collect()
    }

    /// Per-filter counts of non-zero approximated weights, in filter order.
    /// A magnitude-pruned layer shows counts below [`Self::filter_len`];
    /// the compiler uses them to shrink the tile footprint of sparse filters.
    #[must_use]
    pub fn filter_nonzero_counts(&self) -> Vec<usize> {
        self.filters.iter().map(FilterApprox::nonzero_weights).collect()
    }

    /// Fraction of exactly-zero approximated weights (value-level sparsity
    /// after FTA; `0.0` for an empty layer).
    #[must_use]
    pub fn value_zero_fraction(&self) -> f64 {
        let total = self.filter_count() * self.filter_len;
        if total == 0 {
            return 0.0;
        }
        let nonzero: usize = self.filters.iter().map(FilterApprox::nonzero_weights).sum();
        (total - nonzero) as f64 / total as f64
    }

    /// Histogram of the per-filter thresholds (`[count_φ0, count_φ1, count_φ2]`).
    #[must_use]
    pub fn threshold_histogram(&self) -> [usize; 3] {
        let mut hist = [0usize; 3];
        for f in &self.filters {
            hist[f.threshold() as usize] += 1;
        }
        hist
    }

    /// The approximated weights reassembled into the original tensor shape,
    /// at the layer's width.
    #[must_use]
    pub fn wide_tensor(&self) -> Tensor<i32> {
        let mut data = Vec::with_capacity(self.original.len());
        for f in &self.filters {
            data.extend_from_slice(f.values());
        }
        Tensor::from_vec(data, self.weight_shape.clone())
            .expect("filter decomposition preserves the element count")
    }

    /// The approximated weights reassembled into the original tensor shape
    /// as INT8 values.
    ///
    /// # Panics
    ///
    /// Panics when the layer's width exceeds [`OperandWidth::Int8`]: wider
    /// values do not fit `i8`. Use [`wide_tensor`](Self::wide_tensor) for
    /// width-generic consumers.
    #[must_use]
    pub fn approximated_tensor(&self) -> Tensor<i8> {
        assert!(
            self.width <= OperandWidth::Int8,
            "{} values do not fit an INT8 tensor; use wide_tensor()",
            self.width
        );
        let mut data = Vec::with_capacity(self.original.len());
        for f in &self.filters {
            data.extend(f.values().iter().map(|&v| v as i8));
        }
        Tensor::from_vec(data, self.weight_shape.clone())
            .expect("filter decomposition preserves the element count")
    }
}

/// FTA approximation of every PIM-mapped layer of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelApprox {
    model_name: String,
    width: OperandWidth,
    layers: Vec<LayerApprox>,
}

impl ModelApprox {
    /// Runs Algorithm 1 over every convolution and fully-connected layer of
    /// an INT8-quantized model (the paper's pipeline).
    ///
    /// # Errors
    ///
    /// Propagates weight-shape errors from the individual layers.
    pub fn from_quantized(model: &QuantizedModel) -> Result<Self, FtaError> {
        let _span = dbpim_trace::span!("fta.approx", model = model.name(), width = "int8");
        let tables = QueryTables::new();
        let mut layers = Vec::new();
        for &id in &model.pim_node_ids() {
            let node = &model.nodes()[id];
            let weight =
                node.layer.weight().expect("pim_node_ids only returns layers with weights");
            layers.push(LayerApprox::from_weights(
                id,
                node.name.clone(),
                weight.values(),
                &tables,
            )?);
        }
        Ok(Self { model_name: model.name().to_string(), width: OperandWidth::Int8, layers })
    }

    /// Runs Algorithm 1 at an arbitrary operand width, quantizing the float
    /// weights of every PIM layer per output channel at that width first.
    ///
    /// This is the entry point for INT4/INT12/INT16 workloads: the float
    /// model provides the weights (batch norms folded into their producing
    /// convolutions first, exactly as the INT8 quantizer does),
    /// [`WideQuantizedTensor`] clamps them to the width's range, and the
    /// approximation proceeds exactly as the INT8 pipeline does.
    ///
    /// # Errors
    ///
    /// Propagates weight-shape errors from the individual layers and graph
    /// validation errors from the batch-norm fold.
    pub fn from_model_wide(model: &dbpim_nn::Model, width: OperandWidth) -> Result<Self, FtaError> {
        let _span = dbpim_trace::span!("fta.approx", model = model.name(), width = width.bits());
        let model = dbpim_nn::fold_batch_norm(model)?;
        let tables = QueryTables::for_width(width);
        let mut layers = Vec::new();
        for node in model.nodes() {
            let weight = match &node.layer {
                dbpim_nn::Layer::Conv2d { weight, .. } | dbpim_nn::Layer::Linear { weight, .. } => {
                    weight
                }
                _ => continue,
            };
            let quantized = WideQuantizedTensor::quantize_per_channel(weight, 0, width);
            layers.push(LayerApprox::from_wide_weights(
                node.id,
                node.name.clone(),
                quantized.values(),
                &tables,
            )?);
        }
        Ok(Self { model_name: model.name().to_string(), width, layers })
    }

    /// Name of the approximated model.
    #[must_use]
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// The operand width the approximation was computed at.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// Per-layer approximations in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerApprox] {
        &self.layers
    }

    /// Weight-weighted fraction of exactly-zero approximated weights across
    /// every PIM layer (value-level sparsity after FTA).
    #[must_use]
    pub fn value_zero_fraction(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.filter_count() * l.filter_len()).sum();
        if total == 0 {
            return 0.0;
        }
        let zeros: f64 = self
            .layers
            .iter()
            .map(|l| l.value_zero_fraction() * (l.filter_count() * l.filter_len()) as f64)
            .sum();
        zeros / total as f64
    }

    /// The approximation for a specific graph node.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::UnknownLayer`] when the node was not approximated.
    pub fn layer(&self, node_id: NodeId) -> Result<&LayerApprox, FtaError> {
        self.layers.iter().find(|l| l.node_id == node_id).ok_or(FtaError::UnknownLayer { node_id })
    }

    /// Builds the FTA variant of a quantized model by substituting every
    /// approximated weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::UnsupportedWidth`] for non-INT8 approximations —
    /// the quantized executor stores INT8 weights with INT8 scales, so even
    /// narrower (INT4) values would be installed against mismatched
    /// per-channel scales — and an error when the model's graph no longer
    /// matches the approximation (e.g. different shapes).
    pub fn apply(&self, model: &QuantizedModel) -> Result<QuantizedModel, FtaError> {
        if self.width != OperandWidth::Int8 {
            return Err(FtaError::UnsupportedWidth { bits: self.width.bits() });
        }
        let mut fta_model = model.clone();
        for layer in &self.layers {
            fta_model.replace_weight_values(layer.node_id, layer.approximated_tensor())?;
        }
        Ok(fta_model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_csd::CsdWord;

    fn tables() -> QueryTables {
        QueryTables::new()
    }

    #[test]
    fn threshold_selection_follows_algorithm_1() {
        // All zeros -> 0.
        assert_eq!(select_threshold(&[0i8, 0, 0]), 0);
        // Mode 0 but not all zero -> 1.
        assert_eq!(select_threshold(&[0i8, 0, 0, 1]), 1);
        // Mode 1 -> 1 (powers of two dominate).
        assert_eq!(select_threshold(&[1i8, 2, 4, 8, 7]), 1);
        // Mode 2 -> 2.
        assert_eq!(select_threshold(&[3i8, 5, 6, 9, 1]), 2);
        // Mode 3 -> clamped to 2. (φ(107) = φ(1101011b -> CSD) = 4)
        assert_eq!(select_threshold(&[0b0101_0101i8, 0b0101_0101, 0b0101_0101, 1]), 2);
        assert_eq!(select_threshold::<i8>(&[]), 0);
        // Wide values select thresholds the same way.
        assert_eq!(select_threshold(&[1024i32, 2048, 4096]), 1);
        assert_eq!(select_threshold(&[1025i32, 2050, 4100, 1]), 2);
    }

    #[test]
    fn approximated_weights_respect_the_threshold() {
        let weights: Vec<i8> = vec![3, -5, 17, 100, -100, 0, 127, -128];
        let f = FilterApprox::approximate(&weights, &tables()).unwrap();
        assert!(f.threshold() <= 2);
        assert_eq!(f.width(), OperandWidth::Int8);
        for &v in f.values() {
            assert!(dbpim_csd::phi(v) <= f.threshold(), "value {v}");
        }
        assert_eq!(f.len(), weights.len());
        assert!(!f.is_empty());
    }

    #[test]
    fn zero_filter_gets_threshold_zero() {
        let f = FilterApprox::approximate(&[0i8; 16], &tables()).unwrap();
        assert_eq!(f.threshold(), 0);
        assert_eq!(f.stored_blocks(), 0);
        assert_eq!(f.allocated_slots(), 0);
        assert_eq!(f.nonzero_weights(), 0);
        assert_eq!(f.mean_abs_error(&[0; 16]), 0.0);
    }

    #[test]
    fn pruned_zeros_survive_the_approximation_losslessly() {
        // A value-pruned filter: zeros interleaved with real weights. The
        // zero-skip fast path must leave every zero exactly zero and every
        // surviving weight identical to an unpruned filter of the same
        // values, at every operand width.
        for width in OperandWidth::all() {
            let tables = QueryTables::for_width(width);
            let survivors: Vec<i32> =
                (0..8).map(|i| (i * 37 + 11) % (width.max_value() / 2 + 1) + 1).collect();
            let mut pruned: Vec<i32> = Vec::new();
            for &s in &survivors {
                pruned.push(0);
                pruned.push(s);
            }
            let f = FilterApprox::approximate(&pruned, &tables).unwrap();
            assert_eq!(f.nonzero_weights(), survivors.len(), "{width}");
            for (i, &v) in f.values().iter().enumerate() {
                if i % 2 == 0 {
                    assert_eq!(v, 0, "{width}: pruned slot {i} must stay zero");
                } else {
                    // The zero-skip must not perturb the searched result for
                    // the surviving weights.
                    let table = tables.table(f.threshold()).unwrap();
                    assert_eq!(v, table.nearest(pruned[i]), "{width}: slot {i}");
                }
            }
        }
    }

    #[test]
    fn explicit_zero_threshold_snaps_everything_to_zero() {
        // The threshold-0 short circuit must match the searched behaviour:
        // T(0) = {0} maps every value to zero.
        let f = FilterApprox::approximate_with_threshold(&[7i8, -3, 0, 127], 0, &tables()).unwrap();
        assert_eq!(f.values(), &[0, 0, 0, 0]);
        assert_eq!(f.nonzero_weights(), 0);
    }

    #[test]
    fn explicit_threshold_is_validated() {
        assert!(FilterApprox::approximate_with_threshold(&[1i8, 2], 5, &tables()).is_err());
        let f = FilterApprox::approximate_with_threshold(&[7i8, 9], 1, &tables()).unwrap();
        assert_eq!(f.values(), &[8, 8]);
    }

    #[test]
    fn stored_blocks_never_exceed_allocated_slots() {
        let weights: Vec<i8> = (-64..64).collect();
        let f = FilterApprox::approximate(&weights, &tables()).unwrap();
        assert!(f.stored_blocks() <= f.allocated_slots());
        assert!(f.stored_blocks() > 0);
    }

    #[test]
    fn approximation_error_is_bounded() {
        let weights: Vec<i8> = (i8::MIN..=i8::MAX).collect();
        let f = FilterApprox::approximate_with_threshold(&weights, 2, &tables()).unwrap();
        let wide: Vec<i32> = weights.iter().map(|&w| i32::from(w)).collect();
        // Worst-case error of T(2) is 8 (see table tests).
        assert!(f.mean_abs_error(&wide) <= 8.0);
        for (&o, &a) in wide.iter().zip(f.values()) {
            assert!((o - a).abs() <= 8);
        }
    }

    #[test]
    fn wide_filters_respect_their_width_tables() {
        for width in OperandWidth::all() {
            let tables = QueryTables::for_width(width);
            let weights: Vec<i32> = (0..64)
                .map(|i| (i * 37 + 11) % (width.max_value() + 1) * if i % 2 == 0 { 1 } else { -1 })
                .collect();
            let f = FilterApprox::approximate(&weights, &tables).unwrap();
            assert_eq!(f.width(), width);
            for &v in f.values() {
                assert!(width.contains(v));
                assert!(dbpim_csd::phi(v) <= f.threshold());
            }
        }
    }

    #[test]
    fn layer_approx_round_trips_shape() {
        let weights =
            Tensor::from_vec((0..32).map(|v| (v * 7 % 120) as i8).collect(), vec![4, 8]).unwrap();
        let layer = LayerApprox::from_weights(3, "conv", &weights, &tables()).unwrap();
        assert_eq!(layer.node_id(), 3);
        assert_eq!(layer.name(), "conv");
        assert_eq!(layer.width(), OperandWidth::Int8);
        assert_eq!(layer.filter_count(), 4);
        assert_eq!(layer.filter_len(), 8);
        assert_eq!(layer.thresholds().len(), 4);
        assert_eq!(layer.threshold_histogram().iter().sum::<usize>(), 4);
        let t = layer.approximated_tensor();
        assert_eq!(t.shape(), weights.shape());
        let wide = layer.wide_tensor();
        for (&a, &b) in t.data().iter().zip(wide.data()) {
            assert_eq!(i32::from(a), b);
        }
    }

    #[test]
    fn apply_rejects_any_non_int8_approximation() {
        use dbpim_nn::zoo;
        use dbpim_tensor::random::TensorGenerator;
        let model = zoo::tiny_cnn(10, 31).unwrap();
        let mut gen = TensorGenerator::new(32);
        let (calibration, _) = gen.labelled_batch(1, 3, 32, 32, 10).unwrap();
        let quantized = QuantizedModel::quantize(&model, &calibration).unwrap();
        // Narrower approximations carry non-INT8 scales and must be rejected
        // just like wider ones, not silently installed.
        for width in [OperandWidth::Int4, OperandWidth::Int12, OperandWidth::Int16] {
            let approx = ModelApprox::from_model_wide(&model, width).unwrap();
            assert!(
                matches!(
                    approx.apply(&quantized),
                    Err(FtaError::UnsupportedWidth { bits }) if bits == width.bits()
                ),
                "{width} approximation was applied to the INT8 executor"
            );
        }
        let int8 = ModelApprox::from_quantized(&quantized).unwrap();
        assert!(int8.apply(&quantized).is_ok());
    }

    #[test]
    #[should_panic(expected = "do not fit an INT8 tensor")]
    fn wide_layers_refuse_the_int8_tensor_view() {
        let tables = QueryTables::for_width(OperandWidth::Int16);
        let weights = Tensor::from_vec(vec![1024i32, -2048, 0, 512], vec![2, 2]).unwrap();
        let layer = LayerApprox::from_wide_weights(0, "wide", &weights, &tables).unwrap();
        let _ = layer.approximated_tensor();
    }

    #[test]
    fn rank_one_weights_are_rejected() {
        let weights = Tensor::from_vec(vec![1i8, 2, 3], vec![3]).unwrap();
        assert!(matches!(
            LayerApprox::from_weights(0, "bad", &weights, &tables()),
            Err(FtaError::BadWeightShape { .. })
        ));
    }

    #[test]
    fn layer_counts_value_sparsity_per_filter() {
        // Filter 0 fully pruned, filter 1 half pruned, filter 2 dense.
        let weights = Tensor::from_vec(
            vec![0i8, 0, 0, 0, /* f1 */ 0, 5, 0, 9, /* f2 */ 1, 2, 3, 4],
            vec![3, 4],
        )
        .unwrap();
        let layer = LayerApprox::from_weights(0, "pruned", &weights, &tables()).unwrap();
        assert_eq!(layer.filter_nonzero_counts(), vec![0, 2, 4]);
        assert!((layer.value_zero_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(layer.thresholds()[0], 0);
    }

    #[test]
    fn phi_equals_word_nonzero_digits_for_i8() {
        for v in i8::MIN..=i8::MAX {
            assert_eq!(dbpim_csd::phi(i32::from(v)), CsdWord::from_i8(v).nonzero_digits());
        }
    }
}
