//! Algorithm 1: Fixed Threshold Approximation (FTA).
//!
//! Per filter, the algorithm determines a threshold `φ_th ∈ {0, 1, 2}` from
//! the mode of the per-weight non-zero CSD digit counts and snaps every
//! weight to the nearest value representable with at most `φ_th` non-zero
//! digits. The result is *regular* — each weight of a filter contributes the
//! same number of Complementary Pattern blocks — while the positions of the
//! non-zero digits remain *unstructured*, which is exactly the property the
//! DB-PIM macro exploits.

use dbpim_csd::CsdWord;
use dbpim_nn::{NodeId, QuantizedModel};
use dbpim_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FtaError;
use crate::table::{QueryTables, MAX_THRESHOLD};

/// One filter after FTA approximation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterApprox {
    /// The fixed threshold `φ_th` chosen for this filter.
    threshold: u32,
    /// Approximated INT8 weights, in the filter's original flattened order.
    values: Vec<i8>,
}

impl FilterApprox {
    /// Runs Algorithm 1 on one filter's flattened INT8 weights.
    ///
    /// # Errors
    ///
    /// Never fails for thresholds derived by the algorithm itself; the error
    /// type is shared with the explicit-threshold constructor.
    pub fn approximate(weights: &[i8], tables: &QueryTables) -> Result<Self, FtaError> {
        let threshold = select_threshold(weights);
        Self::approximate_with_threshold(weights, threshold, tables)
    }

    /// Approximates one filter with an explicitly chosen threshold (used by
    /// ablation studies).
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] when `threshold > 2`.
    pub fn approximate_with_threshold(
        weights: &[i8],
        threshold: u32,
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let table = tables.table(threshold)?;
        let values = weights.iter().map(|&w| table.nearest(w)).collect();
        Ok(Self { threshold, values })
    }

    /// The filter's fixed threshold `φ_th`.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The approximated weights.
    #[must_use]
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Number of weights in the filter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for an empty filter (never produced by the algorithm).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of non-zero CSD digits actually present across the
    /// filter's approximated weights (each occupies one stored 6T cell).
    #[must_use]
    pub fn stored_blocks(&self) -> usize {
        self.values.iter().map(|&v| CsdWord::from_i8(v).nonzero_digits() as usize).sum()
    }

    /// Number of cell slots the filter occupies in the PIM array
    /// (`threshold` per weight): padded slots are allocated but idle.
    #[must_use]
    pub fn allocated_slots(&self) -> usize {
        self.values.len() * self.threshold as usize
    }

    /// Mean absolute approximation error against the original weights.
    #[must_use]
    pub fn mean_abs_error(&self, original: &[i8]) -> f64 {
        if original.is_empty() {
            return 0.0;
        }
        let sum: i64 = original
            .iter()
            .zip(&self.values)
            .map(|(&o, &a)| i64::from((i16::from(o) - i16::from(a)).unsigned_abs()))
            .sum();
        sum as f64 / original.len() as f64
    }
}

/// Chooses the per-filter threshold `φ_th` exactly as Algorithm 1 does:
///
/// * all weights zero → 0,
/// * mode of the non-zero digit counts is 0 → 1,
/// * mode in `1..=2` → the mode,
/// * mode above 2 → 2.
#[must_use]
pub fn select_threshold(weights: &[i8]) -> u32 {
    if weights.is_empty() || weights.iter().all(|&w| w == 0) {
        return 0;
    }
    let mut hist = [0usize; 5];
    for &w in weights {
        let phi = CsdWord::from_i8(w).nonzero_digits() as usize;
        hist[phi.min(4)] += 1;
    }
    let mut mode = 0usize;
    for (phi, &count) in hist.iter().enumerate() {
        if count > hist[mode] {
            mode = phi;
        }
    }
    match mode as u32 {
        0 => 1,
        m if m <= MAX_THRESHOLD => m,
        _ => MAX_THRESHOLD,
    }
}

/// FTA approximation of one PIM-mapped layer (convolution or linear).
///
/// The weight tensor's leading dimension indexes the filters; everything
/// behind it is flattened into the filter's weight vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerApprox {
    node_id: NodeId,
    name: String,
    weight_shape: Vec<usize>,
    filter_len: usize,
    original: Vec<i8>,
    filters: Vec<FilterApprox>,
}

impl LayerApprox {
    /// Approximates the INT8 weight tensor of one layer.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::BadWeightShape`] for tensors of rank below 2.
    pub fn from_weights(
        node_id: NodeId,
        name: impl Into<String>,
        weights: &Tensor<i8>,
        tables: &QueryTables,
    ) -> Result<Self, FtaError> {
        let shape = weights.shape().to_vec();
        if shape.len() < 2 {
            return Err(FtaError::BadWeightShape { shape });
        }
        let filters_count = shape[0];
        let filter_len = weights.numel() / filters_count;
        let mut filters = Vec::with_capacity(filters_count);
        for f in 0..filters_count {
            let slice = &weights.data()[f * filter_len..(f + 1) * filter_len];
            filters.push(FilterApprox::approximate(slice, tables)?);
        }
        Ok(Self {
            node_id,
            name: name.into(),
            weight_shape: shape,
            filter_len,
            original: weights.data().to_vec(),
            filters,
        })
    }

    /// Id of the graph node this layer approximates.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// The layer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of filters (output channels).
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Number of weights per filter.
    #[must_use]
    pub fn filter_len(&self) -> usize {
        self.filter_len
    }

    /// Per-filter approximations.
    #[must_use]
    pub fn filters(&self) -> &[FilterApprox] {
        &self.filters
    }

    /// The original (pre-approximation) INT8 weights, flattened.
    #[must_use]
    pub fn original_values(&self) -> &[i8] {
        &self.original
    }

    /// Per-filter thresholds `φ_th`.
    #[must_use]
    pub fn thresholds(&self) -> Vec<u32> {
        self.filters.iter().map(FilterApprox::threshold).collect()
    }

    /// Histogram of the per-filter thresholds (`[count_φ0, count_φ1, count_φ2]`).
    #[must_use]
    pub fn threshold_histogram(&self) -> [usize; 3] {
        let mut hist = [0usize; 3];
        for f in &self.filters {
            hist[f.threshold() as usize] += 1;
        }
        hist
    }

    /// The approximated weights reassembled into the original tensor shape.
    #[must_use]
    pub fn approximated_tensor(&self) -> Tensor<i8> {
        let mut data = Vec::with_capacity(self.original.len());
        for f in &self.filters {
            data.extend_from_slice(f.values());
        }
        Tensor::from_vec(data, self.weight_shape.clone())
            .expect("filter decomposition preserves the element count")
    }
}

/// FTA approximation of every PIM-mapped layer of a quantized model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelApprox {
    model_name: String,
    layers: Vec<LayerApprox>,
}

impl ModelApprox {
    /// Runs Algorithm 1 over every convolution and fully-connected layer of a
    /// quantized model.
    ///
    /// # Errors
    ///
    /// Propagates weight-shape errors from the individual layers.
    pub fn from_quantized(model: &QuantizedModel) -> Result<Self, FtaError> {
        let tables = QueryTables::new();
        let mut layers = Vec::new();
        for &id in &model.pim_node_ids() {
            let node = &model.nodes()[id];
            let weight =
                node.layer.weight().expect("pim_node_ids only returns layers with weights");
            layers.push(LayerApprox::from_weights(
                id,
                node.name.clone(),
                weight.values(),
                &tables,
            )?);
        }
        Ok(Self { model_name: model.name().to_string(), layers })
    }

    /// Name of the approximated model.
    #[must_use]
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Per-layer approximations in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerApprox] {
        &self.layers
    }

    /// The approximation for a specific graph node.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::UnknownLayer`] when the node was not approximated.
    pub fn layer(&self, node_id: NodeId) -> Result<&LayerApprox, FtaError> {
        self.layers.iter().find(|l| l.node_id == node_id).ok_or(FtaError::UnknownLayer { node_id })
    }

    /// Builds the FTA variant of a quantized model by substituting every
    /// approximated weight tensor.
    ///
    /// # Errors
    ///
    /// Returns an error when the model's graph no longer matches the
    /// approximation (e.g. different shapes).
    pub fn apply(&self, model: &QuantizedModel) -> Result<QuantizedModel, FtaError> {
        let mut fta_model = model.clone();
        for layer in &self.layers {
            fta_model.replace_weight_values(layer.node_id, layer.approximated_tensor())?;
        }
        Ok(fta_model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> QueryTables {
        QueryTables::new()
    }

    #[test]
    fn threshold_selection_follows_algorithm_1() {
        // All zeros -> 0.
        assert_eq!(select_threshold(&[0, 0, 0]), 0);
        // Mode 0 but not all zero -> 1.
        assert_eq!(select_threshold(&[0, 0, 0, 1]), 1);
        // Mode 1 -> 1 (powers of two dominate).
        assert_eq!(select_threshold(&[1, 2, 4, 8, 7]), 1);
        // Mode 2 -> 2.
        assert_eq!(select_threshold(&[3, 5, 6, 9, 1]), 2);
        // Mode 3 -> clamped to 2. (φ(107) = φ(1101011b -> CSD) = 4)
        assert_eq!(select_threshold(&[0b0101_0101, 0b0101_0101, 0b0101_0101, 1]), 2);
        assert_eq!(select_threshold(&[]), 0);
    }

    #[test]
    fn approximated_weights_respect_the_threshold() {
        let weights: Vec<i8> = vec![3, -5, 17, 100, -100, 0, 127, -128];
        let f = FilterApprox::approximate(&weights, &tables()).unwrap();
        assert!(f.threshold() <= 2);
        for &v in f.values() {
            assert!(CsdWord::from_i8(v).nonzero_digits() <= f.threshold(), "value {v}");
        }
        assert_eq!(f.len(), weights.len());
        assert!(!f.is_empty());
    }

    #[test]
    fn zero_filter_gets_threshold_zero() {
        let f = FilterApprox::approximate(&[0; 16], &tables()).unwrap();
        assert_eq!(f.threshold(), 0);
        assert_eq!(f.stored_blocks(), 0);
        assert_eq!(f.allocated_slots(), 0);
        assert_eq!(f.mean_abs_error(&[0; 16]), 0.0);
    }

    #[test]
    fn explicit_threshold_is_validated() {
        assert!(FilterApprox::approximate_with_threshold(&[1, 2], 5, &tables()).is_err());
        let f = FilterApprox::approximate_with_threshold(&[7, 9], 1, &tables()).unwrap();
        assert_eq!(f.values(), &[8, 8]);
    }

    #[test]
    fn stored_blocks_never_exceed_allocated_slots() {
        let weights: Vec<i8> = (-64..64).collect();
        let f = FilterApprox::approximate(&weights, &tables()).unwrap();
        assert!(f.stored_blocks() <= f.allocated_slots());
        assert!(f.stored_blocks() > 0);
    }

    #[test]
    fn approximation_error_is_bounded() {
        let weights: Vec<i8> = (i8::MIN..=i8::MAX).collect();
        let f = FilterApprox::approximate_with_threshold(&weights, 2, &tables()).unwrap();
        // Worst-case error of T(2) is 8 (see table tests).
        assert!(f.mean_abs_error(&weights) <= 8.0);
        for (&o, &a) in weights.iter().zip(f.values()) {
            assert!((i16::from(o) - i16::from(a)).abs() <= 8);
        }
    }

    #[test]
    fn layer_approx_round_trips_shape() {
        let weights =
            Tensor::from_vec((0..32).map(|v| (v * 7 % 120) as i8).collect(), vec![4, 8]).unwrap();
        let layer = LayerApprox::from_weights(3, "conv", &weights, &tables()).unwrap();
        assert_eq!(layer.node_id(), 3);
        assert_eq!(layer.name(), "conv");
        assert_eq!(layer.filter_count(), 4);
        assert_eq!(layer.filter_len(), 8);
        assert_eq!(layer.thresholds().len(), 4);
        assert_eq!(layer.threshold_histogram().iter().sum::<usize>(), 4);
        let t = layer.approximated_tensor();
        assert_eq!(t.shape(), weights.shape());
    }

    #[test]
    fn rank_one_weights_are_rejected() {
        let weights = Tensor::from_vec(vec![1i8, 2, 3], vec![3]).unwrap();
        assert!(matches!(
            LayerApprox::from_weights(0, "bad", &weights, &tables()),
            Err(FtaError::BadWeightShape { .. })
        ));
    }
}
