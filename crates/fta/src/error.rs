//! Error type for the FTA algorithm crate.

use std::error::Error;
use std::fmt;

use dbpim_nn::NnError;
use dbpim_tensor::TensorError;

/// Errors produced by the FTA approximation and metadata extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtaError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying neural-network operation failed.
    Nn(NnError),
    /// A weight tensor has an unusable shape for per-filter grouping.
    BadWeightShape {
        /// The offending shape.
        shape: Vec<usize>,
    },
    /// A threshold outside the supported `0..=2` range was requested.
    InvalidThreshold {
        /// The requested threshold.
        threshold: u32,
    },
    /// Mismatched image / label counts in a fidelity evaluation.
    MismatchedBatch {
        /// Number of images supplied.
        images: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// The referenced layer does not exist in the approximation.
    UnknownLayer {
        /// The requested graph node id.
        node_id: usize,
    },
    /// An operand width unusable for the requested operation (e.g. applying
    /// a wider-than-INT8 approximation to the INT8 quantized executor).
    UnsupportedWidth {
        /// The offending width's bit count.
        bits: u32,
    },
}

impl fmt::Display for FtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtaError::Tensor(e) => write!(f, "tensor error: {e}"),
            FtaError::Nn(e) => write!(f, "model error: {e}"),
            FtaError::BadWeightShape { shape } => {
                write!(f, "weight tensor shape {shape:?} cannot be grouped into filters")
            }
            FtaError::InvalidThreshold { threshold } => {
                write!(f, "threshold {threshold} is outside the supported range 0..=2")
            }
            FtaError::MismatchedBatch { images, labels } => {
                write!(f, "fidelity batch has {images} images but {labels} labels")
            }
            FtaError::UnknownLayer { node_id } => {
                write!(f, "no approximated layer for graph node {node_id}")
            }
            FtaError::UnsupportedWidth { bits } => {
                write!(f, "operand width {bits} is not supported by this INT8-only path")
            }
        }
    }
}

impl Error for FtaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtaError::Tensor(e) => Some(e),
            FtaError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for FtaError {
    fn from(e: TensorError) -> Self {
        FtaError::Tensor(e)
    }
}

impl From<NnError> for FtaError {
    fn from(e: NnError) -> Self {
        FtaError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = FtaError::InvalidThreshold { threshold: 9 };
        assert!(e.to_string().contains('9'));
        let e = FtaError::BadWeightShape { shape: vec![1] };
        assert!(e.to_string().contains("[1]"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: FtaError = TensorError::EmptyShape.into();
        assert!(matches!(e, FtaError::Tensor(_)));
        let e: FtaError = NnError::EmptyGraph.into();
        assert!(matches!(e, FtaError::Nn(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FtaError>();
    }
}
