//! Accuracy-fidelity evaluation (the reproduction's substitute for Table 2).
//!
//! The paper reports CIFAR-100 top-1 accuracy of the original INT8 model
//! versus the FTA-approximated model (drop below 1 %). Without the original
//! pre-trained checkpoints this reproduction measures the same code path on
//! synthetic labelled batches: both models are executed image by image and
//! compared on (a) top-1 agreement between the two models, (b) "accuracy"
//! against the synthetic labels and (c) logit SQNR. The quantity standing in
//! for the paper's accuracy drop is `baseline_accuracy - fta_accuracy`.

use dbpim_nn::QuantizedModel;
use dbpim_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::FtaError;

/// Result of comparing a baseline INT8 model against its FTA variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Number of evaluated images.
    pub images: usize,
    /// Fraction of images where both models predict the same class.
    pub top1_agreement: f64,
    /// Top-1 accuracy of the baseline INT8 model against the labels.
    pub baseline_accuracy: f64,
    /// Top-1 accuracy of the FTA model against the labels.
    pub fta_accuracy: f64,
    /// Mean signal-to-quantization-noise ratio of the FTA logits relative to
    /// the baseline logits, in dB.
    pub mean_logit_sqnr_db: f64,
}

impl FidelityReport {
    /// The accuracy drop introduced by the FTA approximation
    /// (positive = the FTA model is worse), the Table 2 "Accu. Drop" column.
    #[must_use]
    pub fn accuracy_drop(&self) -> f64 {
        self.baseline_accuracy - self.fta_accuracy
    }
}

/// Evaluates baseline-vs-FTA fidelity on a labelled batch.
///
/// # Errors
///
/// Returns [`FtaError::MismatchedBatch`] when image and label counts differ
/// and propagates execution errors from either model.
pub fn evaluate_fidelity(
    baseline: &QuantizedModel,
    fta: &QuantizedModel,
    images: &[Tensor<f32>],
    labels: &[usize],
) -> Result<FidelityReport, FtaError> {
    if images.len() != labels.len() {
        return Err(FtaError::MismatchedBatch { images: images.len(), labels: labels.len() });
    }
    if images.is_empty() {
        return Ok(FidelityReport {
            images: 0,
            top1_agreement: 1.0,
            baseline_accuracy: 0.0,
            fta_accuracy: 0.0,
            mean_logit_sqnr_db: f64::INFINITY,
        });
    }
    let mut agree = 0usize;
    let mut baseline_correct = 0usize;
    let mut fta_correct = 0usize;
    let mut sqnr_sum = 0.0f64;
    let mut sqnr_count = 0usize;
    for (image, &label) in images.iter().zip(labels) {
        let base_logits = baseline.forward(image)?;
        let fta_logits = fta.forward(image)?;
        let base_pred = dbpim_nn::argmax(base_logits.data());
        let fta_pred = dbpim_nn::argmax(fta_logits.data());
        if base_pred == fta_pred {
            agree += 1;
        }
        if base_pred == label {
            baseline_correct += 1;
        }
        if fta_pred == label {
            fta_correct += 1;
        }
        let sqnr = base_logits.sqnr_db(&fta_logits).map_err(FtaError::Tensor)?;
        if sqnr.is_finite() {
            sqnr_sum += f64::from(sqnr);
            sqnr_count += 1;
        }
    }
    let n = images.len() as f64;
    Ok(FidelityReport {
        images: images.len(),
        top1_agreement: agree as f64 / n,
        baseline_accuracy: baseline_correct as f64 / n,
        fta_accuracy: fta_correct as f64 / n,
        mean_logit_sqnr_db: if sqnr_count > 0 {
            sqnr_sum / sqnr_count as f64
        } else {
            f64::INFINITY
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::ModelApprox;
    use dbpim_nn::zoo;
    use dbpim_tensor::random::TensorGenerator;

    fn setup(seed: u64) -> (QuantizedModel, QuantizedModel, Vec<Tensor<f32>>, Vec<usize>) {
        let model = zoo::tiny_cnn(10, seed).unwrap();
        let mut gen = TensorGenerator::new(seed + 1);
        let (cal, _) = gen.labelled_batch(4, 3, 32, 32, 10).unwrap();
        let baseline = QuantizedModel::quantize(&model, &cal).unwrap();
        let approx = ModelApprox::from_quantized(&baseline).unwrap();
        let fta = approx.apply(&baseline).unwrap();
        let (images, labels) = gen.labelled_batch(12, 3, 32, 32, 10).unwrap();
        (baseline, fta, images, labels)
    }

    #[test]
    fn fta_model_mostly_agrees_with_baseline() {
        let (baseline, fta, images, labels) = setup(21);
        let report = evaluate_fidelity(&baseline, &fta, &images, &labels).unwrap();
        assert_eq!(report.images, 12);
        assert!(report.top1_agreement >= 0.75, "agreement {}", report.top1_agreement);
        assert!(report.accuracy_drop().abs() <= 0.25, "drop {}", report.accuracy_drop());
        assert!(report.mean_logit_sqnr_db > 3.0, "sqnr {}", report.mean_logit_sqnr_db);
    }

    #[test]
    fn identical_models_agree_perfectly() {
        let (baseline, _fta, images, labels) = setup(22);
        let report = evaluate_fidelity(&baseline, &baseline, &images, &labels).unwrap();
        assert_eq!(report.top1_agreement, 1.0);
        assert_eq!(report.accuracy_drop(), 0.0);
        assert!(report.mean_logit_sqnr_db.is_infinite());
    }

    #[test]
    fn mismatched_batches_are_rejected() {
        let (baseline, fta, images, _) = setup(23);
        let err = evaluate_fidelity(&baseline, &fta, &images, &[0, 1]).unwrap_err();
        assert!(matches!(err, FtaError::MismatchedBatch { .. }));
    }

    #[test]
    fn empty_batch_yields_neutral_report() {
        let (baseline, fta, _, _) = setup(24);
        let report = evaluate_fidelity(&baseline, &fta, &[], &[]).unwrap();
        assert_eq!(report.images, 0);
        assert_eq!(report.top1_agreement, 1.0);
    }
}
