//! Fixed Threshold Approximation (FTA) — the algorithm half of DB-PIM.
//!
//! The paper's Algorithm 1 turns an INT8 weight tensor into a *dyadic-block
//! regular* tensor: per filter, every weight uses at most the same fixed
//! number `φ_th ∈ {0, 1, 2}` of non-zero CSD digits, while the positions of
//! those digits stay unstructured. This crate provides:
//!
//! * [`QueryTable`] / [`QueryTables`] — the sets `T(φ_th)` of representable
//!   values.
//! * [`FilterApprox`] / [`LayerApprox`] / [`ModelApprox`] — Algorithm 1 on a
//!   filter, a layer and a whole quantized model.
//! * [`metadata`] — extraction of the per-cell metadata (sign + dyadic-block
//!   index) the hardware stores in its metadata register files, plus lossless
//!   reconstruction.
//! * [`stats`] — Fig. 2(a)-style sparsity ratios and the `U_act` utilization
//!   of Table 3.
//! * [`fidelity`] — the Table 2 substitute comparing the INT8 baseline model
//!   against its FTA variant.
//!
//! # Example
//!
//! ```
//! use dbpim_fta::{ModelApprox, stats::ModelFtaStats};
//! use dbpim_nn::{zoo, QuantizedModel};
//! use dbpim_tensor::random::TensorGenerator;
//!
//! let model = zoo::tiny_cnn(10, 3)?;
//! let mut gen = TensorGenerator::new(4);
//! let (calibration, _) = gen.labelled_batch(2, 3, 32, 32, 10)?;
//! let quantized = QuantizedModel::quantize(&model, &calibration)?;
//! let approx = ModelApprox::from_quantized(&quantized)?;
//! let stats = ModelFtaStats::from_model(&approx);
//! assert!(stats.fta_zero_ratio() > stats.binary_zero_ratio());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod error;
pub mod fidelity;
pub mod metadata;
pub mod stats;
mod table;

pub use algorithm::{select_threshold, FilterApprox, LayerApprox, ModelApprox};
pub use error::FtaError;
pub use fidelity::{evaluate_fidelity, FidelityReport};
pub use table::{QueryTable, QueryTables, MAX_THRESHOLD};
