//! Dyadic-block metadata extraction, parameterized over operand width.
//!
//! After the FTA approximation every weight of a filter carries at most
//! `φ_th` Complementary Pattern blocks. The compiler stores, per occupied 6T
//! cell, the block's *sign* (one bit) and *dyadic-block index*
//! ([`OperandWidth::index_bits`] bits — two for the paper's INT8 layout) in
//! the metadata register files, while the cell itself holds the pattern bits
//! `Q/Q̄` that encode which of the block's two digit positions is non-zero.
//! This module extracts exactly that information and provides the inverse
//! (reconstruction), which the bit-accurate architecture model and the test
//! suite use to prove the compression is lossless.

use dbpim_csd::{BlockPattern, CsdWord, OperandWidth, Sign};
use serde::{Deserialize, Serialize};

use crate::algorithm::{FilterApprox, LayerApprox};

/// Metadata of one stored Complementary Pattern block (one occupied 6T cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StoredBlock {
    /// Dyadic-block index (`0..width.blocks()`); the block covers digit
    /// positions `2*index` and `2*index + 1`.
    pub db_index: u8,
    /// `true` when the non-zero digit sits in the block's high position.
    /// This is the information carried by the cell's `Q/Q̄` pair.
    pub high: bool,
    /// Sign of the non-zero digit (stored in the metadata RF).
    pub sign: Sign,
}

impl StoredBlock {
    /// The signed contribution of this block to its weight's value.
    #[must_use]
    pub fn value(&self) -> i32 {
        let shift = 2 * u32::from(self.db_index) + u32::from(self.high);
        self.sign.factor() << shift
    }

    /// The left-shift amount the CSD adder tree applies to this block's AND
    /// result.
    #[must_use]
    pub fn shift(&self) -> u32 {
        2 * u32::from(self.db_index) + u32::from(self.high)
    }
}

/// The cell slots of one weight: exactly `φ_th` entries, `None` marking a
/// padded (idle) slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightSlots {
    /// The approximated weight value the slots encode.
    pub value: i32,
    /// One entry per allocated cell (`φ_th` of them).
    pub slots: Vec<Option<StoredBlock>>,
}

impl WeightSlots {
    /// Extracts the slots of one approximated weight for a given threshold
    /// and operand width.
    ///
    /// # Panics
    ///
    /// Panics if the weight needs more than `threshold` blocks or lies
    /// outside the width's range, both of which the FTA approximation
    /// guarantees never happen.
    #[must_use]
    pub fn from_weight(value: i32, threshold: u32, width: OperandWidth) -> Self {
        let word = CsdWord::encode(value, width)
            .expect("FTA-approximated weights lie in the operand range");
        let blocks = word.dyadic_blocks();
        let mut slots: Vec<Option<StoredBlock>> = Vec::with_capacity(threshold as usize);
        for block in blocks.iter() {
            if let BlockPattern::Comp { high, sign } = block.pattern() {
                slots.push(Some(StoredBlock { db_index: block.index(), high, sign }));
            }
        }
        assert!(
            slots.len() <= threshold as usize,
            "weight {value} needs {} blocks but the filter threshold is {threshold}",
            slots.len()
        );
        slots.resize(threshold as usize, None);
        Self { value, slots }
    }

    /// Number of occupied (non-padded) slots.
    #[must_use]
    pub fn stored(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of padded slots.
    #[must_use]
    pub fn padded(&self) -> usize {
        self.slots.len() - self.stored()
    }

    /// Reconstructs the weight value from the stored blocks.
    #[must_use]
    pub fn reconstruct(&self) -> i32 {
        self.slots.iter().flatten().map(StoredBlock::value).sum()
    }
}

/// Metadata of one filter: the cell slots of every weight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterMetadata {
    /// Index of the filter inside its layer.
    pub filter_index: usize,
    /// The filter's fixed threshold `φ_th`.
    pub threshold: u32,
    /// Operand width of the encoded weights.
    pub width: OperandWidth,
    /// Per-weight slot assignments, in the filter's weight order.
    pub weights: Vec<WeightSlots>,
}

impl FilterMetadata {
    /// Extracts metadata from one approximated filter.
    #[must_use]
    pub fn from_filter(filter_index: usize, filter: &FilterApprox) -> Self {
        let threshold = filter.threshold();
        let width = filter.width();
        let weights = filter
            .values()
            .iter()
            .map(|&v| WeightSlots::from_weight(v, threshold, width))
            .collect();
        Self { filter_index, threshold, width, weights }
    }

    /// Total occupied cells.
    #[must_use]
    pub fn stored_cells(&self) -> usize {
        self.weights.iter().map(WeightSlots::stored).sum()
    }

    /// Total allocated cells (`weights * φ_th`).
    #[must_use]
    pub fn allocated_cells(&self) -> usize {
        self.weights.iter().map(|w| w.slots.len()).sum()
    }

    /// Total padded (idle) cells.
    #[must_use]
    pub fn padded_cells(&self) -> usize {
        self.allocated_cells() - self.stored_cells()
    }

    /// Metadata storage in bits: one sign bit plus the block index
    /// ([`OperandWidth::metadata_bits_per_cell`] — three bits for INT8) per
    /// allocated cell.
    #[must_use]
    pub fn metadata_bits(&self) -> usize {
        self.width.metadata_bits_per_cell() as usize * self.allocated_cells()
    }
}

/// Metadata of one whole PIM-mapped layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMetadata {
    /// Graph node id of the layer.
    pub node_id: usize,
    /// Weights per filter.
    pub filter_len: usize,
    /// Operand width of the encoded weights.
    pub width: OperandWidth,
    /// Per-filter metadata.
    pub filters: Vec<FilterMetadata>,
}

impl LayerMetadata {
    /// Extracts metadata for every filter of an approximated layer.
    #[must_use]
    pub fn from_layer(layer: &LayerApprox) -> Self {
        let filters = layer
            .filters()
            .iter()
            .enumerate()
            .map(|(i, f)| FilterMetadata::from_filter(i, f))
            .collect();
        Self {
            node_id: layer.node_id(),
            filter_len: layer.filter_len(),
            width: layer.width(),
            filters,
        }
    }

    /// Total occupied cells across all filters.
    #[must_use]
    pub fn stored_cells(&self) -> usize {
        self.filters.iter().map(FilterMetadata::stored_cells).sum()
    }

    /// Total allocated cells across all filters.
    #[must_use]
    pub fn allocated_cells(&self) -> usize {
        self.filters.iter().map(FilterMetadata::allocated_cells).sum()
    }

    /// Actual utilization `U_act` of Eq. (1): occupied cells over cells
    /// participating in computation.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let allocated = self.allocated_cells();
        if allocated == 0 {
            return 1.0;
        }
        self.stored_cells() as f64 / allocated as f64
    }

    /// Total metadata storage in bits.
    #[must_use]
    pub fn metadata_bits(&self) -> usize {
        self.filters.iter().map(FilterMetadata::metadata_bits).sum()
    }

    /// Dense cell count for the same layer (one bit-cell per weight bit),
    /// the denominator of the compression-ratio statistic.
    #[must_use]
    pub fn dense_cells(&self) -> usize {
        self.filters.len() * self.filter_len * self.width.bits() as usize
    }

    /// Storage compression ratio of the dyadic-block format relative to a
    /// dense mapping at the same width (larger is better).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let allocated = self.allocated_cells();
        if allocated == 0 {
            return f64::from(self.width.bits());
        }
        self.dense_cells() as f64 / allocated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::QueryTables;
    use dbpim_tensor::Tensor;

    #[test]
    fn slots_reconstruct_the_weight() {
        for v in i8::MIN..=i8::MAX {
            let phi = CsdWord::from_i8(v).nonzero_digits();
            if phi > 2 {
                continue;
            }
            let slots = WeightSlots::from_weight(i32::from(v), 2, OperandWidth::Int8);
            assert_eq!(slots.reconstruct(), i32::from(v), "value {v}");
            assert_eq!(slots.stored() as u32, phi);
            assert_eq!(slots.padded() as u32, 2 - phi);
        }
    }

    #[test]
    fn slots_reconstruct_wide_weights() {
        for width in OperandWidth::all() {
            for shift in 0..width.bits() - 1 {
                let v = 1i32 << shift;
                for value in [v, -v, width.min_value()] {
                    let slots = WeightSlots::from_weight(value, 1, width);
                    assert_eq!(slots.reconstruct(), value, "{width} value {value}");
                    assert_eq!(slots.stored(), 1);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn slots_panic_when_threshold_is_too_small() {
        // 0b0101_0101 = 85 needs four blocks.
        let _ = WeightSlots::from_weight(85, 1, OperandWidth::Int8);
    }

    #[test]
    fn stored_block_value_matches_shift_and_sign() {
        let b = StoredBlock { db_index: 2, high: true, sign: Sign::Negative };
        assert_eq!(b.shift(), 5);
        assert_eq!(b.value(), -32);
        let b = StoredBlock { db_index: 0, high: false, sign: Sign::Positive };
        assert_eq!(b.value(), 1);
        // INT16 reaches block index 7 (digit positions 14/15).
        let b = StoredBlock { db_index: 7, high: true, sign: Sign::Negative };
        assert_eq!(b.value(), -32768);
    }

    #[test]
    fn filter_metadata_counts_padding() {
        let tables = QueryTables::new();
        // Filter of weights {1, 5}: threshold 2; 1 stores one block (one pad),
        // 5 stores two blocks.
        let filter = FilterApprox::approximate_with_threshold(&[1i8, 5], 2, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &filter);
        assert_eq!(meta.allocated_cells(), 4);
        assert_eq!(meta.stored_cells(), 3);
        assert_eq!(meta.padded_cells(), 1);
        assert_eq!(meta.metadata_bits(), 12);
        assert_eq!(meta.width, OperandWidth::Int8);
    }

    #[test]
    fn metadata_bits_follow_the_width_layout() {
        for (width, expected_bits_per_cell) in [
            (OperandWidth::Int4, 2),
            (OperandWidth::Int8, 3),
            (OperandWidth::Int12, 4),
            (OperandWidth::Int16, 4),
        ] {
            let tables = QueryTables::for_width(width);
            let filter = FilterApprox::approximate_with_threshold(&[1i32, 3], 2, &tables).unwrap();
            let meta = FilterMetadata::from_filter(0, &filter);
            assert_eq!(meta.allocated_cells(), 4);
            assert_eq!(meta.metadata_bits(), expected_bits_per_cell * 4, "{width}");
        }
    }

    #[test]
    fn layer_metadata_is_lossless_and_utilization_below_one() {
        let tables = QueryTables::new();
        let values: Vec<i8> = (0..64).map(|i| ((i * 13 + 7) % 251) as i8).collect();
        let weights = Tensor::from_vec(values, vec![8, 8]).unwrap();
        let layer =
            crate::algorithm::LayerApprox::from_weights(1, "conv", &weights, &tables).unwrap();
        let meta = LayerMetadata::from_layer(&layer);

        // Reconstruction equals the approximated tensor.
        let approx = layer.approximated_tensor();
        for (f, filter_meta) in meta.filters.iter().enumerate() {
            for (j, slots) in filter_meta.weights.iter().enumerate() {
                assert_eq!(slots.reconstruct(), i32::from(approx.data()[f * 8 + j]));
            }
        }

        assert!(meta.utilization() > 0.5 && meta.utilization() <= 1.0);
        assert!(meta.compression_ratio() >= 8.0 / 2.0);
        assert_eq!(meta.dense_cells(), 8 * 8 * 8);
        assert!(meta.metadata_bits() > 0);
    }

    #[test]
    fn all_zero_layer_has_full_utilization_by_convention() {
        let tables = QueryTables::new();
        let weights = Tensor::from_vec(vec![0i8; 16], vec![4, 4]).unwrap();
        let layer =
            crate::algorithm::LayerApprox::from_weights(0, "zeros", &weights, &tables).unwrap();
        let meta = LayerMetadata::from_layer(&layer);
        assert_eq!(meta.allocated_cells(), 0);
        assert_eq!(meta.utilization(), 1.0);
        assert_eq!(meta.compression_ratio(), 8.0);
    }
}
