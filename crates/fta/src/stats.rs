//! Sparsity and utilization statistics of the FTA approximation.
//!
//! These statistics feed three of the paper's results directly:
//!
//! * the "Ours" bars of **Fig. 2(a)** (bit-level sparsity after FTA),
//! * the actual utilization `U_act` row of **Table 3**,
//! * the per-layer threshold distribution that Section 4.3 uses to explain
//!   why AlexNet accelerates more than VGG-19.

use dbpim_csd::OperandWidth;
use dbpim_tensor::stats::WeightBitStats;
use serde::{Deserialize, Serialize};

use crate::algorithm::{LayerApprox, ModelApprox};
use crate::metadata::LayerMetadata;

/// Sparsity / utilization statistics of one approximated layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerFtaStats {
    /// Graph node id of the layer.
    pub node_id: usize,
    /// Layer name.
    pub name: String,
    /// Operand width the layer was approximated at.
    pub width: OperandWidth,
    /// Number of filters (output channels).
    pub filter_count: usize,
    /// Weights per filter.
    pub filter_len: usize,
    /// Histogram of per-filter thresholds `[φ0, φ1, φ2]`.
    pub threshold_histogram: [usize; 3],
    /// Occupied 6T cells after compression.
    pub stored_cells: usize,
    /// Allocated 6T cells (`Σ weights · φ_th`).
    pub allocated_cells: usize,
    /// Zero-bit ratio of the original weights in plain binary ("Ori_Zero").
    pub binary_zero_ratio: f64,
    /// Zero-digit ratio of the original weights after CSD ("CSD_Zero").
    pub csd_zero_ratio: f64,
    /// Zero-digit ratio of the approximated weights ("Ours").
    pub fta_zero_ratio: f64,
    /// Actual utilization `U_act` (Eq. 1).
    pub utilization: f64,
    /// Mean absolute INT8 approximation error.
    pub mean_abs_error: f64,
}

impl LayerFtaStats {
    /// Computes the statistics of one approximated layer.
    #[must_use]
    pub fn from_layer(layer: &LayerApprox) -> Self {
        let width = layer.width();
        let meta = LayerMetadata::from_layer(layer);
        let original = WeightBitStats::from_wide_values(layer.original_values(), width);
        let total_weights = layer.filter_count() * layer.filter_len();
        let total_bits = (total_weights * width.bits() as usize) as f64;
        let stored = meta.stored_cells();
        let mut error_sum = 0.0f64;
        for (filter, approx) in layer.filters().iter().enumerate() {
            let start = filter * layer.filter_len();
            let end = start + layer.filter_len();
            error_sum += approx.mean_abs_error(&layer.original_values()[start..end])
                * layer.filter_len() as f64;
        }
        Self {
            node_id: layer.node_id(),
            name: layer.name().to_string(),
            width,
            filter_count: layer.filter_count(),
            filter_len: layer.filter_len(),
            threshold_histogram: layer.threshold_histogram(),
            stored_cells: stored,
            allocated_cells: meta.allocated_cells(),
            binary_zero_ratio: original.binary_zero_ratio(),
            csd_zero_ratio: original.csd_zero_ratio(),
            fta_zero_ratio: if total_bits > 0.0 { 1.0 - stored as f64 / total_bits } else { 1.0 },
            utilization: meta.utilization(),
            mean_abs_error: if total_weights > 0 { error_sum / total_weights as f64 } else { 0.0 },
        }
    }

    /// Total number of weights in the layer.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.filter_count * self.filter_len
    }

    /// The layer's dominant (most frequent) threshold.
    #[must_use]
    pub fn dominant_threshold(&self) -> u32 {
        let mut best = 0usize;
        for (phi, &count) in self.threshold_histogram.iter().enumerate() {
            if count > self.threshold_histogram[best] {
                best = phi;
            }
        }
        best as u32
    }
}

/// Whole-model FTA statistics: per-layer entries plus weight-count-weighted
/// aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFtaStats {
    /// Name of the model.
    pub model_name: String,
    /// Per-layer statistics in execution order.
    pub layers: Vec<LayerFtaStats>,
}

impl ModelFtaStats {
    /// Computes the statistics of every approximated layer of a model.
    #[must_use]
    pub fn from_model(approx: &ModelApprox) -> Self {
        Self {
            model_name: approx.model_name().to_string(),
            layers: approx.layers().iter().map(LayerFtaStats::from_layer).collect(),
        }
    }

    /// Total number of weights across PIM layers.
    #[must_use]
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerFtaStats::weight_count).sum()
    }

    /// Weight-weighted binary zero-bit ratio ("Ori_Zero" in Fig. 2(a)).
    #[must_use]
    pub fn binary_zero_ratio(&self) -> f64 {
        self.weighted(|l| l.binary_zero_ratio)
    }

    /// Weight-weighted CSD zero-digit ratio ("CSD_Zero" in Fig. 2(a)).
    #[must_use]
    pub fn csd_zero_ratio(&self) -> f64 {
        self.weighted(|l| l.csd_zero_ratio)
    }

    /// Weight-weighted FTA zero-digit ratio ("Ours" in Fig. 2(a)).
    #[must_use]
    pub fn fta_zero_ratio(&self) -> f64 {
        self.weighted(|l| l.fta_zero_ratio)
    }

    /// Cell-weighted actual utilization `U_act` (Table 3).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let allocated: usize = self.layers.iter().map(|l| l.allocated_cells).sum();
        if allocated == 0 {
            return 1.0;
        }
        let stored: usize = self.layers.iter().map(|l| l.stored_cells).sum();
        stored as f64 / allocated as f64
    }

    /// Weight-weighted mean absolute approximation error.
    #[must_use]
    pub fn mean_abs_error(&self) -> f64 {
        self.weighted(|l| l.mean_abs_error)
    }

    fn weighted<F: Fn(&LayerFtaStats) -> f64>(&self, f: F) -> f64 {
        let total = self.total_weights();
        if total == 0 {
            return 0.0;
        }
        self.layers.iter().map(|l| f(l) * l.weight_count() as f64).sum::<f64>() / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::LayerApprox;
    use crate::table::QueryTables;
    use dbpim_tensor::quant::QuantizedTensor;
    use dbpim_tensor::random::TensorGenerator;
    use dbpim_tensor::Tensor;

    fn realistic_layer(seed: u64, filters: usize, len: usize) -> LayerApprox {
        let mut gen = TensorGenerator::new(seed);
        let w = gen.weight_tensor(vec![filters, len]).unwrap();
        let q = QuantizedTensor::quantize_per_channel(&w, 0);
        LayerApprox::from_weights(0, "conv", q.values(), &QueryTables::new()).unwrap()
    }

    #[test]
    fn fig2a_ordering_holds_for_realistic_weights() {
        let layer = realistic_layer(1, 64, 144);
        let stats = LayerFtaStats::from_layer(&layer);
        // The paper's Fig. 2(a): Ours >= CSD_Zero >= Ori_Zero, all above 60 %.
        assert!(stats.binary_zero_ratio > 0.6, "binary {}", stats.binary_zero_ratio);
        assert!(stats.csd_zero_ratio >= stats.binary_zero_ratio);
        assert!(stats.fta_zero_ratio >= stats.csd_zero_ratio);
        assert!(stats.fta_zero_ratio >= 0.75, "fta {}", stats.fta_zero_ratio);
    }

    #[test]
    fn utilization_is_high_for_realistic_weights() {
        let layer = realistic_layer(2, 128, 64);
        let stats = LayerFtaStats::from_layer(&layer);
        // Table 3 reports 91.95 % .. 98.42 % across the five models.
        assert!(stats.utilization > 0.75, "utilization {}", stats.utilization);
        assert!(stats.utilization <= 1.0);
        assert!(stats.dominant_threshold() <= 2);
        assert_eq!(stats.weight_count(), 128 * 64);
    }

    #[test]
    fn approximation_error_is_small_for_realistic_weights() {
        let layer = realistic_layer(3, 32, 72);
        let stats = LayerFtaStats::from_layer(&layer);
        assert!(stats.mean_abs_error < 2.0, "error {}", stats.mean_abs_error);
    }

    #[test]
    fn model_aggregates_weight_layers() {
        let tables = QueryTables::new();
        let a = LayerApprox::from_weights(
            0,
            "a",
            &Tensor::from_vec(vec![1i8; 16], vec![4, 4]).unwrap(),
            &tables,
        )
        .unwrap();
        let b = LayerApprox::from_weights(
            1,
            "b",
            &Tensor::from_vec(vec![0i8; 64], vec![8, 8]).unwrap(),
            &tables,
        )
        .unwrap();
        let stats = ModelFtaStats {
            model_name: "toy".to_string(),
            layers: vec![LayerFtaStats::from_layer(&a), LayerFtaStats::from_layer(&b)],
        };
        assert_eq!(stats.total_weights(), 80);
        // Layer "b" is all zero, so the aggregate zero ratio exceeds layer "a"'s.
        assert!(stats.fta_zero_ratio() > LayerFtaStats::from_layer(&a).fta_zero_ratio);
        assert!(stats.utilization() <= 1.0);
        assert!(stats.mean_abs_error() >= 0.0);
    }

    #[test]
    fn empty_model_stats_are_neutral() {
        let stats = ModelFtaStats { model_name: "empty".to_string(), layers: vec![] };
        assert_eq!(stats.total_weights(), 0);
        assert_eq!(stats.utilization(), 1.0);
        assert_eq!(stats.fta_zero_ratio(), 0.0);
    }
}
