//! The query table `T(φ_th)` of Algorithm 1, parameterized over operand
//! width.
//!
//! `T(φ_th)` is the set of values of one [`OperandWidth`] whose canonical
//! signed digit form uses at most `φ_th` non-zero digits. The FTA algorithm
//! replaces every weight of a filter with the nearest member of the filter's
//! table, which caps the number of Complementary Pattern blocks each weight
//! contributes to the PIM array. The paper builds the tables for INT8;
//! [`QueryTable::for_width`] generalizes the construction to
//! INT4/INT12/INT16.

use dbpim_csd::OperandWidth;
use serde::{Deserialize, Serialize};

use crate::error::FtaError;

/// Largest filter threshold the paper's Algorithm 1 allows (at any width).
pub const MAX_THRESHOLD: u32 = 2;

/// The query table `T(φ_th)`: all values of one operand width representable
/// with at most `φ_th` non-zero CSD digits, sorted ascending.
///
/// # Examples
///
/// ```
/// use dbpim_csd::OperandWidth;
/// use dbpim_fta::QueryTable;
///
/// let t1 = QueryTable::new(1)?; // INT8
/// // With one non-zero digit only powers of two (and zero) are available.
/// assert_eq!(t1.nearest(5), 4);
/// assert_eq!(t1.nearest(0), 0);
/// assert!(t1.contains(-64));
///
/// let t2 = QueryTable::for_width(OperandWidth::Int12, 2)?;
/// assert_eq!(t2.nearest(5), 5); // 5 = 4 + 1 uses two digits
/// assert!(t2.contains(1920)); // 2048 - 128
/// # Ok::<(), dbpim_fta::FtaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTable {
    width: OperandWidth,
    threshold: u32,
    values: Vec<i32>,
}

impl QueryTable {
    /// Builds the INT8 table for a threshold in `0..=2`.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] for thresholds above
    /// [`MAX_THRESHOLD`].
    pub fn new(threshold: u32) -> Result<Self, FtaError> {
        Self::for_width(OperandWidth::Int8, threshold)
    }

    /// Builds the table of an operand width for a threshold in `0..=2`.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] for thresholds above
    /// [`MAX_THRESHOLD`].
    pub fn for_width(width: OperandWidth, threshold: u32) -> Result<Self, FtaError> {
        if threshold > MAX_THRESHOLD {
            return Err(FtaError::InvalidThreshold { threshold });
        }
        // Exhaustive scan of the width's range: ascending, so the result is
        // already sorted. At most 2^16 φ computations (INT16).
        let values: Vec<i32> = (width.min_value()..=width.max_value())
            .filter(|&v| dbpim_csd::phi(v) <= threshold)
            .collect();
        Ok(Self { width, threshold, values })
    }

    /// The operand width this table was built for.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// The threshold this table was built for.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The admissible values, sorted ascending.
    #[must_use]
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Number of admissible values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// A table is never empty (zero is always admissible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns `true` when `value` is exactly representable under the
    /// threshold.
    #[must_use]
    pub fn contains(&self, value: i32) -> bool {
        self.values.binary_search(&value).is_ok()
    }

    /// The admissible value closest to `value` (Algorithm 1 line 16).
    ///
    /// Ties are broken towards the value of smaller magnitude, which never
    /// increases the number of stored non-zero digits.
    #[must_use]
    pub fn nearest(&self, value: i32) -> i32 {
        match self.values.binary_search(&value) {
            Ok(_) => value,
            Err(pos) => {
                let hi = self.values.get(pos).copied();
                let lo = if pos > 0 { Some(self.values[pos - 1]) } else { None };
                match (lo, hi) {
                    (Some(lo), Some(hi)) => {
                        let dl = i64::from(value) - i64::from(lo);
                        let dh = i64::from(hi) - i64::from(value);
                        if dl < dh {
                            lo
                        } else if dh < dl {
                            hi
                        } else if lo.unsigned_abs() <= hi.unsigned_abs() {
                            lo
                        } else {
                            hi
                        }
                    }
                    (Some(lo), None) => lo,
                    (None, Some(hi)) => hi,
                    (None, None) => 0,
                }
            }
        }
    }

    /// Largest absolute approximation error over the width's whole range.
    #[must_use]
    pub fn worst_case_error(&self) -> u32 {
        (self.width.min_value()..=self.width.max_value())
            .map(|v| (i64::from(v) - i64::from(self.nearest(v))).unsigned_abs() as u32)
            .max()
            .unwrap_or(0)
    }
}

/// The three query tables (`φ_th` = 0, 1, 2) of one operand width, built
/// once and shared.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTables {
    width: OperandWidth,
    tables: [QueryTable; 3],
}

impl QueryTables {
    /// Builds all three INT8 tables.
    #[must_use]
    pub fn new() -> Self {
        Self::for_width(OperandWidth::Int8)
    }

    /// Builds all three tables of an operand width.
    #[must_use]
    pub fn for_width(width: OperandWidth) -> Self {
        Self {
            width,
            tables: [
                QueryTable::for_width(width, 0).expect("threshold 0 is valid"),
                QueryTable::for_width(width, 1).expect("threshold 1 is valid"),
                QueryTable::for_width(width, 2).expect("threshold 2 is valid"),
            ],
        }
    }

    /// The operand width the tables were built for.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// The table for a given threshold.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] for thresholds above
    /// [`MAX_THRESHOLD`].
    pub fn table(&self, threshold: u32) -> Result<&QueryTable, FtaError> {
        self.tables.get(threshold as usize).ok_or(FtaError::InvalidThreshold { threshold })
    }
}

impl Default for QueryTables {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpim_csd::CsdWord;

    #[test]
    fn table_zero_only_contains_zero() {
        let t = QueryTable::new(0).unwrap();
        assert_eq!(t.values(), &[0]);
        assert_eq!(t.nearest(100), 0);
        assert_eq!(t.nearest(-128), 0);
        assert_eq!(t.width(), OperandWidth::Int8);
    }

    #[test]
    fn table_one_contains_signed_powers_of_two() {
        let t = QueryTable::new(1).unwrap();
        // 0, ±1, ±2, ±4, ±8, ±16, ±32, ±64, -128 and +128 does not fit i8.
        assert_eq!(t.len(), 16);
        assert!(t.contains(-128));
        assert!(!t.contains(3));
        assert!(!t.is_empty());
    }

    #[test]
    fn table_two_members_use_at_most_two_digits() {
        let t = QueryTable::new(2).unwrap();
        for &v in t.values() {
            assert!(CsdWord::from_i8(v as i8).nonzero_digits() <= 2, "value {v}");
        }
        assert!(t.contains(96)); // 128 - 32
        assert!(t.contains(-96));
        assert!(!t.contains(107));
    }

    #[test]
    fn per_width_tables_respect_threshold_and_range() {
        for width in OperandWidth::all() {
            for threshold in 0..=MAX_THRESHOLD {
                let t = QueryTable::for_width(width, threshold).unwrap();
                assert!(t.contains(0));
                for &v in t.values() {
                    assert!(width.contains(v), "{width} value {v}");
                    assert!(dbpim_csd::phi(v) <= threshold, "{width} value {v}");
                }
                // Every power of two in range belongs to T(1) and above.
                if threshold >= 1 {
                    for shift in 0..width.bits() - 1 {
                        assert!(t.contains(1 << shift));
                        assert!(t.contains(-(1 << shift)));
                    }
                    assert!(t.contains(width.min_value()));
                }
            }
        }
    }

    #[test]
    fn nearest_is_truly_nearest() {
        for threshold in 0..=2 {
            let t = QueryTable::new(threshold).unwrap();
            for v in i8::MIN..=i8::MAX {
                let v = i32::from(v);
                let n = t.nearest(v);
                let err = (v - n).abs();
                for &candidate in t.values() {
                    assert!(
                        (v - candidate).abs() >= err,
                        "threshold {threshold}: {candidate} is closer to {v} than {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_ties_prefer_smaller_magnitude() {
        let t = QueryTable::new(1).unwrap();
        // 3 is equidistant from 2 and 4; expect 2.
        assert_eq!(t.nearest(3), 2);
        assert_eq!(t.nearest(-3), -2);
    }

    #[test]
    fn exact_values_are_preserved() {
        let t = QueryTable::new(2).unwrap();
        for &v in t.values() {
            assert_eq!(t.nearest(v), v);
        }
    }

    #[test]
    fn worst_case_error_shrinks_with_threshold() {
        let e0 = QueryTable::new(0).unwrap().worst_case_error();
        let e1 = QueryTable::new(1).unwrap().worst_case_error();
        let e2 = QueryTable::new(2).unwrap().worst_case_error();
        assert!(e0 > e1 && e1 > e2, "{e0} {e1} {e2}");
        assert_eq!(e0, 128);
        // The largest gap in T(2) sits between 96 = 128-32 and 112 = 128-16.
        assert!(e2 <= 8, "phi=2 worst case error {e2}");
    }

    #[test]
    fn worst_case_error_scales_with_width() {
        let mut previous = 0u32;
        for width in OperandWidth::all() {
            let e = QueryTable::for_width(width, 2).unwrap().worst_case_error();
            assert!(e >= previous, "{width}: {e} < {previous}");
            previous = e;
        }
        // INT4: every value within [-8, 7] uses at most two digits.
        assert_eq!(QueryTable::for_width(OperandWidth::Int4, 2).unwrap().worst_case_error(), 0);
    }

    #[test]
    fn invalid_threshold_is_rejected() {
        assert!(QueryTable::new(3).is_err());
        let tables = QueryTables::new();
        assert!(tables.table(3).is_err());
        assert_eq!(tables.table(1).unwrap().threshold(), 1);
        assert_eq!(QueryTables::default().table(2).unwrap().threshold(), 2);
        assert_eq!(QueryTables::for_width(OperandWidth::Int16).width(), OperandWidth::Int16);
    }
}
