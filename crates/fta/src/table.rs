//! The query table `T(φ_th)` of Algorithm 1.
//!
//! `T(φ_th)` is the set of INT8 values whose canonical signed digit form uses
//! at most `φ_th` non-zero digits. The FTA algorithm replaces every weight of
//! a filter with the nearest member of the filter's table, which caps the
//! number of Complementary Pattern blocks each weight contributes to the PIM
//! array.

use dbpim_csd::CsdWord;
use serde::{Deserialize, Serialize};

use crate::error::FtaError;

/// Largest filter threshold the paper's Algorithm 1 allows.
pub const MAX_THRESHOLD: u32 = 2;

/// The query table `T(φ_th)`: all INT8 values representable with at most
/// `φ_th` non-zero CSD digits, sorted ascending.
///
/// # Examples
///
/// ```
/// use dbpim_fta::QueryTable;
///
/// let t1 = QueryTable::new(1)?;
/// // With one non-zero digit only powers of two (and zero) are available.
/// assert_eq!(t1.nearest(5), 4);
/// assert_eq!(t1.nearest(0), 0);
/// assert!(t1.contains(-64));
///
/// let t2 = QueryTable::new(2)?;
/// assert_eq!(t2.nearest(5), 5); // 5 = 4 + 1 uses two digits
/// # Ok::<(), dbpim_fta::FtaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTable {
    threshold: u32,
    values: Vec<i8>,
}

impl QueryTable {
    /// Builds the table for a threshold in `0..=2`.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] for thresholds above
    /// [`MAX_THRESHOLD`].
    pub fn new(threshold: u32) -> Result<Self, FtaError> {
        if threshold > MAX_THRESHOLD {
            return Err(FtaError::InvalidThreshold { threshold });
        }
        let mut values: Vec<i8> = (i8::MIN..=i8::MAX)
            .filter(|&v| CsdWord::from_i8(v).nonzero_digits() <= threshold)
            .collect();
        values.sort_unstable();
        Ok(Self { threshold, values })
    }

    /// The threshold this table was built for.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The admissible values, sorted ascending.
    #[must_use]
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Number of admissible values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// A table is never empty (zero is always admissible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns `true` when `value` is exactly representable under the
    /// threshold.
    #[must_use]
    pub fn contains(&self, value: i8) -> bool {
        self.values.binary_search(&value).is_ok()
    }

    /// The admissible value closest to `value` (Algorithm 1 line 16).
    ///
    /// Ties are broken towards the value of smaller magnitude, which never
    /// increases the number of stored non-zero digits.
    #[must_use]
    pub fn nearest(&self, value: i8) -> i8 {
        match self.values.binary_search(&value) {
            Ok(_) => value,
            Err(pos) => {
                let hi = self.values.get(pos).copied();
                let lo = if pos > 0 { Some(self.values[pos - 1]) } else { None };
                match (lo, hi) {
                    (Some(lo), Some(hi)) => {
                        let dl = i16::from(value) - i16::from(lo);
                        let dh = i16::from(hi) - i16::from(value);
                        if dl < dh {
                            lo
                        } else if dh < dl {
                            hi
                        } else if lo.unsigned_abs() <= hi.unsigned_abs() {
                            lo
                        } else {
                            hi
                        }
                    }
                    (Some(lo), None) => lo,
                    (None, Some(hi)) => hi,
                    (None, None) => 0,
                }
            }
        }
    }

    /// Largest absolute approximation error over the whole INT8 range.
    #[must_use]
    pub fn worst_case_error(&self) -> u32 {
        (i8::MIN..=i8::MAX)
            .map(|v| (i32::from(v) - i32::from(self.nearest(v))).unsigned_abs())
            .max()
            .unwrap_or(0)
    }
}

/// The three query tables (`φ_th` = 0, 1, 2) built once and shared.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTables {
    tables: [QueryTable; 3],
}

impl QueryTables {
    /// Builds all three tables.
    #[must_use]
    pub fn new() -> Self {
        Self {
            tables: [
                QueryTable::new(0).expect("threshold 0 is valid"),
                QueryTable::new(1).expect("threshold 1 is valid"),
                QueryTable::new(2).expect("threshold 2 is valid"),
            ],
        }
    }

    /// The table for a given threshold.
    ///
    /// # Errors
    ///
    /// Returns [`FtaError::InvalidThreshold`] for thresholds above
    /// [`MAX_THRESHOLD`].
    pub fn table(&self, threshold: u32) -> Result<&QueryTable, FtaError> {
        self.tables.get(threshold as usize).ok_or(FtaError::InvalidThreshold { threshold })
    }
}

impl Default for QueryTables {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_zero_only_contains_zero() {
        let t = QueryTable::new(0).unwrap();
        assert_eq!(t.values(), &[0]);
        assert_eq!(t.nearest(100), 0);
        assert_eq!(t.nearest(-128), 0);
    }

    #[test]
    fn table_one_contains_signed_powers_of_two() {
        let t = QueryTable::new(1).unwrap();
        // 0, ±1, ±2, ±4, ±8, ±16, ±32, ±64, -128 and +128 does not fit i8.
        assert_eq!(t.len(), 16);
        assert!(t.contains(-128));
        assert!(!t.contains(3));
        assert!(!t.is_empty());
    }

    #[test]
    fn table_two_members_use_at_most_two_digits() {
        let t = QueryTable::new(2).unwrap();
        for &v in t.values() {
            assert!(CsdWord::from_i8(v).nonzero_digits() <= 2, "value {v}");
        }
        assert!(t.contains(96)); // 128 - 32
        assert!(t.contains(-96));
        assert!(!t.contains(107));
    }

    #[test]
    fn nearest_is_truly_nearest() {
        for threshold in 0..=2 {
            let t = QueryTable::new(threshold).unwrap();
            for v in i8::MIN..=i8::MAX {
                let n = t.nearest(v);
                let err = (i32::from(v) - i32::from(n)).abs();
                for &candidate in t.values() {
                    assert!(
                        (i32::from(v) - i32::from(candidate)).abs() >= err,
                        "threshold {threshold}: {candidate} is closer to {v} than {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_ties_prefer_smaller_magnitude() {
        let t = QueryTable::new(1).unwrap();
        // 3 is equidistant from 2 and 4; expect 2.
        assert_eq!(t.nearest(3), 2);
        assert_eq!(t.nearest(-3), -2);
    }

    #[test]
    fn exact_values_are_preserved() {
        let t = QueryTable::new(2).unwrap();
        for &v in t.values() {
            assert_eq!(t.nearest(v), v);
        }
    }

    #[test]
    fn worst_case_error_shrinks_with_threshold() {
        let e0 = QueryTable::new(0).unwrap().worst_case_error();
        let e1 = QueryTable::new(1).unwrap().worst_case_error();
        let e2 = QueryTable::new(2).unwrap().worst_case_error();
        assert!(e0 > e1 && e1 > e2, "{e0} {e1} {e2}");
        assert_eq!(e0, 128);
        // The largest gap in T(2) sits between 96 = 128-32 and 112 = 128-16.
        assert!(e2 <= 8, "phi=2 worst case error {e2}");
    }

    #[test]
    fn invalid_threshold_is_rejected() {
        assert!(QueryTable::new(3).is_err());
        let tables = QueryTables::new();
        assert!(tables.table(3).is_err());
        assert_eq!(tables.table(1).unwrap().threshold(), 1);
        assert_eq!(QueryTables::default().table(2).unwrap().threshold(), 2);
    }
}
