//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

use dbpim_tensor::TensorError;

/// Errors produced while building or executing a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The input tensor does not have the shape a layer expects.
    InputShape {
        /// Name of the offending layer.
        layer: String,
        /// Expected shape (may use 0 for "any").
        expected: Vec<usize>,
        /// Actual shape.
        actual: Vec<usize>,
    },
    /// A graph node references an undefined input node.
    UnknownNode {
        /// The referenced node id.
        id: usize,
    },
    /// The graph has no output node or is empty.
    EmptyGraph,
    /// A layer's parameter tensors are inconsistent with its configuration.
    BadParameters {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A model name does not match any zoo topology (see
    /// [`ModelKind::from_str`](crate::ModelKind)).
    UnknownModel {
        /// The unrecognized name.
        name: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InputShape { layer, expected, actual } => {
                write!(f, "layer {layer} expected input shape {expected:?} but got {actual:?}")
            }
            NnError::UnknownNode { id } => write!(f, "graph references unknown node {id}"),
            NnError::EmptyGraph => write!(f, "the model graph has no nodes"),
            NnError::BadParameters { layer, reason } => {
                write!(f, "layer {layer} has inconsistent parameters: {reason}")
            }
            NnError::UnknownModel { name } => {
                write!(f, "unknown model `{name}` (expected one of: alexnet, vgg19, resnet18, mobilenetv2, efficientnetb0)")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let e: NnError = TensorError::EmptyShape.into();
        assert!(matches!(e, NnError::Tensor(_)));
        assert!(e.to_string().contains("tensor error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
