//! Model graphs and the float-precision executor.

use dbpim_tensor::{PruningSpec, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::layer::Layer;
use crate::ops;
use crate::summary::{LayerSummary, ModelSummary};

/// Identifier of a node inside a [`Model`].
pub type NodeId = usize;

/// One node of the model graph: a named layer plus the ids of the nodes it
/// reads from. A node with no inputs reads the model input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node id (equal to the node's position in [`Model::nodes`]).
    pub id: NodeId,
    /// Human-readable unique name (e.g. `"stage1.block0.conv1"`).
    pub name: String,
    /// The layer executed by this node.
    pub layer: Layer,
    /// Ids of producer nodes; empty means "the model input".
    pub inputs: Vec<NodeId>,
}

/// A directed acyclic model graph over [`Layer`]s with a single input and a
/// single output (the last node).
///
/// # Examples
///
/// ```
/// use dbpim_nn::{ModelBuilder, Layer, Conv2dCfg, Activation};
/// use dbpim_tensor::Tensor;
///
/// let mut b = ModelBuilder::new("tiny", vec![1, 4, 4]);
/// b.chain("conv", Layer::Conv2d {
///     cfg: Conv2dCfg::new(1, 2, 3).with_padding(1),
///     weight: Tensor::zeros(vec![2, 1, 3, 3])?,
///     bias: None,
/// });
/// b.chain("relu", Layer::Activation(Activation::Relu));
/// let model = b.build()?;
/// assert_eq!(model.output_shape()?, vec![2, 4, 4]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    input_shape: Vec<usize>,
    nodes: Vec<Node>,
}

impl Model {
    /// The model's name (e.g. `"resnet18"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the single model input (`[C, H, W]` for image models).
    #[must_use]
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// The graph nodes in topological (insertion) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to the graph nodes (used by weight initialisation and
    /// batch-norm folding).
    pub fn nodes_mut(&mut self) -> &mut Vec<Node> {
        &mut self.nodes
    }

    /// Id of the output node (the last node).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyGraph`] for a model with no nodes.
    pub fn output_node(&self) -> Result<NodeId, NnError> {
        if self.nodes.is_empty() {
            Err(NnError::EmptyGraph)
        } else {
            Ok(self.nodes.len() - 1)
        }
    }

    /// Validates the graph structure: node ids are consecutive, every input
    /// reference points at an earlier node and arities match.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownNode`], [`NnError::EmptyGraph`] or
    /// [`NnError::BadParameters`] describing the first problem found.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.nodes.is_empty() {
            return Err(NnError::EmptyGraph);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id != i {
                return Err(NnError::BadParameters {
                    layer: node.name.clone(),
                    reason: format!("node id {} does not match position {i}", node.id),
                });
            }
            for &input in &node.inputs {
                if input >= i {
                    return Err(NnError::UnknownNode { id: input });
                }
            }
            let expected = node.layer.arity();
            let actual = node.inputs.len().max(1);
            if actual != expected {
                return Err(NnError::BadParameters {
                    layer: node.name.clone(),
                    reason: format!("expected {expected} inputs, got {actual}"),
                });
            }
        }
        Ok(())
    }

    /// Infers the output shape of every node.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors from the individual layers.
    pub fn node_output_shapes(&self) -> Result<Vec<Vec<usize>>, NnError> {
        self.validate()?;
        let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let inputs: Vec<Vec<usize>> = if node.inputs.is_empty() {
                vec![self.input_shape.clone()]
            } else {
                node.inputs.iter().map(|&i| shapes[i].clone()).collect()
            };
            shapes.push(node.layer.output_shape(&node.name, &inputs)?);
        }
        Ok(shapes)
    }

    /// Shape of the model output.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors.
    pub fn output_shape(&self) -> Result<Vec<usize>, NnError> {
        let shapes = self.node_output_shapes()?;
        Ok(shapes.last().cloned().unwrap_or_default())
    }

    /// Runs the model on one `[C, H, W]` image and returns every node's
    /// output (used for activation-range calibration).
    ///
    /// # Errors
    ///
    /// Returns a shape or execution error from the first failing layer.
    pub fn forward_all(&self, input: &Tensor<f32>) -> Result<Vec<Tensor<f32>>, NnError> {
        self.validate()?;
        let mut outputs: Vec<Tensor<f32>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let gathered: Vec<&Tensor<f32>> = if node.inputs.is_empty() {
                vec![input]
            } else {
                node.inputs.iter().map(|&i| &outputs[i]).collect()
            };
            outputs.push(execute_layer(&node.layer, &gathered)?);
        }
        Ok(outputs)
    }

    /// Runs the model on one `[C, H, W]` image and returns the output of the
    /// last node (the logits for classification models).
    ///
    /// # Errors
    ///
    /// Returns a shape or execution error from the first failing layer.
    pub fn forward(&self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let mut outputs = self.forward_all(input)?;
        outputs.pop().ok_or(NnError::EmptyGraph)
    }

    /// Index of the largest logit for one image (top-1 class).
    ///
    /// # Errors
    ///
    /// Returns a shape or execution error from the first failing layer.
    pub fn predict(&self, input: &Tensor<f32>) -> Result<usize, NnError> {
        let logits = self.forward(input)?;
        Ok(argmax(logits.data()))
    }

    /// Per-layer and total parameter/MAC summary.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference errors.
    pub fn summary(&self) -> Result<ModelSummary, NnError> {
        let shapes = self.node_output_shapes()?;
        let mut layers = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let input_shapes: Vec<Vec<usize>> = if node.inputs.is_empty() {
                vec![self.input_shape.clone()]
            } else {
                node.inputs.iter().map(|&i| shapes[i].clone()).collect()
            };
            layers.push(LayerSummary {
                node_id: node.id,
                name: node.name.clone(),
                kind: node.layer.kind_name().to_string(),
                output_shape: shapes[node.id].clone(),
                params: node.layer.params(),
                macs: node.layer.macs(&input_shapes),
                is_pim: node.layer.is_pim_layer(),
            });
        }
        Ok(ModelSummary::new(self.name.clone(), layers))
    }

    /// Applies `f` to every node's layer (used for batch-norm folding and
    /// weight substitution).
    pub fn map_layers_in_place<F: FnMut(NodeId, &mut Layer)>(&mut self, mut f: F) {
        for node in &mut self.nodes {
            f(node.id, &mut node.layer);
        }
    }

    /// Returns a copy of the model with the magnitude-pruning `spec` applied
    /// to every PIM layer's weights (Conv2d and Linear; biases and all other
    /// layers are untouched). Structured pruning ranks output channels — the
    /// leading weight dimension — by L1 norm. With an inactive spec the model
    /// is returned unchanged, so `pruned(PruningSpec::none())` is a plain
    /// clone.
    #[must_use]
    pub fn pruned(&self, spec: PruningSpec) -> Model {
        let mut model = self.clone();
        if !spec.is_active() {
            return model;
        }
        model.map_layers_in_place(|_, layer| {
            if let Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } = layer {
                let channels = weight.shape().first().copied().unwrap_or(0);
                spec.apply(weight.data_mut(), channels);
            }
        });
        model
    }

    /// Fraction of exactly-zero weight values across all PIM layers
    /// (`0.0` for a model with no Conv2d/Linear weights). Used to verify
    /// that pruning reached the requested value sparsity.
    #[must_use]
    pub fn weight_zero_fraction(&self) -> f64 {
        let mut zeros = 0usize;
        let mut total = 0usize;
        for node in &self.nodes {
            if let Layer::Conv2d { weight, .. } | Layer::Linear { weight, .. } = &node.layer {
                total += weight.data().len();
                zeros += weight.data().iter().filter(|v| **v == 0.0).count();
            }
        }
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }
}

/// Index of the maximum element (first maximum on ties).
#[must_use]
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

fn execute_layer(layer: &Layer, inputs: &[&Tensor<f32>]) -> Result<Tensor<f32>, NnError> {
    let single = || inputs.first().copied().ok_or(NnError::EmptyGraph);
    match layer {
        Layer::Conv2d { cfg, weight, bias } => ops::conv2d(single()?, weight, bias.as_deref(), cfg),
        Layer::Linear { cfg, weight, bias } => {
            let flat = ops::flatten(single()?);
            ops::linear(&flat, weight, bias.as_deref(), cfg)
        }
        Layer::BatchNorm(bn) => ops::batch_norm(single()?, bn),
        Layer::Activation(act) => Ok(ops::activation(single()?, *act)),
        Layer::Pool2d(cfg) => ops::pool2d(single()?, cfg),
        Layer::GlobalAvgPool => ops::global_avg_pool(single()?),
        Layer::Flatten => Ok(ops::flatten(single()?)),
        Layer::Add => ops::add(inputs[0], inputs[1]),
        Layer::ChannelScale => ops::channel_scale(inputs[0], inputs[1]),
    }
}

/// Incremental builder for [`Model`] graphs.
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    input_shape: Vec<usize>,
    nodes: Vec<Node>,
    last: Option<NodeId>,
}

impl ModelBuilder {
    /// Starts a model with the given name and input shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input_shape: Vec<usize>) -> Self {
        Self { name: name.into(), input_shape, nodes: Vec::new(), last: None }
    }

    /// Adds a node reading from explicit producer nodes (empty = model input)
    /// and returns its id. The new node becomes the "last" node that
    /// [`ModelBuilder::chain`] appends to.
    pub fn add(&mut self, name: impl Into<String>, layer: Layer, inputs: Vec<NodeId>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node { id, name: name.into(), layer, inputs });
        self.last = Some(id);
        id
    }

    /// Adds a node reading from the previously added node (or the model input
    /// for the first node) and returns its id.
    pub fn chain(&mut self, name: impl Into<String>, layer: Layer) -> NodeId {
        let inputs = match self.last {
            Some(last) => vec![last],
            None => vec![],
        };
        self.add(name, layer, inputs)
    }

    /// Id of the most recently added node.
    #[must_use]
    pub fn last(&self) -> Option<NodeId> {
        self.last
    }

    /// Overrides which node subsequent [`ModelBuilder::chain`] calls append
    /// to (used when building residual branches).
    pub fn set_last(&mut self, id: NodeId) {
        self.last = Some(id);
    }

    /// Finalizes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns a graph-validation error (see [`Model::validate`]).
    pub fn build(self) -> Result<Model, NnError> {
        let model = Model { name: self.name, input_shape: self.input_shape, nodes: self.nodes };
        model.validate()?;
        model.node_output_shapes()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Conv2dCfg, LinearCfg};

    fn conv_layer(inc: usize, outc: usize, k: usize, value: f32) -> Layer {
        let cfg = Conv2dCfg::new(inc, outc, k).with_padding(k / 2);
        let weight = Tensor::filled(value, cfg.weight_dims()).unwrap();
        Layer::Conv2d { cfg, weight, bias: None }
    }

    fn tiny_model() -> Model {
        let mut b = ModelBuilder::new("tiny", vec![1, 4, 4]);
        b.chain("conv1", conv_layer(1, 2, 3, 0.1));
        b.chain("relu1", Layer::Activation(Activation::Relu));
        b.chain("flatten", Layer::Flatten);
        b.chain(
            "fc",
            Layer::Linear {
                cfg: LinearCfg::new(32, 4),
                weight: Tensor::filled(0.01, vec![4, 32]).unwrap(),
                bias: Some(vec![0.0, 0.1, 0.2, 0.3]),
            },
        );
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_graph() {
        let model = tiny_model();
        assert_eq!(model.nodes().len(), 4);
        assert_eq!(model.output_shape().unwrap(), vec![4]);
        assert!(model.validate().is_ok());
    }

    #[test]
    fn forward_produces_expected_values() {
        let model = tiny_model();
        let input = Tensor::filled(1.0, vec![1, 4, 4]).unwrap();
        let out = model.forward(&input).unwrap();
        assert_eq!(out.shape(), &[4]);
        // The class with the largest bias wins because all other terms are equal.
        assert_eq!(model.predict(&input).unwrap(), 3);
    }

    #[test]
    fn forward_all_returns_one_output_per_node() {
        let model = tiny_model();
        let input = Tensor::filled(1.0, vec![1, 4, 4]).unwrap();
        let all = model.forward_all(&input).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].shape(), &[2, 4, 4]);
        assert_eq!(all[3].shape(), &[4]);
    }

    #[test]
    fn residual_graph_with_add() {
        let mut b = ModelBuilder::new("res", vec![2, 4, 4]);
        let trunk = b.chain("conv", conv_layer(2, 2, 3, 0.0));
        b.add("add", Layer::Add, vec![trunk, trunk]);
        let model = b.build().unwrap();
        let input = Tensor::filled(1.0, vec![2, 4, 4]).unwrap();
        let out = model.forward(&input).unwrap();
        assert_eq!(out.shape(), &[2, 4, 4]);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn validation_rejects_forward_references() {
        let model = Model {
            name: "bad".to_string(),
            input_shape: vec![1, 4, 4],
            nodes: vec![Node {
                id: 0,
                name: "add".to_string(),
                layer: Layer::Add,
                inputs: vec![0, 1],
            }],
        };
        assert!(matches!(model.validate(), Err(NnError::UnknownNode { .. })));
    }

    #[test]
    fn empty_model_is_rejected() {
        let b = ModelBuilder::new("empty", vec![1, 2, 2]);
        assert!(matches!(b.build(), Err(NnError::EmptyGraph)));
    }

    #[test]
    fn summary_counts_pim_layers() {
        let model = tiny_model();
        let summary = model.summary().unwrap();
        assert_eq!(summary.layers().len(), 4);
        assert_eq!(summary.pim_layer_count(), 2);
        assert!(summary.total_macs() > 0);
        assert!(summary.total_params() > 0);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn inactive_pruning_is_a_plain_clone() {
        let model = tiny_model();
        let pruned = model.pruned(PruningSpec::none());
        assert_eq!(pruned, model);
        assert_eq!(pruned.weight_zero_fraction(), 0.0);
    }

    #[test]
    fn unstructured_pruning_zeroes_the_requested_weight_fraction() {
        // Distinct magnitudes so the pruned set is deterministic.
        let mut b = ModelBuilder::new("tiny", vec![1, 4, 4]);
        let cfg = Conv2dCfg::new(1, 2, 3).with_padding(1);
        let weight =
            Tensor::from_vec((0..18).map(|i| (i as f32 + 1.0) * 0.1).collect(), cfg.weight_dims())
                .unwrap();
        b.chain("conv", Layer::Conv2d { cfg, weight, bias: None });
        let model = b.build().unwrap();

        let pruned = model.pruned(PruningSpec::unstructured(0.5));
        let zero = pruned.weight_zero_fraction();
        assert!((zero - 0.5).abs() < 1e-9, "zero fraction {zero}");
        // The survivors are the largest-magnitude half, untouched.
        if let Layer::Conv2d { weight, .. } = &pruned.nodes()[0].layer {
            for (i, &v) in weight.data().iter().enumerate() {
                if i < 9 {
                    assert_eq!(v, 0.0, "weight {i} should be pruned");
                } else {
                    assert_eq!(v, (i as f32 + 1.0) * 0.1, "weight {i} should survive");
                }
            }
        } else {
            panic!("expected a conv layer");
        }
    }

    #[test]
    fn structured_pruning_zeroes_whole_output_channels() {
        let mut b = ModelBuilder::new("tiny", vec![2, 2, 2]);
        b.chain("flatten", Layer::Flatten);
        // Row 0 has the smallest L1 norm and must vanish entirely.
        b.chain(
            "fc",
            Layer::Linear {
                cfg: LinearCfg::new(8, 4),
                weight: Tensor::from_vec(
                    (0..32).map(|i| (i / 8) as f32 + 0.5).collect(),
                    vec![4, 8],
                )
                .unwrap(),
                bias: None,
            },
        );
        let model = b.build().unwrap();

        let pruned = model.pruned(PruningSpec::structured(0.25));
        if let Layer::Linear { weight, .. } = &pruned.nodes()[1].layer {
            assert!(weight.data()[..8].iter().all(|&v| v == 0.0));
            assert!(weight.data()[8..].iter().all(|&v| v != 0.0));
        } else {
            panic!("expected a linear layer");
        }
        // Pruning never touches biases or non-PIM layers, and the float
        // executor still runs on the pruned graph.
        let input = Tensor::filled(1.0, vec![2, 2, 2]).unwrap();
        pruned.forward(&input).unwrap();
    }
}
