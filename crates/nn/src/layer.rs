//! Layer configurations and the float-precision layer type.

use dbpim_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// Configuration of a 2-D convolution (square kernel, symmetric padding).
///
/// Grouped convolutions cover both ordinary (`groups == 1`) and depthwise
/// (`groups == in_channels`) layers, which is all the CIFAR-100 model zoo
/// needs.
///
/// # Examples
///
/// ```
/// use dbpim_nn::Conv2dCfg;
///
/// let cfg = Conv2dCfg::new(3, 64, 3).with_stride(1).with_padding(1);
/// assert_eq!(cfg.output_hw(32, 32), (32, 32));
/// assert_eq!(cfg.weight_dims(), vec![64, 3, 3, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dCfg {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
    /// Number of groups (`1` = dense, `in_channels` = depthwise).
    pub groups: usize,
}

impl Conv2dCfg {
    /// Creates a unit-stride, zero-padding, ungrouped convolution config.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Self { in_channels, out_channels, kernel, stride: 1, padding: 0, groups: 1 }
    }

    /// Sets the stride.
    #[must_use]
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding.
    #[must_use]
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the group count.
    #[must_use]
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Shorthand for a depthwise convolution over `channels`.
    #[must_use]
    pub fn depthwise(channels: usize, kernel: usize) -> Self {
        Self::new(channels, channels, kernel).with_groups(channels)
    }

    /// Output spatial size for an input of `h x w`.
    #[must_use]
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Dimension sizes of the weight tensor: `[out, in/groups, k, k]`.
    #[must_use]
    pub fn weight_dims(&self) -> Vec<usize> {
        vec![self.out_channels, self.in_channels / self.groups, self.kernel, self.kernel]
    }

    /// Number of weight parameters.
    #[must_use]
    pub fn params(&self) -> u64 {
        self.weight_dims().iter().product::<usize>() as u64
    }

    /// Multiply-accumulate count for an output of `oh x ow`.
    #[must_use]
    pub fn macs(&self, oh: usize, ow: usize) -> u64 {
        self.params() * (oh * ow) as u64
    }

    /// Length of one filter when flattened for PIM mapping
    /// (`in/groups * k * k`).
    #[must_use]
    pub fn filter_len(&self) -> usize {
        (self.in_channels / self.groups) * self.kernel * self.kernel
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadParameters`] when a field is zero or the channel
    /// counts are not divisible by the group count.
    pub fn validate(&self, layer: &str) -> Result<(), NnError> {
        let bad = |reason: &str| NnError::BadParameters {
            layer: layer.to_string(),
            reason: reason.to_string(),
        };
        if self.in_channels == 0 || self.out_channels == 0 || self.kernel == 0 || self.stride == 0 {
            return Err(bad("channel counts, kernel and stride must be non-zero"));
        }
        if self.groups == 0
            || !self.in_channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(bad("channel counts must be divisible by the group count"));
        }
        Ok(())
    }
}

/// Configuration of a fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinearCfg {
    /// Number of input features.
    pub in_features: usize,
    /// Number of output features.
    pub out_features: usize,
}

impl LinearCfg {
    /// Creates a fully-connected layer config.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize) -> Self {
        Self { in_features, out_features }
    }

    /// Number of weight parameters.
    #[must_use]
    pub fn params(&self) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    /// Multiply-accumulate count for one forward pass.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.params()
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Configuration of a 2-D pooling layer (square window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2dCfg {
    /// Pooling flavour.
    pub kind: PoolKind,
    /// Square window size.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
}

impl Pool2dCfg {
    /// Creates a max-pooling config with `stride == kernel`.
    #[must_use]
    pub fn max(kernel: usize) -> Self {
        Self { kind: PoolKind::Max, kernel, stride: kernel }
    }

    /// Creates an average-pooling config with `stride == kernel`.
    #[must_use]
    pub fn avg(kernel: usize) -> Self {
        Self { kind: PoolKind::Avg, kernel, stride: kernel }
    }

    /// Output spatial size for an input of `h x w`.
    #[must_use]
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h.saturating_sub(self.kernel) / self.stride + 1,
            w.saturating_sub(self.kernel) / self.stride + 1,
        )
    }
}

/// Element-wise activation functions used by the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)` (MobileNetV2).
    Relu6,
    /// `x * sigmoid(x)` (EfficientNet).
    Silu,
    /// `1 / (1 + e^-x)` (squeeze-and-excite gate).
    Sigmoid,
    /// `x * relu6(x + 3) / 6`.
    HardSwish,
}

impl Activation {
    /// Applies the activation to a single value.
    #[must_use]
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Silu => x / (1.0 + (-x).exp()),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::HardSwish => x * (x + 3.0).clamp(0.0, 6.0) / 6.0,
        }
    }

    /// Returns `true` when the activation's output range is non-negative,
    /// which the IPU's unsigned bit-serial input encoding relies on.
    #[must_use]
    pub fn is_non_negative(&self) -> bool {
        matches!(self, Activation::Relu | Activation::Relu6 | Activation::Sigmoid)
    }
}

/// Per-channel batch-normalization parameters (inference form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNormParams {
    /// Learned scale, one per channel.
    pub gamma: Vec<f32>,
    /// Learned shift, one per channel.
    pub beta: Vec<f32>,
    /// Running mean, one per channel.
    pub mean: Vec<f32>,
    /// Running variance, one per channel.
    pub var: Vec<f32>,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl BatchNormParams {
    /// Identity batch norm (`gamma = 1`, everything else zero) over `channels`.
    #[must_use]
    pub fn identity(channels: usize) -> Self {
        Self {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            mean: vec![0.0; channels],
            var: vec![1.0; channels],
            eps: 1e-5,
        }
    }

    /// Number of channels normalized.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Effective per-channel scale `gamma / sqrt(var + eps)`.
    #[must_use]
    pub fn effective_scale(&self, channel: usize) -> f32 {
        self.gamma[channel] / (self.var[channel] + self.eps).sqrt()
    }

    /// Effective per-channel shift `beta - mean * effective_scale`.
    #[must_use]
    pub fn effective_shift(&self, channel: usize) -> f32 {
        self.beta[channel] - self.mean[channel] * self.effective_scale(channel)
    }
}

/// One layer of a float-precision model graph.
///
/// Convolutions and fully-connected layers carry their `f32` parameters; they
/// are the layers that end up mapped onto the PIM macros after quantization
/// and FTA approximation. Everything else is executed by the SIMD core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution with optional bias.
    Conv2d {
        /// Geometry configuration.
        cfg: Conv2dCfg,
        /// Weight tensor of shape `[out, in/groups, k, k]`.
        weight: Tensor<f32>,
        /// Optional per-output-channel bias.
        bias: Option<Vec<f32>>,
    },
    /// Fully-connected layer with optional bias.
    Linear {
        /// Geometry configuration.
        cfg: LinearCfg,
        /// Weight tensor of shape `[out, in]`.
        weight: Tensor<f32>,
        /// Optional per-output-feature bias.
        bias: Option<Vec<f32>>,
    },
    /// Per-channel batch normalization (inference form).
    BatchNorm(BatchNormParams),
    /// Element-wise activation.
    Activation(Activation),
    /// Spatial pooling.
    Pool2d(Pool2dCfg),
    /// Global average pooling (`[C, H, W]` to `[C, 1, 1]`).
    GlobalAvgPool,
    /// Flattens `[C, H, W]` (or any shape) into a vector.
    Flatten,
    /// Element-wise addition of two same-shaped inputs (residual connection).
    Add,
    /// Channel-wise multiplication of a `[C, H, W]` feature map by a
    /// `[C, 1, 1]` (or `[C]`) gate (squeeze-and-excite).
    ChannelScale,
}

impl Layer {
    /// Short kind name used in summaries and reports.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv2d { .. } => "conv2d",
            Layer::Linear { .. } => "linear",
            Layer::BatchNorm(_) => "batchnorm",
            Layer::Activation(_) => "activation",
            Layer::Pool2d(_) => "pool2d",
            Layer::GlobalAvgPool => "global_avg_pool",
            Layer::Flatten => "flatten",
            Layer::Add => "add",
            Layer::ChannelScale => "channel_scale",
        }
    }

    /// Returns `true` for layers whose MACs run on the PIM macros
    /// (convolutions and fully-connected layers).
    #[must_use]
    pub fn is_pim_layer(&self) -> bool {
        matches!(self, Layer::Conv2d { .. } | Layer::Linear { .. })
    }

    /// Number of expected input nodes (`1` except for `Add`/`ChannelScale`).
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            Layer::Add | Layer::ChannelScale => 2,
            _ => 1,
        }
    }

    /// Number of learned parameters.
    #[must_use]
    pub fn params(&self) -> u64 {
        match self {
            Layer::Conv2d { cfg, bias, .. } => {
                cfg.params() + bias.as_ref().map_or(0, |b| b.len() as u64)
            }
            Layer::Linear { cfg, bias, .. } => {
                cfg.params() + bias.as_ref().map_or(0, |b| b.len() as u64)
            }
            Layer::BatchNorm(bn) => 2 * bn.channels() as u64,
            _ => 0,
        }
    }

    /// Multiply-accumulate count for the given input shapes.
    ///
    /// Non-PIM layers report zero: their element-wise work is attributed to
    /// the SIMD core by the simulator rather than counted as MACs.
    #[must_use]
    pub fn macs(&self, input_shapes: &[Vec<usize>]) -> u64 {
        match self {
            Layer::Conv2d { cfg, .. } => {
                let (h, w) = spatial(input_shapes.first());
                let (oh, ow) = cfg.output_hw(h, w);
                cfg.macs(oh, ow)
            }
            Layer::Linear { cfg, .. } => cfg.macs(),
            _ => 0,
        }
    }

    /// Output shape given the input shapes (one per input node).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] when the inputs do not match the
    /// layer's expectations, and [`NnError::BadParameters`] for an invalid
    /// configuration.
    pub fn output_shape(
        &self,
        name: &str,
        input_shapes: &[Vec<usize>],
    ) -> Result<Vec<usize>, NnError> {
        let shape_err = |expected: Vec<usize>, actual: &[usize]| NnError::InputShape {
            layer: name.to_string(),
            expected,
            actual: actual.to_vec(),
        };
        let single =
            || -> Result<&Vec<usize>, NnError> { input_shapes.first().ok_or(NnError::EmptyGraph) };
        match self {
            Layer::Conv2d { cfg, .. } => {
                cfg.validate(name)?;
                let input = single()?;
                if input.len() != 3 || input[0] != cfg.in_channels {
                    return Err(shape_err(vec![cfg.in_channels, 0, 0], input));
                }
                let (oh, ow) = cfg.output_hw(input[1], input[2]);
                if oh == 0 || ow == 0 {
                    return Err(shape_err(vec![cfg.in_channels, cfg.kernel, cfg.kernel], input));
                }
                Ok(vec![cfg.out_channels, oh, ow])
            }
            Layer::Linear { cfg, .. } => {
                let input = single()?;
                let features: usize = input.iter().product();
                if features != cfg.in_features {
                    return Err(shape_err(vec![cfg.in_features], input));
                }
                Ok(vec![cfg.out_features])
            }
            Layer::BatchNorm(bn) => {
                let input = single()?;
                if input.is_empty() || input[0] != bn.channels() {
                    return Err(shape_err(vec![bn.channels(), 0, 0], input));
                }
                Ok(input.clone())
            }
            Layer::Activation(_) | Layer::Flatten => {
                let input = single()?;
                if let Layer::Flatten = self {
                    Ok(vec![input.iter().product()])
                } else {
                    Ok(input.clone())
                }
            }
            Layer::Pool2d(cfg) => {
                let input = single()?;
                if input.len() != 3 {
                    return Err(shape_err(vec![0, 0, 0], input));
                }
                let (oh, ow) = cfg.output_hw(input[1], input[2]);
                if oh == 0 || ow == 0 {
                    return Err(shape_err(vec![input[0], cfg.kernel, cfg.kernel], input));
                }
                Ok(vec![input[0], oh, ow])
            }
            Layer::GlobalAvgPool => {
                let input = single()?;
                if input.len() != 3 {
                    return Err(shape_err(vec![0, 0, 0], input));
                }
                Ok(vec![input[0], 1, 1])
            }
            Layer::Add => {
                if input_shapes.len() != 2 || input_shapes[0] != input_shapes[1] {
                    return Err(NnError::InputShape {
                        layer: name.to_string(),
                        expected: input_shapes.first().cloned().unwrap_or_default(),
                        actual: input_shapes.last().cloned().unwrap_or_default(),
                    });
                }
                Ok(input_shapes[0].clone())
            }
            Layer::ChannelScale => {
                if input_shapes.len() != 2 {
                    return Err(NnError::InputShape {
                        layer: name.to_string(),
                        expected: vec![0, 0, 0],
                        actual: vec![input_shapes.len()],
                    });
                }
                let feat = &input_shapes[0];
                let gate = &input_shapes[1];
                let gate_channels = gate.first().copied().unwrap_or(0);
                if feat.len() != 3 || gate_channels != feat[0] {
                    return Err(shape_err(feat.clone(), gate));
                }
                Ok(feat.clone())
            }
        }
    }
}

fn spatial(shape: Option<&Vec<usize>>) -> (usize, usize) {
    match shape {
        Some(s) if s.len() == 3 => (s[1], s[2]),
        _ => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_geometry() {
        let cfg = Conv2dCfg::new(3, 64, 3).with_padding(1);
        assert_eq!(cfg.output_hw(32, 32), (32, 32));
        let strided = Conv2dCfg::new(3, 64, 3).with_stride(2).with_padding(1);
        assert_eq!(strided.output_hw(32, 32), (16, 16));
        assert_eq!(cfg.filter_len(), 27);
        assert_eq!(cfg.macs(32, 32), 64 * 27 * 1024);
    }

    #[test]
    fn depthwise_config_is_grouped() {
        let cfg = Conv2dCfg::depthwise(32, 3).with_padding(1);
        assert_eq!(cfg.groups, 32);
        assert_eq!(cfg.weight_dims(), vec![32, 1, 3, 3]);
        assert_eq!(cfg.filter_len(), 9);
        assert!(cfg.validate("dw").is_ok());
    }

    #[test]
    fn conv_validation_rejects_bad_groups() {
        let cfg = Conv2dCfg::new(6, 9, 3).with_groups(4);
        assert!(cfg.validate("bad").is_err());
        let zero = Conv2dCfg::new(0, 9, 3);
        assert!(zero.validate("zero").is_err());
    }

    #[test]
    fn activation_shapes_and_ranges() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu6.apply(8.0), 6.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(Activation::Silu.apply(-1.0) < 0.0);
        assert!(Activation::Relu.is_non_negative());
        assert!(!Activation::Silu.is_non_negative());
    }

    #[test]
    fn layer_output_shapes() {
        let conv = Layer::Conv2d {
            cfg: Conv2dCfg::new(3, 8, 3).with_padding(1),
            weight: Tensor::zeros(vec![8, 3, 3, 3]).unwrap(),
            bias: None,
        };
        assert_eq!(conv.output_shape("c", &[vec![3, 32, 32]]).unwrap(), vec![8, 32, 32]);
        assert!(conv.output_shape("c", &[vec![4, 32, 32]]).is_err());

        let pool = Layer::Pool2d(Pool2dCfg::max(2));
        assert_eq!(pool.output_shape("p", &[vec![8, 32, 32]]).unwrap(), vec![8, 16, 16]);

        let flat = Layer::Flatten;
        assert_eq!(flat.output_shape("f", &[vec![8, 4, 4]]).unwrap(), vec![128]);

        let add = Layer::Add;
        assert_eq!(add.output_shape("a", &[vec![8, 4, 4], vec![8, 4, 4]]).unwrap(), vec![8, 4, 4]);
        assert!(add.output_shape("a", &[vec![8, 4, 4], vec![8, 2, 2]]).is_err());

        let scale = Layer::ChannelScale;
        assert_eq!(
            scale.output_shape("s", &[vec![8, 4, 4], vec![8, 1, 1]]).unwrap(),
            vec![8, 4, 4]
        );
    }

    #[test]
    fn params_and_macs_counting() {
        let cfg = Conv2dCfg::new(16, 32, 3).with_padding(1);
        let conv = Layer::Conv2d {
            cfg,
            weight: Tensor::zeros(cfg.weight_dims()).unwrap(),
            bias: Some(vec![0.0; 32]),
        };
        assert_eq!(conv.params(), 32 * 16 * 9 + 32);
        assert_eq!(conv.macs(&[vec![16, 8, 8]]), 32 * 16 * 9 * 64);

        let linear = Layer::Linear {
            cfg: LinearCfg::new(128, 10),
            weight: Tensor::zeros(vec![10, 128]).unwrap(),
            bias: None,
        };
        assert_eq!(linear.params(), 1280);
        assert_eq!(linear.macs(&[vec![128]]), 1280);
        assert!(linear.is_pim_layer());
        assert!(!Layer::Flatten.is_pim_layer());
    }

    #[test]
    fn batchnorm_effective_parameters() {
        let bn = BatchNormParams {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![0.5],
            var: vec![4.0],
            eps: 0.0,
        };
        assert!((bn.effective_scale(0) - 1.0).abs() < 1e-6);
        assert!((bn.effective_shift(0) - 0.5).abs() < 1e-6);
        let id = BatchNormParams::identity(3);
        assert_eq!(id.channels(), 3);
        assert!((id.effective_scale(1) - 1.0).abs() < 1e-3);
    }
}
