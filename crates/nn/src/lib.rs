//! Neural-network substrate for the DB-PIM reproduction.
//!
//! The paper's experiments run five CIFAR-100 CNNs (AlexNet, VGG-19,
//! ResNet-18, MobileNetV2, EfficientNet-B0) through an 8b/8b quantization
//! flow, the FTA approximation and finally the DB-PIM architecture simulator.
//! This crate provides everything up to (and including) INT8 inference:
//!
//! * [`Layer`] / [`Model`] / [`ModelBuilder`] — a small DAG-of-layers graph
//!   representation with a float executor ([`ops`] holds the reference
//!   implementations).
//! * [`QuantizedModel`] — post-training INT8 quantization (per-channel
//!   symmetric weights, per-tensor affine activations) with true integer
//!   accumulation for the convolution / fully-connected layers that the PIM
//!   macros execute.
//! * [`zoo`] — the five paper topologies adapted to 32×32 inputs, built with
//!   distribution-matched synthetic weights.
//!
//! # Example
//!
//! ```
//! use dbpim_nn::{zoo, QuantizedModel};
//! use dbpim_tensor::random::TensorGenerator;
//!
//! let model = zoo::tiny_cnn(10, 7)?;
//! let mut gen = TensorGenerator::new(1);
//! let (images, _labels) = gen.labelled_batch(2, 3, 32, 32, 10)?;
//! let quantized = QuantizedModel::quantize(&model, &images)?;
//! let class = quantized.predict(&images[0])?;
//! assert!(class < 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod layer;
pub mod ops;
mod quantized;
pub mod summary;
pub mod zoo;

pub use error::NnError;
pub use graph::{argmax, Model, ModelBuilder, Node, NodeId};
pub use layer::{Activation, BatchNormParams, Conv2dCfg, Layer, LinearCfg, Pool2dCfg, PoolKind};
pub use quantized::{fold_batch_norm, QuantizedLayer, QuantizedModel, QuantizedNode};
pub use summary::{LayerSummary, ModelSummary};
pub use zoo::{ModelKind, CIFAR100_CLASSES, CIFAR_INPUT};

pub use dbpim_tensor::{PruningMode, PruningSpec};
