//! Float-precision reference implementations of the layer operations.
//!
//! All operations work on a single image in `[C, H, W]` layout; batching is
//! handled by the callers. These implementations favour clarity over speed:
//! they serve as the numerical reference for the quantized executor and for
//! the bit-accurate PIM macro model.

use dbpim_tensor::Tensor;

use crate::error::NnError;
use crate::layer::{Activation, BatchNormParams, Conv2dCfg, LinearCfg, Pool2dCfg, PoolKind};

/// 2-D convolution of a `[C, H, W]` input with a `[O, C/g, k, k]` weight.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] when the input is not rank 3 or its channel
/// count does not match the configuration.
pub fn conv2d(
    input: &Tensor<f32>,
    weight: &Tensor<f32>,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
) -> Result<Tensor<f32>, NnError> {
    let shape = input.shape();
    if shape.len() != 3 || shape[0] != cfg.in_channels {
        return Err(NnError::InputShape {
            layer: "conv2d".to_string(),
            expected: vec![cfg.in_channels, 0, 0],
            actual: shape.to_vec(),
        });
    }
    let (h, w) = (shape[1], shape[2]);
    let (oh, ow) = cfg.output_hw(h, w);
    let in_per_group = cfg.in_channels / cfg.groups;
    let out_per_group = cfg.out_channels / cfg.groups;
    let in_data = input.data();
    let w_data = weight.data();
    let mut out = vec![0.0f32; cfg.out_channels * oh * ow];

    for oc in 0..cfg.out_channels {
        let group = oc / out_per_group;
        let ic_base = group * in_per_group;
        let b = bias.map_or(0.0, |b| b[oc]);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                for ic in 0..in_per_group {
                    for ky in 0..cfg.kernel {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..cfg.kernel {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let x = in_data[((ic_base + ic) * h + iy as usize) * w + ix as usize];
                            let wv = w_data
                                [((oc * in_per_group + ic) * cfg.kernel + ky) * cfg.kernel + kx];
                            acc += x * wv;
                        }
                    }
                }
                out[(oc * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Ok(Tensor::from_vec(out, vec![cfg.out_channels, oh, ow])?)
}

/// Fully-connected layer: `y = W x + b` with `W` of shape `[out, in]`.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] when the flattened input length does not
/// match `cfg.in_features`.
pub fn linear(
    input: &Tensor<f32>,
    weight: &Tensor<f32>,
    bias: Option<&[f32]>,
    cfg: &LinearCfg,
) -> Result<Tensor<f32>, NnError> {
    if input.numel() != cfg.in_features {
        return Err(NnError::InputShape {
            layer: "linear".to_string(),
            expected: vec![cfg.in_features],
            actual: input.shape().to_vec(),
        });
    }
    let x = input.data();
    let w = weight.data();
    let mut out = vec![0.0f32; cfg.out_features];
    for (o, out_v) in out.iter_mut().enumerate() {
        let row = &w[o * cfg.in_features..(o + 1) * cfg.in_features];
        let mut acc = bias.map_or(0.0, |b| b[o]);
        for (xv, wv) in x.iter().zip(row.iter()) {
            acc += xv * wv;
        }
        *out_v = acc;
    }
    Ok(Tensor::from_vec(out, vec![cfg.out_features])?)
}

/// Per-channel batch normalization of a `[C, ...]` tensor.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] when the channel count does not match.
pub fn batch_norm(input: &Tensor<f32>, bn: &BatchNormParams) -> Result<Tensor<f32>, NnError> {
    let shape = input.shape();
    if shape.is_empty() || shape[0] != bn.channels() {
        return Err(NnError::InputShape {
            layer: "batchnorm".to_string(),
            expected: vec![bn.channels()],
            actual: shape.to_vec(),
        });
    }
    let per_channel: usize = shape.iter().skip(1).product::<usize>().max(1);
    let mut out = input.data().to_vec();
    for (c, chunk) in out.chunks_mut(per_channel).enumerate() {
        let scale = bn.effective_scale(c);
        let shift = bn.effective_shift(c);
        for v in chunk.iter_mut() {
            *v = *v * scale + shift;
        }
    }
    Ok(Tensor::from_vec(out, shape.to_vec())?)
}

/// Element-wise activation.
#[must_use]
pub fn activation(input: &Tensor<f32>, act: Activation) -> Tensor<f32> {
    input.map(|&v| act.apply(v))
}

/// Spatial pooling of a `[C, H, W]` tensor.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] for a non-rank-3 input.
pub fn pool2d(input: &Tensor<f32>, cfg: &Pool2dCfg) -> Result<Tensor<f32>, NnError> {
    let shape = input.shape();
    if shape.len() != 3 {
        return Err(NnError::InputShape {
            layer: "pool2d".to_string(),
            expected: vec![0, 0, 0],
            actual: shape.to_vec(),
        });
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let (oh, ow) = cfg.output_hw(h, w);
    let data = input.data();
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = match cfg.kind {
                    PoolKind::Max => f32::NEG_INFINITY,
                    PoolKind::Avg => 0.0,
                };
                let mut count = 0usize;
                for ky in 0..cfg.kernel {
                    let iy = oy * cfg.stride + ky;
                    if iy >= h {
                        continue;
                    }
                    for kx in 0..cfg.kernel {
                        let ix = ox * cfg.stride + kx;
                        if ix >= w {
                            continue;
                        }
                        let v = data[(ch * h + iy) * w + ix];
                        match cfg.kind {
                            PoolKind::Max => acc = acc.max(v),
                            PoolKind::Avg => acc += v,
                        }
                        count += 1;
                    }
                }
                out[(ch * oh + oy) * ow + ox] = match cfg.kind {
                    PoolKind::Max => acc,
                    PoolKind::Avg => acc / count.max(1) as f32,
                };
            }
        }
    }
    Ok(Tensor::from_vec(out, vec![c, oh, ow])?)
}

/// Global average pooling: `[C, H, W]` to `[C, 1, 1]`.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] for a non-rank-3 input.
pub fn global_avg_pool(input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
    let shape = input.shape();
    if shape.len() != 3 {
        return Err(NnError::InputShape {
            layer: "global_avg_pool".to_string(),
            expected: vec![0, 0, 0],
            actual: shape.to_vec(),
        });
    }
    let (c, h, w) = (shape[0], shape[1], shape[2]);
    let data = input.data();
    let mut out = vec![0.0f32; c];
    for (ch, o) in out.iter_mut().enumerate() {
        let sum: f32 = data[ch * h * w..(ch + 1) * h * w].iter().sum();
        *o = sum / (h * w) as f32;
    }
    Ok(Tensor::from_vec(out, vec![c, 1, 1])?)
}

/// Flattens any tensor into a rank-1 vector.
#[must_use]
pub fn flatten(input: &Tensor<f32>) -> Tensor<f32> {
    let numel = input.numel();
    input.clone().reshaped(vec![numel]).expect("reshaping to the element count always succeeds")
}

/// Element-wise addition of two same-shaped tensors.
///
/// # Errors
///
/// Returns [`NnError::Tensor`] when the shapes differ.
pub fn add(a: &Tensor<f32>, b: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
    Ok(a.zip_map(b, |x, y| x + y)?)
}

/// Channel-wise scaling of a `[C, H, W]` feature map by a `[C]`-like gate.
///
/// # Errors
///
/// Returns [`NnError::InputShape`] when the gate length does not equal the
/// feature map's channel count.
pub fn channel_scale(features: &Tensor<f32>, gate: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
    let shape = features.shape();
    if shape.len() != 3 || gate.numel() != shape[0] {
        return Err(NnError::InputShape {
            layer: "channel_scale".to_string(),
            expected: vec![shape.first().copied().unwrap_or(0)],
            actual: gate.shape().to_vec(),
        });
    }
    let per_channel = shape[1] * shape[2];
    let mut out = features.data().to_vec();
    for (c, chunk) in out.chunks_mut(per_channel).enumerate() {
        let g = gate.data()[c];
        for v in chunk.iter_mut() {
            *v *= g;
        }
    }
    Ok(Tensor::from_vec(out, shape.to_vec())?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(data: Vec<f32>, dims: Vec<usize>) -> Tensor<f32> {
        Tensor::from_vec(data, dims).unwrap()
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1.0 is the identity.
        let input = tensor((0..9).map(|v| v as f32).collect(), vec![1, 3, 3]);
        let cfg = Conv2dCfg::new(1, 1, 1);
        let weight = tensor(vec![1.0], vec![1, 1, 1, 1]);
        let out = conv2d(&input, &weight, None, &cfg).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_sums_receptive_field() {
        // 3x3 all-ones kernel over an all-ones 3x3 input with padding 1:
        // centre sees 9 ones, corners see 4.
        let input = tensor(vec![1.0; 9], vec![1, 3, 3]);
        let cfg = Conv2dCfg::new(1, 1, 3).with_padding(1);
        let weight = tensor(vec![1.0; 9], vec![1, 1, 3, 3]);
        let out = conv2d(&input, &weight, None, &cfg).unwrap();
        assert_eq!(out.get(&[0, 1, 1]).unwrap(), 9.0);
        assert_eq!(out.get(&[0, 0, 0]).unwrap(), 4.0);
        assert_eq!(out.get(&[0, 0, 1]).unwrap(), 6.0);
    }

    #[test]
    fn conv2d_bias_and_stride() {
        let input = tensor(vec![1.0; 16], vec![1, 4, 4]);
        let cfg = Conv2dCfg::new(1, 2, 2).with_stride(2);
        let weight = tensor(vec![1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5], vec![2, 1, 2, 2]);
        let out = conv2d(&input, &weight, Some(&[10.0, 0.0]), &cfg).unwrap();
        assert_eq!(out.shape(), &[2, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0]).unwrap(), 14.0);
        assert_eq!(out.get(&[1, 1, 1]).unwrap(), 2.0);
    }

    #[test]
    fn depthwise_conv_keeps_channels_independent() {
        let input = tensor(vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], vec![2, 2, 2]);
        let cfg = Conv2dCfg::depthwise(2, 2);
        let weight = tensor(vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], vec![2, 1, 2, 2]);
        let out = conv2d(&input, &weight, None, &cfg).unwrap();
        assert_eq!(out.shape(), &[2, 1, 1]);
        assert_eq!(out.get(&[0, 0, 0]).unwrap(), 4.0);
        assert_eq!(out.get(&[1, 0, 0]).unwrap(), 8.0);
    }

    #[test]
    fn conv2d_rejects_wrong_channels() {
        let input = tensor(vec![1.0; 9], vec![1, 3, 3]);
        let cfg = Conv2dCfg::new(2, 1, 3);
        let weight = tensor(vec![0.0; 18], vec![1, 2, 3, 3]);
        assert!(conv2d(&input, &weight, None, &cfg).is_err());
    }

    #[test]
    fn linear_matches_manual_dot_product() {
        let input = tensor(vec![1.0, 2.0, 3.0], vec![3]);
        let cfg = LinearCfg::new(3, 2);
        let weight = tensor(vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5], vec![2, 3]);
        let out = linear(&input, &weight, Some(&[0.0, 1.0]), &cfg).unwrap();
        assert_eq!(out.data(), &[-2.0, 4.0]);
        assert!(linear(&tensor(vec![1.0], vec![1]), &weight, None, &cfg).is_err());
    }

    #[test]
    fn batch_norm_normalizes_per_channel() {
        let input = tensor(vec![1.0, 1.0, 10.0, 10.0], vec![2, 1, 2]);
        let bn = BatchNormParams {
            gamma: vec![1.0, 2.0],
            beta: vec![0.0, 1.0],
            mean: vec![1.0, 10.0],
            var: vec![1.0, 4.0],
            eps: 0.0,
        };
        let out = batch_norm(&input, &bn).unwrap();
        assert_eq!(out.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn pooling_max_and_avg() {
        let input = tensor(vec![1.0, 2.0, 3.0, 4.0], vec![1, 2, 2]);
        let max = pool2d(&input, &Pool2dCfg::max(2)).unwrap();
        assert_eq!(max.data(), &[4.0]);
        let avg = pool2d(&input, &Pool2dCfg::avg(2)).unwrap();
        assert_eq!(avg.data(), &[2.5]);
    }

    #[test]
    fn global_avg_pool_reduces_spatial_dims() {
        let input = tensor(vec![1.0, 3.0, 2.0, 2.0], vec![2, 1, 2]);
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape(), &[2, 1, 1]);
        assert_eq!(out.data(), &[2.0, 2.0]);
    }

    #[test]
    fn add_and_channel_scale() {
        let a = tensor(vec![1.0, 2.0], vec![2]);
        let b = tensor(vec![3.0, 4.0], vec![2]);
        assert_eq!(add(&a, &b).unwrap().data(), &[4.0, 6.0]);

        let features = tensor(vec![1.0, 1.0, 2.0, 2.0], vec![2, 1, 2]);
        let gate = tensor(vec![0.5, 2.0], vec![2, 1, 1]);
        let scaled = channel_scale(&features, &gate).unwrap();
        assert_eq!(scaled.data(), &[0.5, 0.5, 4.0, 4.0]);
        assert!(channel_scale(&features, &tensor(vec![1.0], vec![1])).is_err());
    }

    #[test]
    fn flatten_preserves_data() {
        let input = tensor(vec![1.0, 2.0, 3.0, 4.0], vec![1, 2, 2]);
        let flat = flatten(&input);
        assert_eq!(flat.shape(), &[4]);
        assert_eq!(flat.data(), input.data());
    }
}
