//! INT8 post-training quantization and the quantized executor.
//!
//! The paper evaluates every model at 8b/8b precision: weights are quantized
//! symmetrically per output channel, activations affinely per tensor. The
//! convolution and fully-connected layers — the only layers mapped onto the
//! PIM macros — are executed with true integer arithmetic
//! (`acc += (q_x - zp_x) * q_w`), exactly the accumulation the DB-PIM macro
//! performs bit-serially. All other layers belong to the SIMD core and are
//! executed at float precision between dequantize/requantize steps.

use dbpim_tensor::quant::{QuantParams, QuantizedTensor};
use dbpim_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::graph::{argmax, Model, NodeId};
use crate::layer::{Activation, Conv2dCfg, Layer, LinearCfg, Pool2dCfg};
use crate::ops;

/// One layer of a quantized model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantizedLayer {
    /// INT8 convolution (weights per-output-channel symmetric).
    Conv2d {
        /// Geometry configuration.
        cfg: Conv2dCfg,
        /// Quantized weights of shape `[out, in/groups, k, k]`.
        weight: QuantizedTensor,
        /// Float bias (applied after the integer accumulation, as the
        /// post-processing units do).
        bias: Option<Vec<f32>>,
    },
    /// INT8 fully-connected layer.
    Linear {
        /// Geometry configuration.
        cfg: LinearCfg,
        /// Quantized weights of shape `[out, in]`.
        weight: QuantizedTensor,
        /// Float bias.
        bias: Option<Vec<f32>>,
    },
    /// Element-wise activation (SIMD core).
    Activation(Activation),
    /// Spatial pooling (SIMD core).
    Pool2d(Pool2dCfg),
    /// Global average pooling (SIMD core).
    GlobalAvgPool,
    /// Flatten (free).
    Flatten,
    /// Residual addition (SIMD core).
    Add,
    /// Squeeze-and-excite channel scaling (SIMD core).
    ChannelScale,
    /// Identity copy — the remnant of a folded batch-norm layer.
    Identity,
}

impl QuantizedLayer {
    /// Short kind name used in reports.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            QuantizedLayer::Conv2d { .. } => "conv2d",
            QuantizedLayer::Linear { .. } => "linear",
            QuantizedLayer::Activation(_) => "activation",
            QuantizedLayer::Pool2d(_) => "pool2d",
            QuantizedLayer::GlobalAvgPool => "global_avg_pool",
            QuantizedLayer::Flatten => "flatten",
            QuantizedLayer::Add => "add",
            QuantizedLayer::ChannelScale => "channel_scale",
            QuantizedLayer::Identity => "identity",
        }
    }

    /// Returns `true` when the layer's MACs run on the PIM macros.
    #[must_use]
    pub fn is_pim_layer(&self) -> bool {
        matches!(self, QuantizedLayer::Conv2d { .. } | QuantizedLayer::Linear { .. })
    }

    /// The quantized weight tensor for PIM layers.
    #[must_use]
    pub fn weight(&self) -> Option<&QuantizedTensor> {
        match self {
            QuantizedLayer::Conv2d { weight, .. } | QuantizedLayer::Linear { weight, .. } => {
                Some(weight)
            }
            _ => None,
        }
    }
}

/// One node of a quantized model graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedNode {
    /// Node id (position in the node list).
    pub id: NodeId,
    /// Node name, carried over from the float model.
    pub name: String,
    /// Producer node ids; empty means "the model input".
    pub inputs: Vec<NodeId>,
    /// The quantized layer.
    pub layer: QuantizedLayer,
    /// Quantization parameters of this node's INT8 output.
    pub output_qp: QuantParams,
}

/// A fully INT8-quantized model.
///
/// Built from a float [`Model`] with [`QuantizedModel::quantize`]; the FTA
/// algorithm then rewrites the PIM-layer weights in place via
/// [`QuantizedModel::replace_weight_values`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedModel {
    name: String,
    input_shape: Vec<usize>,
    input_qp: QuantParams,
    nodes: Vec<QuantizedNode>,
}

impl QuantizedModel {
    /// Quantizes a float model using `calibration` images to determine the
    /// activation ranges of every node.
    ///
    /// Batch-norm layers are folded into the preceding convolution before
    /// quantization (the standard inference-time transformation), leaving an
    /// identity node in their place so node ids stay aligned with the float
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns an error when the model fails validation, a calibration
    /// forward pass fails, or no calibration images are supplied.
    pub fn quantize(model: &Model, calibration: &[Tensor<f32>]) -> Result<Self, NnError> {
        let _span =
            dbpim_trace::span!("nn.quantize", model = model.name(), images = calibration.len());
        if calibration.is_empty() {
            return Err(NnError::BadParameters {
                layer: model.name().to_string(),
                reason: "at least one calibration image is required".to_string(),
            });
        }
        let folded = fold_batch_norm(model)?;
        folded.validate()?;

        // Calibration: per-node and input min/max over all calibration images.
        let node_count = folded.nodes().len();
        let mut node_min = vec![f32::INFINITY; node_count];
        let mut node_max = vec![f32::NEG_INFINITY; node_count];
        let mut in_min = f32::INFINITY;
        let mut in_max = f32::NEG_INFINITY;
        for image in calibration {
            let (lo, hi) = image.min_max();
            in_min = in_min.min(lo);
            in_max = in_max.max(hi);
            let outputs = folded.forward_all(image)?;
            for (i, out) in outputs.iter().enumerate() {
                let (lo, hi) = out.min_max();
                node_min[i] = node_min[i].min(lo);
                node_max[i] = node_max[i].max(hi);
            }
        }

        let input_qp = QuantParams::affine_from_range(in_min, in_max);
        let mut nodes = Vec::with_capacity(node_count);
        for (i, node) in folded.nodes().iter().enumerate() {
            let output_qp = QuantParams::affine_from_range(node_min[i], node_max[i]);
            let layer = match &node.layer {
                Layer::Conv2d { cfg, weight, bias } => QuantizedLayer::Conv2d {
                    cfg: *cfg,
                    weight: QuantizedTensor::quantize_per_channel(weight, 0),
                    bias: bias.clone(),
                },
                Layer::Linear { cfg, weight, bias } => QuantizedLayer::Linear {
                    cfg: *cfg,
                    weight: QuantizedTensor::quantize_per_channel(weight, 0),
                    bias: bias.clone(),
                },
                Layer::BatchNorm(_) => QuantizedLayer::Identity,
                Layer::Activation(act) => QuantizedLayer::Activation(*act),
                Layer::Pool2d(cfg) => QuantizedLayer::Pool2d(*cfg),
                Layer::GlobalAvgPool => QuantizedLayer::GlobalAvgPool,
                Layer::Flatten => QuantizedLayer::Flatten,
                Layer::Add => QuantizedLayer::Add,
                Layer::ChannelScale => QuantizedLayer::ChannelScale,
            };
            nodes.push(QuantizedNode {
                id: node.id,
                name: node.name.clone(),
                inputs: node.inputs.clone(),
                layer,
                output_qp,
            });
        }
        Ok(Self {
            name: folded.name().to_string(),
            input_shape: folded.input_shape().to_vec(),
            input_qp,
            nodes,
        })
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the model input.
    #[must_use]
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Quantization parameters of the model input.
    #[must_use]
    pub fn input_qp(&self) -> QuantParams {
        self.input_qp
    }

    /// The quantized nodes in graph order.
    #[must_use]
    pub fn nodes(&self) -> &[QuantizedNode] {
        &self.nodes
    }

    /// Node ids whose layers run on the PIM macros (convolutions and
    /// fully-connected layers), in execution order.
    #[must_use]
    pub fn pim_node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.layer.is_pim_layer()).map(|n| n.id).collect()
    }

    /// Replaces the INT8 weight values of a PIM node, keeping the scheme.
    ///
    /// This is how the FTA algorithm injects approximated weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownNode`] for an invalid id,
    /// [`NnError::BadParameters`] when the node is not a PIM layer or the
    /// shapes differ.
    pub fn replace_weight_values(&mut self, id: NodeId, values: Tensor<i8>) -> Result<(), NnError> {
        let node = self.nodes.get_mut(id).ok_or(NnError::UnknownNode { id })?;
        let weight = match &mut node.layer {
            QuantizedLayer::Conv2d { weight, .. } | QuantizedLayer::Linear { weight, .. } => weight,
            _ => {
                return Err(NnError::BadParameters {
                    layer: node.name.clone(),
                    reason: "node is not a convolution or linear layer".to_string(),
                })
            }
        };
        if weight.values().shape() != values.shape() {
            return Err(NnError::BadParameters {
                layer: node.name.clone(),
                reason: format!(
                    "replacement weight shape {:?} does not match {:?}",
                    values.shape(),
                    weight.values().shape()
                ),
            });
        }
        *weight.values_mut() = values;
        Ok(())
    }

    /// Runs the quantized model on one `[C, H, W]` float image, returning the
    /// INT8 output of every node.
    ///
    /// # Errors
    ///
    /// Returns a shape or execution error from the first failing layer.
    pub fn forward_all(&self, image: &Tensor<f32>) -> Result<Vec<Tensor<i8>>, NnError> {
        let q_input = self.input_qp.quantize_tensor(image);
        let mut outputs: Vec<Tensor<i8>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = self.execute_node(node, &q_input, &outputs)?;
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Runs the quantized model and returns the dequantized output logits.
    ///
    /// # Errors
    ///
    /// Returns a shape or execution error from the first failing layer.
    pub fn forward(&self, image: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let outputs = self.forward_all(image)?;
        let last = outputs.last().ok_or(NnError::EmptyGraph)?;
        let qp = self.nodes.last().ok_or(NnError::EmptyGraph)?.output_qp;
        Ok(qp.dequantize_tensor(last))
    }

    /// Top-1 class index for one image.
    ///
    /// # Errors
    ///
    /// Returns a shape or execution error from the first failing layer.
    pub fn predict(&self, image: &Tensor<f32>) -> Result<usize, NnError> {
        let logits = self.forward(image)?;
        Ok(argmax(logits.data()))
    }

    fn execute_node(
        &self,
        node: &QuantizedNode,
        q_input: &Tensor<i8>,
        outputs: &[Tensor<i8>],
    ) -> Result<Tensor<i8>, NnError> {
        let input_of = |slot: usize| -> (&Tensor<i8>, QuantParams) {
            if node.inputs.is_empty() {
                (q_input, self.input_qp)
            } else {
                let id = node.inputs[slot];
                (&outputs[id], self.nodes[id].output_qp)
            }
        };
        let (x, x_qp) = input_of(0);
        match &node.layer {
            QuantizedLayer::Conv2d { cfg, weight, bias } => {
                let acc = conv2d_i8(x, x_qp, weight, cfg, &node.name)?;
                Ok(requantize_acc(
                    &acc,
                    x_qp,
                    weight,
                    bias.as_deref(),
                    node.output_qp,
                    cfg.out_channels,
                ))
            }
            QuantizedLayer::Linear { cfg, weight, bias } => {
                let acc = linear_i8(x, x_qp, weight, cfg, &node.name)?;
                Ok(requantize_acc(
                    &acc,
                    x_qp,
                    weight,
                    bias.as_deref(),
                    node.output_qp,
                    cfg.out_features,
                ))
            }
            QuantizedLayer::Activation(act) => {
                let f = x_qp.dequantize_tensor(x);
                Ok(node.output_qp.quantize_tensor(&ops::activation(&f, *act)))
            }
            QuantizedLayer::Pool2d(cfg) => {
                let f = x_qp.dequantize_tensor(x);
                Ok(node.output_qp.quantize_tensor(&ops::pool2d(&f, cfg)?))
            }
            QuantizedLayer::GlobalAvgPool => {
                let f = x_qp.dequantize_tensor(x);
                Ok(node.output_qp.quantize_tensor(&ops::global_avg_pool(&f)?))
            }
            QuantizedLayer::Flatten => {
                let f = x_qp.dequantize_tensor(x);
                Ok(node.output_qp.quantize_tensor(&ops::flatten(&f)))
            }
            QuantizedLayer::Identity => {
                let f = x_qp.dequantize_tensor(x);
                Ok(node.output_qp.quantize_tensor(&f))
            }
            QuantizedLayer::Add => {
                let (b, b_qp) = input_of(1);
                let fa = x_qp.dequantize_tensor(x);
                let fb = b_qp.dequantize_tensor(b);
                Ok(node.output_qp.quantize_tensor(&ops::add(&fa, &fb)?))
            }
            QuantizedLayer::ChannelScale => {
                let (b, b_qp) = input_of(1);
                let fa = x_qp.dequantize_tensor(x);
                let fb = b_qp.dequantize_tensor(b);
                Ok(node.output_qp.quantize_tensor(&ops::channel_scale(&fa, &fb)?))
            }
        }
    }
}

/// Folds every batch-norm layer whose producer is a convolution into that
/// convolution's weights and bias, replacing the batch norm with an identity.
///
/// # Errors
///
/// Returns graph-validation errors from the input model.
pub fn fold_batch_norm(model: &Model) -> Result<Model, NnError> {
    model.validate()?;
    let mut folded = model.clone();
    let node_count = folded.nodes().len();
    for i in 0..node_count {
        let (is_bn, producer) = {
            let node = &folded.nodes()[i];
            match &node.layer {
                Layer::BatchNorm(_) if node.inputs.len() == 1 => (true, node.inputs[0]),
                _ => (false, 0),
            }
        };
        if !is_bn {
            continue;
        }
        let producer_is_conv = matches!(folded.nodes()[producer].layer, Layer::Conv2d { .. });
        if !producer_is_conv {
            continue;
        }
        // Extract BN parameters, then rewrite the producer conv in place.
        let bn = match &folded.nodes()[i].layer {
            Layer::BatchNorm(bn) => bn.clone(),
            _ => unreachable!("checked above"),
        };
        if let Layer::Conv2d { cfg, weight, bias } = &mut folded.nodes_mut()[producer].layer {
            let out_channels = cfg.out_channels;
            if bn.channels() != out_channels {
                return Err(NnError::BadParameters {
                    layer: format!("batchnorm after node {producer}"),
                    reason: "channel count does not match the producing convolution".to_string(),
                });
            }
            let per_filter = weight.numel() / out_channels;
            let data = weight.data_mut();
            let mut new_bias = bias.clone().unwrap_or_else(|| vec![0.0; out_channels]);
            for oc in 0..out_channels {
                let scale = bn.effective_scale(oc);
                let shift = bn.effective_shift(oc);
                for v in &mut data[oc * per_filter..(oc + 1) * per_filter] {
                    *v *= scale;
                }
                new_bias[oc] = new_bias[oc] * scale + shift;
            }
            *bias = Some(new_bias);
        }
        // Neutralize the BN node.
        folded.nodes_mut()[i].layer = Layer::BatchNorm(crate::layer::BatchNormParams::identity(
            match &folded.nodes()[producer].layer {
                Layer::Conv2d { cfg, .. } => cfg.out_channels,
                _ => unreachable!("producer checked to be a convolution"),
            },
        ));
    }
    Ok(folded)
}

/// Integer convolution accumulation: `acc[o, y, x] = Σ (q_x - zp_x) * q_w`.
fn conv2d_i8(
    input: &Tensor<i8>,
    input_qp: QuantParams,
    weight: &QuantizedTensor,
    cfg: &Conv2dCfg,
    name: &str,
) -> Result<Tensor<i32>, NnError> {
    let shape = input.shape();
    if shape.len() != 3 || shape[0] != cfg.in_channels {
        return Err(NnError::InputShape {
            layer: name.to_string(),
            expected: vec![cfg.in_channels, 0, 0],
            actual: shape.to_vec(),
        });
    }
    let (h, w) = (shape[1], shape[2]);
    let (oh, ow) = cfg.output_hw(h, w);
    let in_per_group = cfg.in_channels / cfg.groups;
    let out_per_group = cfg.out_channels / cfg.groups;
    let zp = input_qp.zero_point();
    let x = input.data();
    let wv = weight.values().data();
    let mut out = vec![0i32; cfg.out_channels * oh * ow];
    // Im2col structure: one zero-centered `(q_x - zp)` patch per output
    // position (padding taps stored as 0, which contributes exactly the
    // terms the bounds checks used to skip), built once and reused across
    // every out-channel of the group. The scratch allocation is hoisted out
    // of the whole position loop.
    let patch_len = in_per_group * cfg.kernel * cfg.kernel;
    let mut patch = vec![0i32; patch_len];
    for group in 0..cfg.groups {
        let ic_base = group * in_per_group;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut idx = 0usize;
                for ic in 0..in_per_group {
                    for ky in 0..cfg.kernel {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                        for kx in 0..cfg.kernel {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                            patch[idx] = if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize
                            {
                                0
                            } else {
                                i32::from(x[((ic_base + ic) * h + iy as usize) * w + ix as usize])
                                    - zp
                            };
                            idx += 1;
                        }
                    }
                }
                for oc in group * out_per_group..(group + 1) * out_per_group {
                    // The filter's weights share the patch's (ic, ky, kx)
                    // layout, so the dot product is one linear scan.
                    let row = &wv[oc * patch_len..(oc + 1) * patch_len];
                    let mut acc = 0i32;
                    for (&p, &q_w) in patch.iter().zip(row) {
                        acc += p * i32::from(q_w);
                    }
                    out[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, vec![cfg.out_channels, oh, ow])?)
}

/// Integer fully-connected accumulation.
fn linear_i8(
    input: &Tensor<i8>,
    input_qp: QuantParams,
    weight: &QuantizedTensor,
    cfg: &LinearCfg,
    name: &str,
) -> Result<Tensor<i32>, NnError> {
    if input.numel() != cfg.in_features {
        return Err(NnError::InputShape {
            layer: name.to_string(),
            expected: vec![cfg.in_features],
            actual: input.shape().to_vec(),
        });
    }
    let zp = input_qp.zero_point();
    let x = input.data();
    let wv = weight.values().data();
    let mut out = vec![0i32; cfg.out_features];
    for (o, out_v) in out.iter_mut().enumerate() {
        let row = &wv[o * cfg.in_features..(o + 1) * cfg.in_features];
        let mut acc = 0i32;
        for (&q_x, &q_w) in x.iter().zip(row.iter()) {
            acc += (i32::from(q_x) - zp) * i32::from(q_w);
        }
        *out_v = acc;
    }
    Ok(Tensor::from_vec(out, vec![cfg.out_features])?)
}

/// Requantizes an integer accumulator tensor to the output's INT8 domain.
///
/// The accumulator is first mapped back to real values with
/// `acc * s_input * s_weight(channel)` (the per-channel weight scale), the
/// float bias is added and the result is quantized with the output params.
fn requantize_acc(
    acc: &Tensor<i32>,
    input_qp: QuantParams,
    weight: &QuantizedTensor,
    bias: Option<&[f32]>,
    output_qp: QuantParams,
    out_channels: usize,
) -> Tensor<i8> {
    let _span = dbpim_trace::kernel_span("nn.requantize");
    let per_channel = acc.numel() / out_channels;
    if per_channel == 0 {
        return Tensor::from_vec(Vec::new(), acc.shape().to_vec())
            .expect("accumulator shape is valid");
    }
    let input_scale = input_qp.scale();
    let mut out = Vec::with_capacity(acc.numel());
    // Channel-major walk so the per-channel scheme lookup is hoisted out of
    // the element loop; the float expression per element is unchanged.
    for (channel, chunk) in acc.data().chunks(per_channel).enumerate() {
        let w_scale = weight.scheme().params_for_channel(channel).scale();
        let channel_bias = bias.map_or(0.0, |b| b[channel]);
        for &a in chunk {
            let real = a as f32 * input_scale * w_scale + channel_bias;
            out.push(output_qp.quantize(real));
        }
    }
    Tensor::from_vec(out, acc.shape().to_vec()).expect("accumulator shape is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ModelBuilder;
    use crate::layer::{BatchNormParams, Layer};
    use dbpim_tensor::random::TensorGenerator;

    fn small_model(seed: u64) -> Model {
        let mut gen = TensorGenerator::new(seed);
        let mut b = ModelBuilder::new("small", vec![3, 8, 8]);
        let conv_cfg = Conv2dCfg::new(3, 8, 3).with_padding(1);
        b.chain(
            "conv1",
            Layer::Conv2d {
                cfg: conv_cfg,
                weight: gen.weight_tensor(conv_cfg.weight_dims()).unwrap(),
                bias: None,
            },
        );
        b.chain("bn1", Layer::BatchNorm(BatchNormParams::identity(8)));
        b.chain("relu1", Layer::Activation(Activation::Relu));
        b.chain("pool1", Layer::Pool2d(Pool2dCfg::max(2)));
        b.chain("flatten", Layer::Flatten);
        b.chain(
            "fc",
            Layer::Linear {
                cfg: LinearCfg::new(8 * 4 * 4, 10),
                weight: gen.weight_tensor(vec![10, 8 * 4 * 4]).unwrap(),
                bias: Some(vec![0.01; 10]),
            },
        );
        b.build().unwrap()
    }

    fn calibration(seed: u64, n: usize) -> Vec<Tensor<f32>> {
        let mut gen = TensorGenerator::new(seed);
        (0..n)
            .map(|_| {
                gen.tensor(vec![3, 8, 8], dbpim_tensor::random::Distribution::Gaussian { std: 1.0 })
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn quantized_model_tracks_float_model() {
        let model = small_model(1);
        let cal = calibration(2, 4);
        let q = QuantizedModel::quantize(&model, &cal).unwrap();
        assert_eq!(q.nodes().len(), model.nodes().len());
        assert_eq!(q.pim_node_ids().len(), 2);

        // The quantized prediction should agree with the float prediction on
        // most calibration-like inputs.
        let mut agree = 0usize;
        let test = calibration(3, 8);
        for image in &test {
            let f = model.predict(image).unwrap();
            let qi = q.predict(image).unwrap();
            if f == qi {
                agree += 1;
            }
        }
        assert!(agree >= 6, "quantized model agrees on only {agree}/8 images");
    }

    #[test]
    fn quantization_requires_calibration_images() {
        let model = small_model(4);
        assert!(QuantizedModel::quantize(&model, &[]).is_err());
    }

    #[test]
    fn logits_are_close_to_float_logits() {
        let model = small_model(5);
        let cal = calibration(6, 4);
        let q = QuantizedModel::quantize(&model, &cal).unwrap();
        let image = &calibration(7, 1)[0];
        let f = model.forward(image).unwrap();
        let ql = q.forward(image).unwrap();
        let sqnr = f.sqnr_db(&ql).unwrap();
        assert!(sqnr > 10.0, "INT8 logits too far from float logits (sqnr {sqnr} dB)");
    }

    #[test]
    fn fold_batch_norm_preserves_function() {
        let mut gen = TensorGenerator::new(8);
        let mut b = ModelBuilder::new("bn", vec![2, 4, 4]);
        let cfg = Conv2dCfg::new(2, 4, 3).with_padding(1);
        b.chain(
            "conv",
            Layer::Conv2d {
                cfg,
                weight: gen.weight_tensor(cfg.weight_dims()).unwrap(),
                bias: Some(vec![0.1; 4]),
            },
        );
        b.chain(
            "bn",
            Layer::BatchNorm(BatchNormParams {
                gamma: vec![1.5, 0.5, 2.0, 1.0],
                beta: vec![0.1, -0.1, 0.0, 0.2],
                mean: vec![0.2, 0.0, -0.1, 0.3],
                var: vec![1.0, 0.25, 4.0, 0.5],
                eps: 1e-5,
            }),
        );
        let model = b.build().unwrap();
        let folded = fold_batch_norm(&model).unwrap();
        let image = gen
            .tensor(vec![2, 4, 4], dbpim_tensor::random::Distribution::Gaussian { std: 1.0 })
            .unwrap();
        let before = model.forward(&image).unwrap();
        let after = folded.forward(&image).unwrap();
        assert!(before.mse(&after).unwrap() < 1e-8);
    }

    #[test]
    fn replace_weight_values_validates_shape_and_kind() {
        let model = small_model(9);
        let cal = calibration(10, 2);
        let mut q = QuantizedModel::quantize(&model, &cal).unwrap();
        let pim = q.pim_node_ids();
        let conv_id = pim[0];
        let shape = q.nodes()[conv_id].layer.weight().unwrap().values().shape().to_vec();
        let zeros = Tensor::<i8>::zeros(shape).unwrap();
        q.replace_weight_values(conv_id, zeros).unwrap();

        let wrong = Tensor::<i8>::zeros(vec![1, 1]).unwrap();
        assert!(q.replace_weight_values(conv_id, wrong).is_err());
        // Replacing a non-PIM node's weights is rejected.
        let flatten_id = q.nodes().iter().find(|n| n.name == "flatten").unwrap().id;
        let any = Tensor::<i8>::zeros(vec![1]).unwrap();
        assert!(q.replace_weight_values(flatten_id, any).is_err());
        assert!(q.replace_weight_values(999, Tensor::<i8>::zeros(vec![1]).unwrap()).is_err());
    }

    #[test]
    fn zeroed_weights_change_predictions_structurally() {
        // Sanity check that replace_weight_values actually affects execution.
        let model = small_model(11);
        let cal = calibration(12, 2);
        let mut q = QuantizedModel::quantize(&model, &cal).unwrap();
        let image = &cal[0];
        let before = q.forward(image).unwrap();
        for id in q.pim_node_ids() {
            let shape = q.nodes()[id].layer.weight().unwrap().values().shape().to_vec();
            q.replace_weight_values(id, Tensor::<i8>::zeros(shape).unwrap()).unwrap();
        }
        let after = q.forward(image).unwrap();
        assert!(before.mse(&after).unwrap() > 0.0);
    }
}
