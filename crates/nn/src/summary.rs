//! Per-layer and whole-model parameter / MAC accounting.

use serde::{Deserialize, Serialize};

/// Summary of one graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Id of the node in the model graph.
    pub node_id: usize,
    /// Node name.
    pub name: String,
    /// Layer kind (e.g. `"conv2d"`).
    pub kind: String,
    /// Output shape of the node.
    pub output_shape: Vec<usize>,
    /// Learned parameter count.
    pub params: u64,
    /// Multiply-accumulate count for one forward pass.
    pub macs: u64,
    /// `true` when the layer's MACs are mapped onto the PIM macros.
    pub is_pim: bool,
}

/// Whole-model summary: one [`LayerSummary`] per node plus totals.
///
/// # Examples
///
/// ```
/// use dbpim_nn::summary::{LayerSummary, ModelSummary};
///
/// let s = ModelSummary::new("demo".to_string(), vec![LayerSummary {
///     node_id: 0,
///     name: "conv".to_string(),
///     kind: "conv2d".to_string(),
///     output_shape: vec![8, 32, 32],
///     params: 216,
///     macs: 221_184,
///     is_pim: true,
/// }]);
/// assert_eq!(s.total_macs(), 221_184);
/// assert_eq!(s.pim_layer_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSummary {
    name: String,
    layers: Vec<LayerSummary>,
}

impl ModelSummary {
    /// Creates a summary from per-layer entries.
    #[must_use]
    pub fn new(name: String, layers: Vec<LayerSummary>) -> Self {
        Self { name, layers }
    }

    /// The summarized model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-layer entries in graph order.
    #[must_use]
    pub fn layers(&self) -> &[LayerSummary] {
        &self.layers
    }

    /// Total learned parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total MACs for one forward pass.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total MACs executed on the PIM macros.
    #[must_use]
    pub fn pim_macs(&self) -> u64 {
        self.layers.iter().filter(|l| l.is_pim).map(|l| l.macs).sum()
    }

    /// Number of layers mapped onto the PIM macros.
    #[must_use]
    pub fn pim_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_pim).count()
    }

    /// A fixed-width text table of the summary, one row per layer.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:<16} {:<16} {:>12} {:>14}\n",
            "layer", "kind", "output", "params", "macs"
        ));
        for layer in &self.layers {
            let shape =
                layer.output_shape.iter().map(ToString::to_string).collect::<Vec<_>>().join("x");
            out.push_str(&format!(
                "{:<28} {:<16} {:<16} {:>12} {:>14}\n",
                layer.name, layer.kind, shape, layer.params, layer.macs
            ));
        }
        out.push_str(&format!(
            "total: {} params, {} macs ({} on PIM across {} layers)\n",
            self.total_params(),
            self.total_macs(),
            self.pim_macs(),
            self.pim_layer_count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, params: u64, macs: u64, is_pim: bool) -> LayerSummary {
        LayerSummary {
            node_id: 0,
            name: name.to_string(),
            kind: "conv2d".to_string(),
            output_shape: vec![1, 2, 2],
            params,
            macs,
            is_pim,
        }
    }

    #[test]
    fn totals_accumulate() {
        let s = ModelSummary::new(
            "m".to_string(),
            vec![layer("a", 10, 100, true), layer("b", 5, 50, false), layer("c", 1, 200, true)],
        );
        assert_eq!(s.total_params(), 16);
        assert_eq!(s.total_macs(), 350);
        assert_eq!(s.pim_macs(), 300);
        assert_eq!(s.pim_layer_count(), 2);
    }

    #[test]
    fn table_contains_every_layer() {
        let s = ModelSummary::new("m".to_string(), vec![layer("conv_a", 10, 100, true)]);
        let table = s.to_table();
        assert!(table.contains("conv_a"));
        assert!(table.contains("total"));
    }
}
