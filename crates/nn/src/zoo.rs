//! The CIFAR-100 model zoo used by the paper's evaluation.
//!
//! Five topologies are provided, matching Table 2 / Fig. 7 of the paper:
//! AlexNet, VGG-19, ResNet-18, MobileNetV2 and EfficientNet-B0, all adapted
//! to 32×32 inputs as is standard for CIFAR experiments. Weights are
//! synthetic (see `dbpim_tensor::random`): the reproduction substitutes
//! pre-trained checkpoints with distribution-matched tensors, which preserves
//! the bit-level statistics every hardware result depends on.
//!
//! A `width_mult` below `1.0` scales every channel count, which the test
//! suite uses to exercise the full topologies at a fraction of the cost.

use dbpim_tensor::random::TensorGenerator;
use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::graph::{Model, ModelBuilder, NodeId};
use crate::layer::{Activation, BatchNormParams, Conv2dCfg, Layer, LinearCfg, Pool2dCfg};

/// Number of classes in the CIFAR-100 dataset.
pub const CIFAR100_CLASSES: usize = 100;
/// Input shape of a CIFAR image: `[channels, height, width]`.
pub const CIFAR_INPUT: [usize; 3] = [3, 32, 32];

/// The five network topologies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// AlexNet adapted to CIFAR (five convolutions, three FC layers).
    AlexNet,
    /// VGG-19 with batch norm, CIFAR head.
    Vgg19,
    /// ResNet-18 (CIFAR stem, four stages of basic blocks).
    ResNet18,
    /// MobileNetV2 (inverted residual blocks, ReLU6).
    MobileNetV2,
    /// EfficientNet-B0 (MBConv blocks with squeeze-and-excite, SiLU).
    EfficientNetB0,
}

impl ModelKind {
    /// All five paper models in the order the figures report them.
    #[must_use]
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::AlexNet,
            ModelKind::Vgg19,
            ModelKind::ResNet18,
            ModelKind::MobileNetV2,
            ModelKind::EfficientNetB0,
        ]
    }

    /// Display name used in reports and figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::AlexNet => "AlexNet",
            ModelKind::Vgg19 => "VGG19",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::MobileNetV2 => "MobileNetV2",
            ModelKind::EfficientNetB0 => "EfficientNetB0",
        }
    }

    /// Returns `true` for the compact models (MobileNetV2, EfficientNet-B0),
    /// which the paper singles out as having little redundancy.
    #[must_use]
    pub fn is_compact(&self) -> bool {
        matches!(self, ModelKind::MobileNetV2 | ModelKind::EfficientNetB0)
    }

    /// Builds the full-width model with synthetic weights.
    ///
    /// # Errors
    ///
    /// Returns a graph or shape error if construction fails (it should not
    /// for the built-in topologies).
    pub fn build(&self, classes: usize, seed: u64) -> Result<Model, NnError> {
        self.build_with_width(classes, seed, 1.0)
    }

    /// Builds the model with every channel count scaled by `width_mult`
    /// (rounded up to a minimum of 8 channels).
    ///
    /// # Errors
    ///
    /// Returns a graph or shape error if construction fails.
    pub fn build_with_width(
        &self,
        classes: usize,
        seed: u64,
        width_mult: f32,
    ) -> Result<Model, NnError> {
        let mut ctx = BuildCtx::new(seed, width_mult);
        match self {
            ModelKind::AlexNet => alexnet(&mut ctx, classes),
            ModelKind::Vgg19 => vgg19(&mut ctx, classes),
            ModelKind::ResNet18 => resnet18(&mut ctx, classes),
            ModelKind::MobileNetV2 => mobilenet_v2(&mut ctx, classes),
            ModelKind::EfficientNetB0 => efficientnet_b0(&mut ctx, classes),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = NnError;

    /// Parses a zoo model name, case-insensitively and ignoring `-`/`_`
    /// separators: `"AlexNet"`, `"vgg19"`, `"resnet-18"`,
    /// `"mobilenet_v2"` and `"EfficientNet-B0"` all resolve.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let folded: String = s
            .trim()
            .chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .flat_map(char::to_lowercase)
            .collect();
        match folded.as_str() {
            "alexnet" => Ok(ModelKind::AlexNet),
            "vgg19" => Ok(ModelKind::Vgg19),
            "resnet18" => Ok(ModelKind::ResNet18),
            "mobilenetv2" => Ok(ModelKind::MobileNetV2),
            "efficientnetb0" => Ok(ModelKind::EfficientNetB0),
            _ => Err(NnError::UnknownModel { name: s.to_string() }),
        }
    }
}

/// A small three-convolution CNN used by tests and the quickstart example.
///
/// # Errors
///
/// Returns a graph or shape error if construction fails.
pub fn tiny_cnn(classes: usize, seed: u64) -> Result<Model, NnError> {
    let mut ctx = BuildCtx::new(seed, 1.0);
    let mut b = ModelBuilder::new("tiny_cnn", vec![3, 32, 32]);
    ctx.conv_bn_act(&mut b, "conv1", Conv2dCfg::new(3, 16, 3).with_padding(1), Activation::Relu)?;
    b.chain("pool1", Layer::Pool2d(Pool2dCfg::max(2)));
    ctx.conv_bn_act(&mut b, "conv2", Conv2dCfg::new(16, 32, 3).with_padding(1), Activation::Relu)?;
    b.chain("pool2", Layer::Pool2d(Pool2dCfg::max(2)));
    ctx.conv_bn_act(&mut b, "conv3", Conv2dCfg::new(32, 32, 3).with_padding(1), Activation::Relu)?;
    b.chain("gap", Layer::GlobalAvgPool);
    b.chain("flatten", Layer::Flatten);
    ctx.linear(&mut b, "fc", 32, classes, true)?;
    b.build()
}

/// Shared construction context: a deterministic weight generator plus the
/// width multiplier.
struct BuildCtx {
    gen: TensorGenerator,
    width_mult: f32,
}

impl BuildCtx {
    fn new(seed: u64, width_mult: f32) -> Self {
        Self { gen: TensorGenerator::new(seed), width_mult }
    }

    /// Scales a channel count by the width multiplier (minimum 8).
    fn ch(&self, channels: usize) -> usize {
        if (self.width_mult - 1.0).abs() < f32::EPSILON {
            return channels;
        }
        (((channels as f32) * self.width_mult).round() as usize).max(8)
    }

    fn synthetic_bn(&mut self, channels: usize) -> Result<BatchNormParams, NnError> {
        use dbpim_tensor::random::Distribution;
        let gamma = self.gen.tensor(vec![channels], Distribution::Gaussian { std: 0.1 })?;
        let beta = self.gen.tensor(vec![channels], Distribution::Gaussian { std: 0.05 })?;
        let var = self.gen.tensor(vec![channels], Distribution::Gaussian { std: 0.1 })?;
        Ok(BatchNormParams {
            gamma: gamma.data().iter().map(|g| 1.0 + g).collect(),
            beta: beta.data().to_vec(),
            mean: vec![0.0; channels],
            var: var.data().iter().map(|v| (1.0 + v).max(0.25)).collect(),
            eps: 1e-5,
        })
    }

    fn conv(
        &mut self,
        b: &mut ModelBuilder,
        name: &str,
        cfg: Conv2dCfg,
        bias: bool,
    ) -> Result<NodeId, NnError> {
        let weight = self.gen.weight_tensor(cfg.weight_dims())?;
        let bias = if bias { Some(vec![0.0; cfg.out_channels]) } else { None };
        Ok(b.chain(name, Layer::Conv2d { cfg, weight, bias }))
    }

    fn conv_bn_act(
        &mut self,
        b: &mut ModelBuilder,
        name: &str,
        cfg: Conv2dCfg,
        act: Activation,
    ) -> Result<NodeId, NnError> {
        self.conv(b, name, cfg, false)?;
        let bn = self.synthetic_bn(cfg.out_channels)?;
        b.chain(format!("{name}.bn"), Layer::BatchNorm(bn));
        Ok(b.chain(format!("{name}.act"), Layer::Activation(act)))
    }

    fn conv_bn(
        &mut self,
        b: &mut ModelBuilder,
        name: &str,
        cfg: Conv2dCfg,
    ) -> Result<NodeId, NnError> {
        self.conv(b, name, cfg, false)?;
        let bn = self.synthetic_bn(cfg.out_channels)?;
        Ok(b.chain(format!("{name}.bn"), Layer::BatchNorm(bn)))
    }

    fn linear(
        &mut self,
        b: &mut ModelBuilder,
        name: &str,
        in_features: usize,
        out_features: usize,
        bias: bool,
    ) -> Result<NodeId, NnError> {
        let cfg = LinearCfg::new(in_features, out_features);
        let weight = self.gen.weight_tensor(vec![out_features, in_features])?;
        let bias = if bias { Some(vec![0.0; out_features]) } else { None };
        Ok(b.chain(name, Layer::Linear { cfg, weight, bias }))
    }
}

fn alexnet(ctx: &mut BuildCtx, classes: usize) -> Result<Model, NnError> {
    let mut b = ModelBuilder::new("alexnet", CIFAR_INPUT.to_vec());
    let c = |n: usize| ctx.ch(n);
    let (c64, c192, c384, c256) = (c(64), c(192), c(384), c(256));
    ctx.conv_bn_act(
        &mut b,
        "conv1",
        Conv2dCfg::new(3, c64, 3).with_stride(2).with_padding(1),
        Activation::Relu,
    )?;
    b.chain("pool1", Layer::Pool2d(Pool2dCfg::max(2)));
    ctx.conv_bn_act(
        &mut b,
        "conv2",
        Conv2dCfg::new(c64, c192, 3).with_padding(1),
        Activation::Relu,
    )?;
    b.chain("pool2", Layer::Pool2d(Pool2dCfg::max(2)));
    ctx.conv_bn_act(
        &mut b,
        "conv3",
        Conv2dCfg::new(c192, c384, 3).with_padding(1),
        Activation::Relu,
    )?;
    ctx.conv_bn_act(
        &mut b,
        "conv4",
        Conv2dCfg::new(c384, c256, 3).with_padding(1),
        Activation::Relu,
    )?;
    ctx.conv_bn_act(
        &mut b,
        "conv5",
        Conv2dCfg::new(c256, c256, 3).with_padding(1),
        Activation::Relu,
    )?;
    b.chain("pool3", Layer::Pool2d(Pool2dCfg::max(2)));
    b.chain("flatten", Layer::Flatten);
    let flat = c256 * 2 * 2;
    let hidden = ctx.ch(4096);
    ctx.linear(&mut b, "fc1", flat, hidden, true)?;
    b.chain("fc1.act", Layer::Activation(Activation::Relu));
    ctx.linear(&mut b, "fc2", hidden, hidden, true)?;
    b.chain("fc2.act", Layer::Activation(Activation::Relu));
    ctx.linear(&mut b, "fc3", hidden, classes, true)?;
    b.build()
}

fn vgg19(ctx: &mut BuildCtx, classes: usize) -> Result<Model, NnError> {
    // Configuration "E": channel counts with 'M' marking 2x2 max pools.
    const CFG: [&str; 21] = [
        "64", "64", "M", "128", "128", "M", "256", "256", "256", "256", "M", "512", "512", "512",
        "512", "M", "512", "512", "512", "512", "M",
    ];
    let mut b = ModelBuilder::new("vgg19", CIFAR_INPUT.to_vec());
    let mut in_ch = 3usize;
    let mut conv_idx = 0usize;
    let mut pool_idx = 0usize;
    for entry in CFG {
        if entry == "M" {
            pool_idx += 1;
            b.chain(format!("pool{pool_idx}"), Layer::Pool2d(Pool2dCfg::max(2)));
        } else {
            conv_idx += 1;
            let out_ch = ctx.ch(entry.parse::<usize>().expect("static config"));
            ctx.conv_bn_act(
                &mut b,
                &format!("conv{conv_idx}"),
                Conv2dCfg::new(in_ch, out_ch, 3).with_padding(1),
                Activation::Relu,
            )?;
            in_ch = out_ch;
        }
    }
    b.chain("flatten", Layer::Flatten);
    let hidden = ctx.ch(512);
    ctx.linear(&mut b, "fc1", in_ch, hidden, true)?;
    b.chain("fc1.act", Layer::Activation(Activation::Relu));
    ctx.linear(&mut b, "fc2", hidden, classes, true)?;
    b.build()
}

fn resnet18(ctx: &mut BuildCtx, classes: usize) -> Result<Model, NnError> {
    let mut b = ModelBuilder::new("resnet18", CIFAR_INPUT.to_vec());
    let stem_ch = ctx.ch(64);
    ctx.conv_bn_act(
        &mut b,
        "stem",
        Conv2dCfg::new(3, stem_ch, 3).with_padding(1),
        Activation::Relu,
    )?;
    let mut in_ch = stem_ch;
    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    for (stage, &(channels, first_stride)) in stages.iter().enumerate() {
        let out_ch = ctx.ch(channels);
        for block in 0..2 {
            let stride = if block == 0 { first_stride } else { 1 };
            let prefix = format!("stage{}.block{block}", stage + 1);
            let block_input = b.last().expect("stem exists");
            // Main branch.
            ctx.conv_bn_act(
                &mut b,
                &format!("{prefix}.conv1"),
                Conv2dCfg::new(in_ch, out_ch, 3).with_stride(stride).with_padding(1),
                Activation::Relu,
            )?;
            let main = ctx.conv_bn(
                &mut b,
                &format!("{prefix}.conv2"),
                Conv2dCfg::new(out_ch, out_ch, 3).with_padding(1),
            )?;
            // Shortcut branch.
            let shortcut = if stride != 1 || in_ch != out_ch {
                b.set_last(block_input);
                ctx.conv_bn(
                    &mut b,
                    &format!("{prefix}.downsample"),
                    Conv2dCfg::new(in_ch, out_ch, 1).with_stride(stride),
                )?
            } else {
                block_input
            };
            b.add(format!("{prefix}.add"), Layer::Add, vec![main, shortcut]);
            b.chain(format!("{prefix}.act"), Layer::Activation(Activation::Relu));
            in_ch = out_ch;
        }
    }
    b.chain("gap", Layer::GlobalAvgPool);
    b.chain("flatten", Layer::Flatten);
    ctx.linear(&mut b, "fc", in_ch, classes, true)?;
    b.build()
}

fn mobilenet_v2(ctx: &mut BuildCtx, classes: usize) -> Result<Model, NnError> {
    let mut b = ModelBuilder::new("mobilenet_v2", CIFAR_INPUT.to_vec());
    let stem_ch = ctx.ch(32);
    ctx.conv_bn_act(
        &mut b,
        "stem",
        Conv2dCfg::new(3, stem_ch, 3).with_padding(1),
        Activation::Relu6,
    )?;
    let mut in_ch = stem_ch;
    // (expansion, output channels, repeats, first stride) — CIFAR strides.
    let blocks: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (bi, &(expand, channels, repeats, first_stride)) in blocks.iter().enumerate() {
        let out_ch = ctx.ch(channels);
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let prefix = format!("block{}.{r}", bi + 1);
            inverted_residual(
                ctx,
                &mut b,
                &prefix,
                in_ch,
                out_ch,
                stride,
                expand,
                3,
                0.0,
                Activation::Relu6,
            )?;
            in_ch = out_ch;
        }
    }
    let head_ch = ctx.ch(1280);
    ctx.conv_bn_act(&mut b, "head", Conv2dCfg::new(in_ch, head_ch, 1), Activation::Relu6)?;
    b.chain("gap", Layer::GlobalAvgPool);
    b.chain("flatten", Layer::Flatten);
    ctx.linear(&mut b, "fc", head_ch, classes, true)?;
    b.build()
}

fn efficientnet_b0(ctx: &mut BuildCtx, classes: usize) -> Result<Model, NnError> {
    let mut b = ModelBuilder::new("efficientnet_b0", CIFAR_INPUT.to_vec());
    let stem_ch = ctx.ch(32);
    ctx.conv_bn_act(
        &mut b,
        "stem",
        Conv2dCfg::new(3, stem_ch, 3).with_padding(1),
        Activation::Silu,
    )?;
    let mut in_ch = stem_ch;
    // (expansion, output channels, repeats, first stride, kernel).
    let blocks: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for (bi, &(expand, channels, repeats, first_stride, kernel)) in blocks.iter().enumerate() {
        let out_ch = ctx.ch(channels);
        for r in 0..repeats {
            let stride = if r == 0 { first_stride } else { 1 };
            let prefix = format!("mbconv{}.{r}", bi + 1);
            inverted_residual(
                ctx,
                &mut b,
                &prefix,
                in_ch,
                out_ch,
                stride,
                expand,
                kernel,
                0.25,
                Activation::Silu,
            )?;
            in_ch = out_ch;
        }
    }
    let head_ch = ctx.ch(1280);
    ctx.conv_bn_act(&mut b, "head", Conv2dCfg::new(in_ch, head_ch, 1), Activation::Silu)?;
    b.chain("gap", Layer::GlobalAvgPool);
    b.chain("flatten", Layer::Flatten);
    ctx.linear(&mut b, "fc", head_ch, classes, true)?;
    b.build()
}

/// Shared inverted-residual / MBConv block builder.
///
/// `se_ratio > 0` adds a squeeze-and-excite branch (EfficientNet), `0.0`
/// disables it (MobileNetV2).
#[allow(clippy::too_many_arguments)]
fn inverted_residual(
    ctx: &mut BuildCtx,
    b: &mut ModelBuilder,
    prefix: &str,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expand: usize,
    kernel: usize,
    se_ratio: f32,
    act: Activation,
) -> Result<NodeId, NnError> {
    let block_input = b.last().expect("a stem node precedes every block");
    let expanded = in_ch * expand;
    if expand != 1 {
        ctx.conv_bn_act(b, &format!("{prefix}.expand"), Conv2dCfg::new(in_ch, expanded, 1), act)?;
    }
    let dw_cfg =
        Conv2dCfg::depthwise(expanded, kernel).with_stride(stride).with_padding(kernel / 2);
    let mut trunk = ctx.conv_bn_act(b, &format!("{prefix}.dw"), dw_cfg, act)?;
    if se_ratio > 0.0 {
        let se_ch = ((in_ch as f32 * se_ratio).round() as usize).max(1);
        // Squeeze: global pooling on the trunk, two 1x1 convolutions, sigmoid gate.
        b.chain(format!("{prefix}.se.squeeze"), Layer::GlobalAvgPool);
        ctx.conv(b, &format!("{prefix}.se.reduce"), Conv2dCfg::new(expanded, se_ch, 1), true)?;
        b.chain(format!("{prefix}.se.act"), Layer::Activation(act));
        ctx.conv(b, &format!("{prefix}.se.expand"), Conv2dCfg::new(se_ch, expanded, 1), true)?;
        let gate = b.chain(format!("{prefix}.se.gate"), Layer::Activation(Activation::Sigmoid));
        trunk = b.add(format!("{prefix}.se.scale"), Layer::ChannelScale, vec![trunk, gate]);
    }
    b.set_last(trunk);
    let projected =
        ctx.conv_bn(b, &format!("{prefix}.project"), Conv2dCfg::new(expanded, out_ch, 1))?;
    if stride == 1 && in_ch == out_ch {
        Ok(b.add(format!("{prefix}.add"), Layer::Add, vec![projected, block_input]))
    } else {
        Ok(projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_parses_common_spellings_and_rejects_garbage() {
        use std::str::FromStr;
        for (raw, expected) in [
            ("alexnet", ModelKind::AlexNet),
            ("AlexNet", ModelKind::AlexNet),
            ("vgg19", ModelKind::Vgg19),
            ("VGG-19", ModelKind::Vgg19),
            ("resnet18", ModelKind::ResNet18),
            ("ResNet-18", ModelKind::ResNet18),
            ("mobilenet_v2", ModelKind::MobileNetV2),
            ("MobileNetV2", ModelKind::MobileNetV2),
            ("efficientnet-b0", ModelKind::EfficientNetB0),
            (" EfficientNetB0 ", ModelKind::EfficientNetB0),
        ] {
            assert_eq!(ModelKind::from_str(raw).unwrap(), expected, "raw `{raw}`");
        }
        // Every display name round-trips.
        for kind in ModelKind::all() {
            assert_eq!(ModelKind::from_str(kind.name()).unwrap(), kind);
        }
        for raw in ["", "vgg", "resnet50", "alex net", "lenet"] {
            let err = ModelKind::from_str(raw).unwrap_err();
            assert!(matches!(err, NnError::UnknownModel { .. }), "raw `{raw}`");
            assert!(err.to_string().contains("unknown model"), "{err}");
        }
    }

    #[test]
    fn tiny_cnn_builds_and_classifies() {
        let model = tiny_cnn(10, 0).unwrap();
        assert_eq!(model.output_shape().unwrap(), vec![10]);
        let summary = model.summary().unwrap();
        assert!(summary.pim_layer_count() >= 4);
    }

    #[test]
    fn scaled_models_build_with_expected_heads() {
        for kind in ModelKind::all() {
            let model = kind.build_with_width(CIFAR100_CLASSES, 1, 0.25).unwrap();
            assert_eq!(
                model.output_shape().unwrap(),
                vec![CIFAR100_CLASSES],
                "{} head shape",
                kind.name()
            );
            assert_eq!(model.input_shape(), CIFAR_INPUT);
            let summary = model.summary().unwrap();
            assert!(summary.total_macs() > 0, "{} has no MACs", kind.name());
            assert!(summary.pim_layer_count() > 3, "{} has too few PIM layers", kind.name());
        }
    }

    #[test]
    fn scaled_resnet_runs_forward() {
        let model = ModelKind::ResNet18.build_with_width(10, 2, 0.25).unwrap();
        let image = dbpim_tensor::Tensor::filled(0.5, CIFAR_INPUT.to_vec()).unwrap();
        let logits = model.forward(&image).unwrap();
        assert_eq!(logits.shape(), &[10]);
    }

    #[test]
    fn scaled_efficientnet_runs_forward() {
        let model = ModelKind::EfficientNetB0.build_with_width(10, 3, 0.25).unwrap();
        let image = dbpim_tensor::Tensor::filled(0.5, CIFAR_INPUT.to_vec()).unwrap();
        let logits = model.forward(&image).unwrap();
        assert_eq!(logits.shape(), &[10]);
    }

    #[test]
    fn scaled_mobilenet_runs_forward() {
        let model = ModelKind::MobileNetV2.build_with_width(10, 4, 0.25).unwrap();
        let image = dbpim_tensor::Tensor::filled(0.5, CIFAR_INPUT.to_vec()).unwrap();
        let logits = model.forward(&image).unwrap();
        assert_eq!(logits.shape(), &[10]);
    }

    #[test]
    fn compact_models_are_flagged() {
        assert!(ModelKind::MobileNetV2.is_compact());
        assert!(ModelKind::EfficientNetB0.is_compact());
        assert!(!ModelKind::Vgg19.is_compact());
        assert_eq!(ModelKind::all().len(), 5);
        assert_eq!(ModelKind::ResNet18.to_string(), "ResNet18");
    }

    #[test]
    fn full_width_parameter_counts_have_expected_order() {
        // Parameter ordering check on the two cheapest-to-build full models.
        let mobilenet = ModelKind::MobileNetV2.build(CIFAR100_CLASSES, 5).unwrap();
        let resnet = ModelKind::ResNet18.build(CIFAR100_CLASSES, 5).unwrap();
        let m = mobilenet.summary().unwrap().total_params();
        let r = resnet.summary().unwrap().total_params();
        assert!(m > 1_500_000 && m < 4_500_000, "MobileNetV2 params {m}");
        assert!(r > 10_000_000 && r < 13_000_000, "ResNet18 params {r}");
    }

    #[test]
    fn deterministic_seeding() {
        let a = tiny_cnn(10, 42).unwrap();
        let b = tiny_cnn(10, 42).unwrap();
        let c = tiny_cnn(10, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
