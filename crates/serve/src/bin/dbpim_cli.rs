//! `dbpim-cli` — command-line client for the `dbpim-served` daemon.
//!
//! ```text
//! dbpim-cli [--addr <ip>] [--port <u16>] [--auth-token <secret>] <command> [flags]
//!
//! commands:
//!   ping                       liveness + protocol-version check
//!   models                     list the servable zoo models
//!   run --model <name>         run one model (all four sparsity configs)
//!       [--sparsity <name>]    restrict to one configuration
//!       [--operand-width <w>]  override the daemon's default width
//!       [--fidelity]           request the accuracy-fidelity evaluation
//!   sweep [--models a,b,c]     sweep models (default: all five)
//!       [--sparsity <name>]    restrict to one configuration
//!       [--widths 4,8,...]     sweep several operand widths
//!       [--pruning none,0.3]   value-level pruning axis (u/s<fraction>)
//!       [--fidelity]           request fidelity where defined
//!   explore                    stream a design-space exploration
//!       [--macros 2,4,8]       macro-count axis (default: paper value)
//!       [--compartments a,b]   compartments-per-macro axis
//!       [--dbmus a,b]          DBMU-columns axis
//!       [--rows 32,64]         rows-per-DBMU axis
//!       [--freqs 250,500]      frequency axis in MHz
//!       [--models a,b,c]       models (default: all five)
//!       [--sparsity <name>]    restrict to one configuration
//!       [--widths 4,8,...]     operand-width axis
//!       [--pruning none,0.3]   value-level pruning axis (u/s<fraction>)
//!       [--fidelity]           request fidelity where defined
//!   stats                      daemon counters, queue depths, rejection
//!                              counts, per-request latency + cache stats
//!       [--watch <secs>]       re-poll every <secs> seconds and print a
//!                              delta/rate line per interval (req/s,
//!                              rejection rates) until interrupted
//!   metrics                    the daemon's full metrics registry in the
//!                              Prometheus text exposition format
//!   shard-status               progress of shard-tagged fleet explorations
//!   shutdown                   stop the daemon
//!
//! `run`, `sweep` and `explore` additionally accept `--deadline-ms <n>`:
//! the daemon answers with a structured `DeadlineExceeded` error instead of
//! streaming past the deadline. `--auth-token` authenticates the connection
//! before the command runs — required against a daemon started with
//! `--auth-token`, harmless against an open one.
//! ```
//!
//! Flag parsing is strict in the `ExperimentOptions` tradition: unknown
//! `--flag value` pairs are ignored (so wrappers can pass extra arguments
//! through), but a known flag with a missing or malformed value aborts with
//! usage on stderr (exit status 2).

use std::str::FromStr;
use std::time::Duration;

use db_pim::{DseSpec, PruningSpec, SweepReport, SweepSpec};
use dbpim_arch::ArchConfig;
use dbpim_csd::OperandWidth;
use dbpim_nn::ModelKind;
use dbpim_serve::options::{parse_value, OptionsError};
use dbpim_serve::{Client, RunQuery};
use dbpim_sim::{ArchGrid, SparsityConfig};

const USAGE: &str = "usage: dbpim-cli [--addr <ip>] [--port <u16>] [--auth-token <secret>] \
     <ping|models|run|sweep|explore|stats|metrics|shard-status|shutdown> [--model <name>] \
     [--models a,b,c] [--sparsity <name>] [--operand-width <4|8|12|16>] [--widths 4,8,...] \
     [--pruning none,0.3,s0.5,...] \
     [--macros a,b] [--compartments a,b] [--dbmus a,b] [--rows a,b] [--freqs a,b] \
     [--deadline-ms <n>] [--fidelity] [--watch <secs>] [--trace-out <path>] \
     [--log-level <error|warn|info|debug>]";

#[derive(Debug, Clone, PartialEq)]
enum Command {
    Ping,
    Models,
    Run,
    Sweep,
    Explore,
    Stats,
    Metrics,
    ShardStatus,
    Shutdown,
}

#[derive(Debug, Clone)]
struct CliOptions {
    addr: String,
    port: u16,
    command: Command,
    model: Option<ModelKind>,
    models: Option<Vec<ModelKind>>,
    sparsity: Option<SparsityConfig>,
    width: Option<OperandWidth>,
    widths: Option<Vec<OperandWidth>>,
    pruning: Option<Vec<PruningSpec>>,
    macros: Option<Vec<usize>>,
    compartments: Option<Vec<usize>>,
    dbmus: Option<Vec<usize>>,
    rows: Option<Vec<usize>>,
    freqs: Option<Vec<f64>>,
    deadline_ms: Option<u64>,
    auth_token: Option<String>,
    fidelity: bool,
    watch: Option<u64>,
}

impl CliOptions {
    const VALUE_FLAGS: [&'static str; 16] = [
        "--addr",
        "--port",
        "--model",
        "--models",
        "--sparsity",
        "--operand-width",
        "--widths",
        "--pruning",
        "--macros",
        "--compartments",
        "--dbmus",
        "--rows",
        "--freqs",
        "--deadline-ms",
        "--auth-token",
        "--watch",
    ];

    fn from_slice(args: &[String]) -> Result<Self, OptionsError> {
        let mut options = Self {
            addr: "127.0.0.1".to_string(),
            port: 7531,
            command: Command::Ping,
            model: None,
            models: None,
            sparsity: None,
            width: None,
            widths: None,
            pruning: None,
            macros: None,
            compartments: None,
            dbmus: None,
            rows: None,
            freqs: None,
            deadline_ms: None,
            auth_token: None,
            fidelity: false,
            watch: None,
        };
        let mut command = None;
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if arg == "--fidelity" {
                options.fidelity = true;
                i += 1;
                continue;
            }
            if !Self::VALUE_FLAGS.contains(&arg) {
                if arg.starts_with("--") {
                    // Unknown flag: skip it together with its value (when
                    // one follows), so the value cannot be mistaken for the
                    // command.
                    let has_value = args.get(i + 1).is_some_and(|next| !next.starts_with("--"));
                    i += if has_value { 2 } else { 1 };
                    continue;
                }
                if command.is_none() {
                    command = match arg {
                        "ping" => Some(Command::Ping),
                        "models" => Some(Command::Models),
                        "run" => Some(Command::Run),
                        "sweep" => Some(Command::Sweep),
                        "explore" => Some(Command::Explore),
                        "stats" => Some(Command::Stats),
                        "metrics" => Some(Command::Metrics),
                        "shard-status" => Some(Command::ShardStatus),
                        "shutdown" => Some(Command::Shutdown),
                        _ => None,
                    };
                }
                i += 1;
                continue;
            }
            let raw = args.get(i + 1).ok_or_else(|| OptionsError {
                flag: arg.to_string(),
                message: "missing value".to_string(),
            })?;
            match arg {
                "--addr" => options.addr = raw.clone(),
                "--port" => options.port = parse_value(arg, raw)?,
                "--model" => options.model = Some(parse_value(arg, raw)?),
                "--models" => options.models = Some(parse_list(arg, raw)?),
                "--sparsity" => options.sparsity = Some(parse_value(arg, raw)?),
                "--operand-width" => options.width = Some(parse_value(arg, raw)?),
                "--widths" => options.widths = Some(parse_list(arg, raw)?),
                "--pruning" => options.pruning = Some(parse_list(arg, raw)?),
                "--macros" => options.macros = Some(parse_list(arg, raw)?),
                "--compartments" => options.compartments = Some(parse_list(arg, raw)?),
                "--dbmus" => options.dbmus = Some(parse_list(arg, raw)?),
                "--rows" => options.rows = Some(parse_list(arg, raw)?),
                "--freqs" => options.freqs = Some(parse_list(arg, raw)?),
                "--deadline-ms" => options.deadline_ms = Some(parse_value(arg, raw)?),
                "--auth-token" => options.auth_token = Some(raw.clone()),
                // Zero would busy-poll the daemon; clamp like `--threads 0`.
                "--watch" => options.watch = Some(parse_value::<u64>(arg, raw)?.max(1)),
                _ => unreachable!("flag list and match arms agree"),
            }
            i += 2;
        }
        options.command = command.ok_or_else(|| OptionsError {
            flag: "<command>".to_string(),
            message: "expected one of: ping, models, run, sweep, explore, stats, metrics, \
                      shard-status, shutdown"
                .to_string(),
        })?;
        if options.command == Command::Run && options.model.is_none() {
            return Err(OptionsError {
                flag: "--model".to_string(),
                message: "required for `run`".to_string(),
            });
        }
        Ok(options)
    }
}

/// Parses a comma-separated list, attributing the failing element to the
/// flag.
fn parse_list<T: FromStr>(flag: &str, raw: &str) -> Result<Vec<T>, OptionsError>
where
    T::Err: std::fmt::Display,
{
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(|s| parse_value(flag, s)).collect()
}

fn print_report(report: &SweepReport) {
    println!("| model | width | arch macros | sparsity | cycles | speedup | energy saving |");
    println!("|---|---|---|---|---|---|---|");
    for entry in &report.entries {
        // Speedups are relative to the dense baseline; a query restricted
        // to a non-baseline sparsity configuration has nothing to compare
        // against.
        let has_baseline = entry.result.run(SparsityConfig::DenseBaseline).is_some();
        for run in &entry.result.runs {
            let (speedup, saving) = if has_baseline {
                (
                    format!("{:.2}x", entry.result.speedup(run.sparsity)),
                    format!("{:.2}%", 100.0 * entry.result.energy_saving(run.sparsity)),
                )
            } else {
                ("n/a".to_string(), "n/a".to_string())
            };
            // An active pruning spec rides in the width cell (`int8/u0.50`),
            // matching the dse_sweep table convention; unpruned rows render
            // exactly as before.
            let width_cell = if entry.pruning.is_active() {
                format!("{}/{}", entry.width, entry.pruning.label())
            } else {
                entry.width.to_string()
            };
            println!(
                "| {} | {} | {} | {} | {} | {} | {} |",
                entry.kind.name(),
                width_cell,
                entry.arch.macros,
                run.sparsity,
                run.total_cycles(),
                speedup,
                saving,
            );
        }
    }
    println!(
        "({} entries, {} prepared model/width artifact sets, {} simulated runs, server wall time {:?})",
        report.entries.len(),
        report.prepared_models,
        report.simulated_runs,
        report.wall_time,
    );
}

fn print_explore(report: &db_pim::DseReport) {
    println!("| model | width | macros | comp | dbmus | rows | MHz | hybrid cycles | speedup |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for entry in &report.entries {
        let hybrid = entry.result.run(SparsityConfig::HybridSparsity);
        let has_baseline = entry.result.run(SparsityConfig::DenseBaseline).is_some();
        let cycles = hybrid.map_or("n/a".to_string(), |run| run.total_cycles().to_string());
        let speedup = if hybrid.is_some() && has_baseline {
            format!("{:.2}x", entry.result.speedup(SparsityConfig::HybridSparsity))
        } else {
            "n/a".to_string()
        };
        let width_cell = if entry.pruning.is_active() {
            format!("{}/{}", entry.width, entry.pruning.label())
        } else {
            entry.width.to_string()
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            entry.kind.name(),
            width_cell,
            entry.arch.macros,
            entry.arch.compartments_per_macro,
            entry.arch.dbmus_per_compartment,
            entry.arch.rows_per_dbmu,
            entry.arch.frequency_mhz,
            cycles,
            speedup,
        );
    }
    println!(
        "({} of {} grid points, server wall time {:?})",
        report.entries.len(),
        report.total_points,
        report.wall_time,
    );
    for &kind in &report.spec.unique_models() {
        for sparsity in report.spec.unique_sparsity() {
            let frontier = report.pareto_frontier(kind, sparsity);
            if frontier.is_empty() {
                continue;
            }
            let labels: Vec<String> = frontier
                .iter()
                .map(|(i, m)| {
                    let e = &report.entries[*i];
                    format!(
                        "{}m/{}r@{} ({:.3} ms, {:.2} uJ, {:.3} mm2)",
                        e.arch.macros,
                        e.arch.rows_per_dbmu,
                        e.arch.frequency_mhz,
                        m.latency_ms,
                        m.energy_uj,
                        m.area_mm2
                    )
                })
                .collect();
            println!("pareto[{} / {}]: {}", kind.name(), sparsity, labels.join(", "));
        }
    }
}

fn print_stats(stats: &dbpim_serve::ServerStats) {
    println!("requests:             {}", stats.requests);
    println!("errors:               {}", stats.errors);
    println!("connections:          {}", stats.connections);
    println!("active connections:   {}", stats.active_connections);
    println!("queued connections:   {}", stats.queued_connections);
    println!("rejected overloaded:  {}", stats.rejected_overloaded);
    println!("rejected unauthorized:{}", stats.rejected_unauthorized);
    println!("rejected frames:      {}", stats.rejected_frames);
    println!("uptime:               {:?}", stats.uptime);
    println!("artifact hits:        {}", stats.cache.artifact_hits);
    println!("artifact misses:      {}", stats.cache.artifact_misses);
    println!("program hits:         {}", stats.cache.program_hits);
    println!("program misses:       {}", stats.cache.program_misses);
    println!("resident artifacts:   {}", stats.cache.resident_artifacts);
    println!("artifact evictions:   {}", stats.cache.artifact_evictions);
    if !stats.latency.is_empty() {
        println!("| request | count | mean us | p50 us | p99 us | max us |");
        println!("|---|---|---|---|---|---|");
        for entry in &stats.latency {
            let h = &entry.histogram;
            println!(
                "| {} | {} | {:.1} | {} | {} | {} |",
                entry.request,
                h.count,
                h.mean_micros(),
                h.percentile_micros(0.5),
                h.percentile_micros(0.99),
                h.max_micros,
            );
        }
    }
}

/// One `--watch` interval as a delta/rate line: what changed since the
/// previous poll, normalized to per-second rates where throughput is the
/// interesting unit. A pure function of two snapshots so it is testable
/// without a daemon.
fn render_stats_delta(
    prev: &dbpim_serve::ServerStats,
    curr: &dbpim_serve::ServerStats,
    interval_secs: u64,
) -> String {
    let secs = interval_secs.max(1) as f64;
    let delta = |c: u64, p: u64| c.saturating_sub(p);
    let requests = delta(curr.requests, prev.requests);
    let errors = delta(curr.errors, prev.errors);
    let connections = delta(curr.connections, prev.connections);
    let rejected = delta(curr.rejected_overloaded, prev.rejected_overloaded)
        + delta(curr.rejected_unauthorized, prev.rejected_unauthorized)
        + delta(curr.rejected_frames, prev.rejected_frames);
    format!(
        "+{requests} req ({:.1}/s) | +{errors} err | +{connections} conn | \
         +{rejected} rejected ({:.1}/s) | active {} | queued {}\n",
        requests as f64 / secs,
        rejected as f64 / secs,
        curr.active_connections,
        curr.queued_connections,
    )
}

/// `stats --watch <secs>`: print the absolute snapshot once, then one
/// delta/rate line per interval until interrupted (or the daemon goes
/// away, which surfaces as the client error).
fn watch_stats(client: &mut Client, interval_secs: u64) -> Result<(), dbpim_serve::ClientError> {
    use std::io::Write as _;

    let interval = Duration::from_secs(interval_secs.max(1));
    let mut prev = client.stats()?;
    print_stats(&prev);
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(interval);
        let curr = client.stats()?;
        print!("{}", render_stats_delta(&prev, &curr, interval_secs));
        std::io::stdout().flush().ok();
        prev = curr;
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match CliOptions::from_slice(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    // Observability plumbing rides beside the strict parser: `--trace-out`
    // dumps a Chrome trace of the client-side spans, `--log-level` tunes
    // the stderr logger. Both are scanned from the raw argument list so
    // they stay command-agnostic.
    if let Err(e) = dbpim_trace::log_level_from_args(&args) {
        eprintln!("dbpim-cli: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let trace = match dbpim_trace::TraceSink::from_args(&args) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("dbpim-cli: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let addr = format!("{}:{}", options.addr, options.port);
    let mut client = match Client::connect_timeout(addr.as_str(), Duration::from_secs(5)) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("dbpim-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if let Some(token) = &options.auth_token {
        if let Err(e) = client.authenticate(token) {
            eprintln!("dbpim-cli: authentication against {addr} failed: {e}");
            std::process::exit(1);
        }
    }

    let command_span =
        dbpim_trace::span!("cli.command", command = format!("{:?}", options.command));
    let outcome = match options.command {
        Command::Ping => client.ping().map(|version| {
            println!("pong (protocol v{version}) from {addr}");
        }),
        Command::Models => client.list_models().map(|models| {
            for kind in models {
                println!("{} (compact: {})", kind.name(), kind.is_compact());
            }
        }),
        Command::Run => {
            let mut query = RunQuery::new(options.model.expect("validated by the parser"));
            query.sparsity = options.sparsity;
            query.width = options.width;
            query.fidelity = options.fidelity;
            query.deadline_ms = options.deadline_ms;
            client.run_model(&query).map(|entry| {
                if let Some(fidelity) = &entry.result.fidelity {
                    println!("fidelity: top-1 agreement {:.2}%", 100.0 * fidelity.top1_agreement);
                }
                let report = SweepReport {
                    wall_time: Duration::ZERO,
                    prepared_models: 1,
                    simulated_runs: entry.result.runs.len(),
                    entries: vec![entry],
                };
                print_report(&report);
            })
        }
        Command::Sweep => {
            let models = options.models.unwrap_or_else(|| ModelKind::all().to_vec());
            let mut spec = SweepSpec::new(models);
            if let Some(sparsity) = options.sparsity {
                spec = spec.with_sparsity(vec![sparsity]);
            }
            if let Some(widths) = options.widths {
                spec = spec.with_widths(widths);
            }
            if let Some(pruning) = options.pruning {
                spec = spec.with_pruning(pruning);
            }
            client
                .sweep_streaming_with(
                    &spec,
                    options.fidelity,
                    options.deadline_ms,
                    |index, entry| {
                        eprintln!("… entry {index}: {} @ {} done", entry.kind.name(), entry.width);
                    },
                )
                .map(|report| print_report(&report))
        }
        Command::Explore => {
            let mut grid = ArchGrid::around(ArchConfig::paper());
            if let Some(macros) = options.macros {
                grid = grid.with_macros(macros);
            }
            if let Some(compartments) = options.compartments {
                grid = grid.with_compartments(compartments);
            }
            if let Some(dbmus) = options.dbmus {
                grid = grid.with_dbmus(dbmus);
            }
            if let Some(rows) = options.rows {
                grid = grid.with_rows(rows);
            }
            if let Some(freqs) = options.freqs {
                grid = grid.with_frequencies(freqs);
            }
            let models = options.models.unwrap_or_else(|| ModelKind::all().to_vec());
            let mut spec = DseSpec::new(grid, models);
            if let Some(sparsity) = options.sparsity {
                spec = spec.with_sparsity(vec![sparsity]);
            }
            if let Some(widths) = options.widths {
                spec = spec.with_widths(widths);
            }
            if let Some(pruning) = options.pruning {
                spec = spec.with_pruning(pruning);
            }
            if options.fidelity {
                spec = spec.with_fidelity();
            }
            client
                .explore_streaming_with(&spec, options.deadline_ms, None, |index, entry| {
                    eprintln!(
                        "… point {index}: {} @ {} on {} macros x {} rows @ {} MHz done",
                        entry.kind.name(),
                        entry.width,
                        entry.arch.macros,
                        entry.arch.rows_per_dbmu,
                        entry.arch.frequency_mhz,
                    );
                })
                .map(|report| print_explore(&report))
        }
        Command::Stats => match options.watch {
            Some(secs) => watch_stats(&mut client, secs),
            None => client.stats().map(|stats| print_stats(&stats)),
        },
        Command::Metrics => client.metrics_snapshot().map(|metrics| {
            print!("{}", metrics.render_prometheus());
        }),
        Command::ShardStatus => client.shard_statuses().map(|shards| {
            if shards.is_empty() {
                println!("no shard-tagged explorations served yet");
                return;
            }
            println!("| fleet | shard | points done | state | updated (unix ms) |");
            println!("|---|---|---|---|---|");
            for status in shards {
                println!(
                    "| {} | {}/{} | {}/{} | {:?} | {} |",
                    status.fleet,
                    status.shard,
                    status.of,
                    status.completed_points,
                    status.total_points,
                    status.state,
                    status.updated_at_ms,
                );
            }
        }),
        Command::Shutdown => client.shutdown().map(|()| {
            println!("daemon at {addr} is shutting down");
        }),
    };

    drop(command_span);
    if let Some(sink) = trace {
        if let Err(e) = sink.finish() {
            eprintln!("dbpim-cli: writing the trace failed: {e}");
        }
    }
    if let Err(e) = outcome {
        eprintln!("dbpim-cli: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn commands_and_flags_parse_strictly() {
        let options = CliOptions::from_slice(&args(&[
            "run",
            "--model",
            "resnet-18",
            "--sparsity",
            "hybrid",
            "--operand-width",
            "4",
            "--fidelity",
            "--port",
            "9000",
        ]))
        .unwrap();
        assert_eq!(options.command, Command::Run);
        assert_eq!(options.model, Some(ModelKind::ResNet18));
        assert_eq!(options.sparsity, Some(SparsityConfig::HybridSparsity));
        assert_eq!(options.width, Some(OperandWidth::Int4));
        assert!(options.fidelity);
        assert_eq!(options.port, 9000);

        let options = CliOptions::from_slice(&args(&[
            "sweep",
            "--models",
            "alexnet,vgg19",
            "--widths",
            "4,16",
        ]))
        .unwrap();
        assert_eq!(options.command, Command::Sweep);
        assert_eq!(options.models, Some(vec![ModelKind::AlexNet, ModelKind::Vgg19]));
        assert_eq!(options.widths, Some(vec![OperandWidth::Int4, OperandWidth::Int16]));
    }

    #[test]
    fn explore_grid_flags_parse_strictly() {
        let options = CliOptions::from_slice(&args(&[
            "explore",
            "--macros",
            "2,4,8",
            "--rows",
            "32,64",
            "--freqs",
            "250,500",
            "--models",
            "alexnet",
            "--sparsity",
            "hybrid",
        ]))
        .unwrap();
        assert_eq!(options.command, Command::Explore);
        assert_eq!(options.macros, Some(vec![2, 4, 8]));
        assert_eq!(options.rows, Some(vec![32, 64]));
        assert_eq!(options.freqs, Some(vec![250.0, 500.0]));
        assert_eq!(options.models, Some(vec![ModelKind::AlexNet]));
        assert_eq!(options.sparsity, Some(SparsityConfig::HybridSparsity));

        let err = CliOptions::from_slice(&args(&["explore", "--macros", "2,x"])).unwrap_err();
        assert_eq!(err.flag, "--macros");
        assert!(err.message.contains('x'), "{err}");
    }

    #[test]
    fn shard_status_and_deadline_flags_parse() {
        let options = CliOptions::from_slice(&args(&["shard-status", "--port", "7641"])).unwrap();
        assert_eq!(options.command, Command::ShardStatus);
        assert_eq!(options.port, 7641);

        let options = CliOptions::from_slice(&args(&["sweep", "--deadline-ms", "2500"])).unwrap();
        assert_eq!(options.command, Command::Sweep);
        assert_eq!(options.deadline_ms, Some(2500));

        let err = CliOptions::from_slice(&args(&["sweep", "--deadline-ms", "soon"])).unwrap_err();
        assert_eq!(err.flag, "--deadline-ms");
    }

    #[test]
    fn auth_token_flag_parses_for_every_command() {
        let options =
            CliOptions::from_slice(&args(&["stats", "--auth-token", "fleet-secret"])).unwrap();
        assert_eq!(options.command, Command::Stats);
        assert_eq!(options.auth_token.as_deref(), Some("fleet-secret"));

        let options = CliOptions::from_slice(&args(&["ping"])).unwrap();
        assert_eq!(options.auth_token, None);

        let err = CliOptions::from_slice(&args(&["stats", "--auth-token"])).unwrap_err();
        assert_eq!(err.flag, "--auth-token");
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn metrics_and_watch_parse_strictly() {
        let options = CliOptions::from_slice(&args(&["metrics", "--port", "7641"])).unwrap();
        assert_eq!(options.command, Command::Metrics);
        assert_eq!(options.port, 7641);

        let options = CliOptions::from_slice(&args(&["stats", "--watch", "5"])).unwrap();
        assert_eq!(options.command, Command::Stats);
        assert_eq!(options.watch, Some(5));
        // Zero would busy-poll; clamped like the other zero-able knobs.
        let options = CliOptions::from_slice(&args(&["stats", "--watch", "0"])).unwrap();
        assert_eq!(options.watch, Some(1));
        assert_eq!(CliOptions::from_slice(&args(&["stats"])).unwrap().watch, None);

        let err = CliOptions::from_slice(&args(&["stats", "--watch", "soon"])).unwrap_err();
        assert_eq!(err.flag, "--watch");
        let err = CliOptions::from_slice(&args(&["stats", "--watch"])).unwrap_err();
        assert_eq!(err.flag, "--watch");
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn stats_deltas_render_rates_per_interval() {
        let base = dbpim_serve::ServerStats {
            requests: 100,
            errors: 2,
            connections: 10,
            uptime: Duration::from_secs(60),
            cache: Default::default(),
            active_connections: 1,
            queued_connections: 0,
            rejected_overloaded: 4,
            rejected_unauthorized: 1,
            rejected_frames: 0,
            latency: Vec::new(),
        };
        let mut later = base.clone();
        later.requests = 150;
        later.errors = 3;
        later.connections = 12;
        later.rejected_overloaded = 6;
        later.rejected_frames = 1;
        later.active_connections = 3;
        later.queued_connections = 2;

        let line = render_stats_delta(&base, &later, 10);
        assert_eq!(
            line,
            "+50 req (5.0/s) | +1 err | +2 conn | +3 rejected (0.3/s) | active 3 | queued 2\n"
        );
        // A counter-reset (daemon restart) renders as zero, not underflow.
        let line = render_stats_delta(&later, &base, 10);
        assert!(line.starts_with("+0 req (0.0/s)"), "{line}");
    }

    #[test]
    fn unknown_flag_values_are_not_mistaken_for_commands() {
        // `--mytag run` is an unknown flag/value pair; the command is the
        // next free-standing word.
        let options = CliOptions::from_slice(&args(&["--mytag", "run", "shutdown"])).unwrap();
        assert_eq!(options.command, Command::Shutdown);
        // An unknown flag directly followed by another flag consumes
        // nothing extra.
        let options =
            CliOptions::from_slice(&args(&["--verbose", "--port", "9000", "ping"])).unwrap();
        assert_eq!(options.command, Command::Ping);
        assert_eq!(options.port, 9000);
    }

    #[test]
    fn malformed_command_lines_are_rejected() {
        // No command at all.
        let err = CliOptions::from_slice(&args(&["--port", "9000"])).unwrap_err();
        assert_eq!(err.flag, "<command>");
        // `run` without a model.
        let err = CliOptions::from_slice(&args(&["run"])).unwrap_err();
        assert_eq!(err.flag, "--model");
        // Unknown model name.
        let err = CliOptions::from_slice(&args(&["run", "--model", "lenet"])).unwrap_err();
        assert_eq!(err.flag, "--model");
        assert!(err.message.contains("lenet"), "{err}");
        // Bad element inside a list.
        let err = CliOptions::from_slice(&args(&["sweep", "--widths", "4,10"])).unwrap_err();
        assert_eq!(err.flag, "--widths");
        // Missing value.
        let err = CliOptions::from_slice(&args(&["sweep", "--models"])).unwrap_err();
        assert_eq!(err.flag, "--models");
        assert!(err.to_string().contains("missing"), "{err}");
    }
}
