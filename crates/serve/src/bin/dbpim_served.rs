//! `dbpim-served` — the sweep-serving daemon.
//!
//! Binds a TCP socket, builds the warm artifact cache lazily, and serves
//! the NDJSON protocol until a `Shutdown` request arrives. See the README's
//! "Serving" section for the wire-protocol specification.

use dbpim_serve::{ServeOptions, Server};
use dbpim_trace::log_error;

fn main() {
    let options = ServeOptions::from_args();
    dbpim_trace::set_log_level(options.log_level);
    let server = match Server::bind(options.serve_config()) {
        Ok(server) => server,
        Err(e) => {
            log_error!("served", "cannot start: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    let config = options.pipeline;
    println!(
        "dbpim-served listening on {addr} ({} worker threads, width_mult {}, seed {}, \
         {} classes, {} operand width, fidelity {})",
        options.threads,
        config.width_mult,
        config.seed,
        config.classes,
        config.operand_width,
        if config.evaluation_images > 0 {
            format!("on ({} images)", config.evaluation_images)
        } else {
            "off".to_string()
        },
    );
    println!(
        "dbpim-served hardening: auth {}, max frame {} bytes, max pending {}, \
         per-client connections {}",
        if options.auth_token.is_some() { "required" } else { "off" },
        options.max_frame_bytes,
        options.max_pending,
        options.max_client_conns.map_or("unlimited".to_string(), |cap| cap.to_string()),
    );
    if let Err(e) = server.run() {
        log_error!("served", "serving failed: {e}");
        std::process::exit(1);
    }
    println!("dbpim-served: shut down cleanly");
}
