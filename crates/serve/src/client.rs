//! Blocking client for the `dbpim-serve` daemon.
//!
//! One [`Client`] wraps one TCP connection; every method sends one request
//! line and reads the response line(s), so a client is cheap to keep around
//! for many queries — the daemon's warm cache does the heavy lifting.

use std::fmt;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use db_pim::{DseEntry, DseReport, DseSpec, SweepEntry, SweepReport, SweepSpec};
use dbpim_arch::ArchConfig;
use dbpim_csd::OperandWidth;
use dbpim_nn::ModelKind;
use dbpim_sim::SparsityConfig;

use crate::protocol::{
    read_message, write_message, ErrorResponse, Request, Response, ServerStats, ShardAnnotation,
    ShardStatus, TraceContext, WireError, PROTOCOL_VERSION,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The server sent something the client cannot interpret (malformed
    /// line, unexpected response variant, protocol-version mismatch).
    Protocol(String),
    /// The server answered with a structured error.
    Server(ErrorResponse),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            WireError::Malformed(m) => ClientError::Protocol(m),
        }
    }
}

/// The query parameters of a [`Client::run_model`] request; the builders
/// mirror the daemon's defaulting (session width / geometry, all four
/// sparsity configurations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunQuery {
    /// The zoo model to run.
    pub model: ModelKind,
    /// Restrict to one sparsity configuration (`None` = all four).
    pub sparsity: Option<SparsityConfig>,
    /// Operand-width override.
    pub width: Option<OperandWidth>,
    /// Geometry override.
    pub arch: Option<ArchConfig>,
    /// Request the fidelity evaluation.
    pub fidelity: bool,
    /// Server-side deadline in milliseconds (`None` = no deadline); an
    /// expired request is answered with a structured
    /// [`ErrorKind::DeadlineExceeded`](crate::protocol::ErrorKind) error.
    pub deadline_ms: Option<u64>,
}

impl RunQuery {
    /// A query for `model` with every field at the daemon's default.
    #[must_use]
    pub fn new(model: ModelKind) -> Self {
        Self { model, sparsity: None, width: None, arch: None, fidelity: false, deadline_ms: None }
    }

    /// Restricts the query to one sparsity configuration.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: SparsityConfig) -> Self {
        self.sparsity = Some(sparsity);
        self
    }

    /// Overrides the operand width.
    #[must_use]
    pub fn with_width(mut self, width: OperandWidth) -> Self {
        self.width = Some(width);
        self
    }

    /// Overrides the geometry.
    #[must_use]
    pub fn with_arch(mut self, arch: ArchConfig) -> Self {
        self.arch = Some(arch);
        self
    }

    /// Requests the fidelity evaluation.
    #[must_use]
    pub fn with_fidelity(mut self) -> Self {
        self.fidelity = true;
        self
    }

    /// Sets a server-side deadline in milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// A blocking connection to a `dbpim-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Estimated daemon-clock minus client-clock offset in microseconds,
    /// captured by the last [`Client::ping`] (NTP-style midpoint estimate).
    clock_offset_micros: Option<i64>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(stream), writer, clock_offset_micros: None })
    }

    /// [`connect`](Self::connect) with a connection timeout (tries every
    /// resolved address before giving up).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let mut last = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let writer = stream.try_clone()?;
                    return Ok(Self {
                        reader: BufReader::new(stream),
                        writer,
                        clock_offset_micros: None,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(
            last.unwrap_or_else(|| {
                std::io::Error::other("address resolved to no socket addresses")
            }),
        ))
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_message(&mut self.writer, request)?;
        Ok(())
    }

    /// Reads one response line; end-of-stream is a protocol error (the
    /// daemon never half-closes mid-exchange).
    ///
    /// # Errors
    ///
    /// Propagates read failures and malformed responses.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        read_message::<Response>(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))
    }

    /// One request, one response.
    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        match self.recv()? {
            Response::Error { error } => Err(ClientError::Server(error)),
            response => Ok(response),
        }
    }

    /// Pings the daemon; checks the protocol version and returns it.
    ///
    /// As a side effect, estimates the daemon's clock offset from the
    /// server timestamp in the pong (NTP-style: the server clock is read
    /// against the midpoint of the request/response interval) and stores
    /// it for [`clock_offset_micros`](Self::clock_offset_micros).
    ///
    /// # Errors
    ///
    /// Fails on connection problems or a version mismatch.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        let sent = dbpim_trace::unix_micros_now();
        let response = self.round_trip(&Request::Ping)?;
        let received = dbpim_trace::unix_micros_now();
        match response {
            Response::Pong { version, server_time_micros } if version == PROTOCOL_VERSION => {
                if let Some(server) = server_time_micros {
                    let midpoint = i64::try_from(sent / 2 + received / 2).unwrap_or(i64::MAX);
                    let server = i64::try_from(server).unwrap_or(i64::MAX);
                    self.clock_offset_micros = Some(server - midpoint);
                }
                Ok(version)
            }
            Response::Pong { version, .. } => Err(ClientError::Protocol(format!(
                "server speaks protocol v{version}, this client v{PROTOCOL_VERSION}"
            ))),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// The daemon-clock minus client-clock offset (microseconds) the last
    /// [`ping`](Self::ping) estimated; `None` before any ping. Accuracy is
    /// bounded by half the ping round-trip time — plenty for aligning
    /// millisecond-scale spans in a merged trace, not for profiling the
    /// wire itself.
    #[must_use]
    pub fn clock_offset_micros(&self) -> Option<i64> {
        self.clock_offset_micros
    }

    /// Presents the daemon's shared secret ([`Request::Auth`]). Required
    /// before anything but [`ping`](Self::ping) on a daemon started with
    /// `--auth-token`; harmless (accepted with any token) on an open
    /// daemon, so callers can authenticate unconditionally.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Server`] with an
    /// [`ErrorKind::Unauthorized`](crate::protocol::ErrorKind) payload on a
    /// wrong token (the daemon closes the connection afterwards), and
    /// propagates connection failures.
    pub fn authenticate(&mut self, token: &str) -> Result<(), ClientError> {
        match self.round_trip(&Request::Auth { token: token.to_string() })? {
            Response::AuthOk => Ok(()),
            other => Err(unexpected("AuthOk", &other)),
        }
    }

    /// The zoo models the daemon serves.
    ///
    /// # Errors
    ///
    /// Propagates connection and server failures.
    pub fn list_models(&mut self) -> Result<Vec<ModelKind>, ClientError> {
        match self.round_trip(&Request::ListModels)? {
            Response::Models { models } => Ok(models),
            other => Err(unexpected("Models", &other)),
        }
    }

    /// Runs one model query and returns its entry.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side pipeline errors.
    pub fn run_model(&mut self, query: &RunQuery) -> Result<SweepEntry, ClientError> {
        let request = Request::RunModel {
            model: query.model,
            sparsity: query.sparsity,
            width: query.width,
            arch: query.arch,
            fidelity: query.fidelity,
            deadline_ms: query.deadline_ms,
            trace: None,
        };
        match self.round_trip(&request)? {
            Response::RunResult { entry } => Ok(entry),
            other => Err(unexpected("RunResult", &other)),
        }
    }

    /// Runs a sweep, discarding the stream granularity and returning the
    /// reassembled report.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side pipeline errors.
    pub fn sweep(&mut self, spec: &SweepSpec, fidelity: bool) -> Result<SweepReport, ClientError> {
        self.sweep_streaming(spec, fidelity, |_, _| {})
    }

    /// Runs a sweep, invoking `on_entry(index, entry)` as each streamed
    /// entry arrives, then returns the reassembled report.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side pipeline errors.
    pub fn sweep_streaming(
        &mut self,
        spec: &SweepSpec,
        fidelity: bool,
        mut on_entry: impl FnMut(usize, &SweepEntry),
    ) -> Result<SweepReport, ClientError> {
        self.sweep_streaming_with(spec, fidelity, None, &mut on_entry)
    }

    /// [`sweep_streaming`](Self::sweep_streaming) with a server-side
    /// deadline: the daemon ends the stream with a structured
    /// `DeadlineExceeded` error once `deadline_ms` elapses.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side errors (including
    /// the deadline).
    pub fn sweep_streaming_with(
        &mut self,
        spec: &SweepSpec,
        fidelity: bool,
        deadline_ms: Option<u64>,
        mut on_entry: impl FnMut(usize, &SweepEntry),
    ) -> Result<SweepReport, ClientError> {
        self.send(&Request::Sweep { spec: spec.clone(), fidelity, deadline_ms, trace: None })?;
        let expected = match self.recv()? {
            Response::SweepStarted { entries } => entries,
            Response::Error { error } => return Err(ClientError::Server(error)),
            other => return Err(unexpected("SweepStarted", &other)),
        };
        let mut entries = Vec::with_capacity(expected);
        loop {
            match self.recv()? {
                Response::SweepPoint { index, entry } => {
                    if index != entries.len() {
                        return Err(ClientError::Protocol(format!(
                            "sweep entries arrived out of order: got {index}, expected {}",
                            entries.len()
                        )));
                    }
                    on_entry(index, &entry);
                    entries.push(entry);
                }
                Response::SweepFinished { prepared_models, simulated_runs, wall_time } => {
                    if entries.len() != expected {
                        return Err(ClientError::Protocol(format!(
                            "sweep finished after {} of {expected} entries",
                            entries.len()
                        )));
                    }
                    return Ok(SweepReport { entries, wall_time, prepared_models, simulated_runs });
                }
                Response::Error { error } => return Err(ClientError::Server(error)),
                other => return Err(unexpected("SweepPoint or SweepFinished", &other)),
            }
        }
    }

    /// Runs a design-space exploration, discarding the stream granularity
    /// and returning the reassembled [`DseReport`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side pipeline errors
    /// (oversized / infeasible grids, failing points).
    pub fn explore(&mut self, spec: &DseSpec) -> Result<DseReport, ClientError> {
        self.explore_streaming(spec, |_, _| {})
    }

    /// Runs a design-space exploration, invoking `on_entry(index, entry)`
    /// as each streamed grid point arrives, then returns the reassembled
    /// report — entry-for-entry identical (timestamps aside) to a local
    /// [`db_pim::DseDriver`] run of the same spec, which the protocol test
    /// suite asserts via [`DseReport::results_match`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side pipeline errors.
    pub fn explore_streaming(
        &mut self,
        spec: &DseSpec,
        mut on_entry: impl FnMut(usize, &DseEntry),
    ) -> Result<DseReport, ClientError> {
        self.explore_streaming_with(spec, None, None, &mut on_entry)
    }

    /// [`explore_streaming`](Self::explore_streaming) with the protocol-v3
    /// extras: an optional server-side deadline and an optional fleet shard
    /// tag (the daemon records tagged progress for
    /// [`shard_statuses`](Self::shard_statuses)).
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side errors (including
    /// the deadline).
    pub fn explore_streaming_with(
        &mut self,
        spec: &DseSpec,
        deadline_ms: Option<u64>,
        shard: Option<ShardAnnotation>,
        on_entry: impl FnMut(usize, &DseEntry),
    ) -> Result<DseReport, ClientError> {
        self.explore_streaming_traced(spec, deadline_ms, shard, None, on_entry)
    }

    /// [`explore_streaming_with`](Self::explore_streaming_with) plus the
    /// protocol-v5 distributed-tracing context: when `trace` is present,
    /// the daemon opens its `serve.request` span as a child of the
    /// caller's, carrying the fleet run and point identity. A `None`
    /// context leaves the request byte-identical to a v4 one.
    ///
    /// # Errors
    ///
    /// Propagates connection failures and server-side errors (including
    /// the deadline).
    pub fn explore_streaming_traced(
        &mut self,
        spec: &DseSpec,
        deadline_ms: Option<u64>,
        shard: Option<ShardAnnotation>,
        trace: Option<TraceContext>,
        mut on_entry: impl FnMut(usize, &DseEntry),
    ) -> Result<DseReport, ClientError> {
        self.send(&Request::Explore { spec: Box::new(spec.clone()), deadline_ms, shard, trace })?;
        let expected = match self.recv()? {
            Response::ExploreStarted { total_points } => total_points,
            Response::Error { error } => return Err(ClientError::Server(error)),
            other => return Err(unexpected("ExploreStarted", &other)),
        };
        let mut report = DseReport::empty(spec.clone(), expected);
        loop {
            match self.recv()? {
                Response::ExplorePoint { index, entry } => {
                    if index != report.entries.len() {
                        return Err(ClientError::Protocol(format!(
                            "exploration points arrived out of order: got {index}, expected {}",
                            report.entries.len()
                        )));
                    }
                    on_entry(index, &entry);
                    report.entries.push(entry);
                }
                Response::ExploreFinished { total_points, wall_time } => {
                    if report.entries.len() != expected || total_points != expected {
                        return Err(ClientError::Protocol(format!(
                            "exploration finished after {} of {expected} points",
                            report.entries.len()
                        )));
                    }
                    report.fresh_points = report.entries.len();
                    report.wall_time = wall_time;
                    return Ok(report);
                }
                Response::Error { error } => return Err(ClientError::Server(error)),
                other => return Err(unexpected("ExplorePoint or ExploreFinished", &other)),
            }
        }
    }

    /// Bounds how long [`recv`](Self::recv) (and with it every streaming
    /// call) blocks waiting for the next response line; a daemon that goes
    /// quiet for longer surfaces as a [`ClientError::Io`] timeout instead
    /// of hanging the caller forever. `None` restores unbounded blocking.
    /// The fleet driver uses this as its liveness detector.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn set_response_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Snapshots the daemon's counters.
    ///
    /// # Errors
    ///
    /// Propagates connection and server failures.
    pub fn cache_stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::CacheStats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Snapshots the daemon's full observability surface ([`Request::Stats`]):
    /// request counters, queue depths, rejection counters and the
    /// per-request-type latency histograms.
    ///
    /// # Errors
    ///
    /// Propagates connection and server failures.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// The daemon's shard-progress registry (most recently updated first):
    /// one entry per shard-tagged exploration it has served.
    ///
    /// # Errors
    ///
    /// Propagates connection and server failures.
    pub fn shard_statuses(&mut self) -> Result<Vec<ShardStatus>, ClientError> {
        match self.round_trip(&Request::ShardStatus)? {
            Response::ShardStatuses { shards } => Ok(shards),
            other => Err(unexpected("ShardStatuses", &other)),
        }
    }

    /// Drains the daemon's span collector ([`Request::TraceSnapshot`]):
    /// the spans recorded since the previous drain, the drop count, the
    /// daemon's pid and its collector's wall-clock epoch. Empty when the
    /// daemon traces nothing.
    ///
    /// # Errors
    ///
    /// Propagates connection and server failures.
    pub fn trace_snapshot(&mut self) -> Result<dbpim_trace::CollectorSnapshot, ClientError> {
        match self.round_trip(&Request::TraceSnapshot)? {
            Response::TraceSpans { snapshot } => Ok(snapshot),
            other => Err(unexpected("TraceSpans", &other)),
        }
    }

    /// Snapshots the daemon's full metrics registry
    /// ([`Request::MetricsSnapshot`]): every counter, gauge and histogram
    /// by name — the surface `dbpim-cli metrics` renders as Prometheus
    /// text.
    ///
    /// # Errors
    ///
    /// Propagates connection and server failures.
    pub fn metrics_snapshot(&mut self) -> Result<dbpim_trace::MetricsSnapshot, ClientError> {
        match self.round_trip(&Request::MetricsSnapshot)? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Asks the daemon to exit; returns once the shutdown is acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
