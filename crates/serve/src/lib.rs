//! # dbpim-serve: the long-lived sweep-serving daemon
//!
//! The experiment binaries pay the full `model → quantize → FTA → compile`
//! cost on every invocation. This crate keeps those artifacts *resident*: a
//! daemon ([`Server`]) owns one warm [`db_pim::SimSession`] cache per
//! operand width and answers queries over a newline-delimited JSON TCP
//! protocol ([`protocol`]), so the first request for a (model, width) pays
//! the cold pipeline once and every later request — from any client — is
//! served from cache.
//!
//! Three layers:
//!
//! * [`protocol`] — the typed request/response messages and the NDJSON
//!   framing ([`protocol::read_message`] / [`protocol::write_message`]).
//! * [`server`] — the daemon: a TCP acceptor feeding a worker thread pool,
//!   the shared warm cache ([`db_pim::BatchRunner`] inside), incremental
//!   result streaming for sweeps, graceful shutdown, and the production
//!   hardening (admission control, shared-secret auth, bounded request
//!   framing, per-request-type latency histograms).
//! * [`client`] — a blocking client library the `dbpim-cli` binary and the
//!   `serve_bench` load generator are built on.
//!
//! In-process usage (the binaries speak the same protocol over real
//! sockets):
//!
//! ```
//! use db_pim::PipelineConfig;
//! use dbpim_serve::{Client, RunQuery, ServeConfig, Server};
//!
//! let mut config = ServeConfig::default();
//! config.addr = "127.0.0.1:0".to_string(); // pick a free port
//! config.pipeline = PipelineConfig::fast().without_fidelity();
//! let handle = Server::spawn(config)?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! client.ping()?;
//! let models = client.list_models()?;
//! assert_eq!(models.len(), 5);
//! client.shutdown()?;
//! handle.join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod options;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, RunQuery};
pub use options::{OptionsError, ServeOptions};
pub use protocol::{
    ErrorKind, ErrorResponse, Request, RequestLatency, Response, ServerStats, ShardAnnotation,
    ShardState, ShardStatus, TraceContext, WireError, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, ServeError, Server, ServerHandle};
