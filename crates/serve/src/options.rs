//! Strict command-line parsing for the serving binaries.
//!
//! Same conventions as the experiment binaries' `ExperimentOptions`
//! (`dbpim-bench`): unknown flags are ignored so wrappers can pass extra
//! arguments through, but a known flag with a missing or malformed value is
//! an error — silently falling back to a default would start the daemon
//! with a different model zoo than the operator asked for.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

use db_pim::PipelineConfig;
use dbpim_csd::OperandWidth;
use dbpim_trace::LogLevel;

use crate::server::ServeConfig;

/// A malformed serving command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionsError {
    /// The flag at fault (e.g. `--port`).
    pub flag: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid value for `{}`: {}", self.flag, self.message)
    }
}

impl std::error::Error for OptionsError {}

/// Parses one flag value, attributing failures to the flag (shared by the
/// daemon's and the CLI's parsers).
///
/// # Errors
///
/// Returns [`OptionsError`] naming `flag` when `raw` does not parse as `T`.
pub fn parse_value<T: FromStr>(flag: &str, raw: &str) -> Result<T, OptionsError>
where
    T::Err: fmt::Display,
{
    raw.parse().map_err(|e: T::Err| OptionsError {
        flag: flag.to_string(),
        message: format!("`{raw}` — {e}"),
    })
}

/// Command-line options of the `dbpim-served` daemon.
///
/// ```text
/// --addr <ip>       bind address (default 127.0.0.1)
/// --port <u16>      bind port (default 7531; 0 picks a free port)
/// --threads <n>     worker threads (default 4)
/// --width <f32>     channel width multiplier (default 1.0)
/// --seed <u64>      synthetic-weight seed (default 42)
/// --images <usize>  evaluation images for fidelity queries (default 16)
/// --cal <usize>     calibration images (default 4)
/// --classes <usize> output classes (default 100)
/// --operand-width <4|8|12|16>  default weight operand width (default 8)
/// --cache-cap <n>   LRU cap on resident prepared models per width session
///                   (default unbounded; 0 is clamped to 1)
/// --auth-token <s>  shared secret clients must present via Auth (default
///                   none: open daemon)
/// --max-frame-bytes <n>  request-line size limit; longer frames are
///                   answered FrameTooLarge and disconnected (default 1 MiB)
/// --max-pending <n> admission-control backlog bound once every worker is
///                   busy (default 64)
/// --max-client-conns <n>  per-client-IP cap on open connections (default
///                   unlimited)
/// --log-level <error|warn|info|debug>  stderr log verbosity (default info)
/// --trace-dir <dir> install a trace collector and dump a Chrome trace JSON
///                   into <dir> every N requests (default off)
/// --trace-every <n> requests per --trace-dir dump (default 64)
/// --trace-buffer <spans>  install a trace collector bounded to <spans>
///                   spans, held for remote collection via TraceSnapshot
///                   requests instead of file dumps (default off; ignored
///                   when --trace-dir is set)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Bind address.
    pub addr: String,
    /// Bind port (`0` picks a free one).
    pub port: u16,
    /// Worker threads.
    pub threads: usize,
    /// The pipeline configuration the daemon's sessions derive from.
    pub pipeline: PipelineConfig,
    /// LRU cap on resident prepared models per per-width session cache.
    pub cache_cap: Option<usize>,
    /// Shared secret clients must present; `None` runs an open daemon.
    pub auth_token: Option<String>,
    /// Request-line size limit in bytes.
    pub max_frame_bytes: usize,
    /// Admission-control backlog bound.
    pub max_pending: usize,
    /// Per-client-IP cap on simultaneously open connections.
    pub max_client_conns: Option<usize>,
    /// Stderr log verbosity.
    pub log_level: LogLevel,
    /// Directory periodic Chrome trace dumps are written into.
    pub trace_dir: Option<PathBuf>,
    /// Requests per `trace_dir` dump.
    pub trace_every: u64,
    /// Span capacity of the remote-collection trace buffer.
    pub trace_buffer: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1".to_string(),
            port: 7531,
            threads: 4,
            pipeline: PipelineConfig::paper(),
            cache_cap: None,
            auth_token: None,
            max_frame_bytes: ServeConfig::DEFAULT_MAX_FRAME_BYTES,
            max_pending: ServeConfig::DEFAULT_MAX_PENDING,
            max_client_conns: None,
            log_level: LogLevel::Info,
            trace_dir: None,
            trace_every: ServeConfig::DEFAULT_TRACE_EVERY,
            trace_buffer: None,
        }
    }
}

impl ServeOptions {
    /// The flags this parser understands.
    pub const FLAGS: [&'static str; 18] = [
        "--addr",
        "--port",
        "--threads",
        "--width",
        "--seed",
        "--images",
        "--cal",
        "--classes",
        "--operand-width",
        "--cache-cap",
        "--auth-token",
        "--max-frame-bytes",
        "--max-pending",
        "--max-client-conns",
        "--log-level",
        "--trace-dir",
        "--trace-every",
        "--trace-buffer",
    ];

    /// One-line usage text for the daemon binary.
    pub const USAGE: &'static str = "usage: dbpim-served [--addr <ip>] [--port <u16>] \
         [--threads <n>] [--width <f32>] [--seed <u64>] [--images <n>] [--cal <n>] \
         [--classes <n>] [--operand-width <4|8|12|16>] [--cache-cap <n>] \
         [--auth-token <secret>] [--max-frame-bytes <n>] [--max-pending <n>] \
         [--max-client-conns <n>] [--log-level <error|warn|info|debug>] \
         [--trace-dir <dir>] [--trace-every <n>] [--trace-buffer <spans>]";

    /// Parses options from the process arguments, exiting with status 2 and
    /// usage on stderr for a malformed command line.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match Self::from_slice(&args) {
            Ok(options) => options,
            Err(e) => {
                eprintln!("{e}");
                eprintln!("{}", Self::USAGE);
                std::process::exit(2);
            }
        }
    }

    /// Parses options from an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns [`OptionsError`] when a known flag has a missing or
    /// malformed value. Unknown arguments are ignored.
    pub fn from_slice(args: &[String]) -> Result<Self, OptionsError> {
        let mut options = Self::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !Self::FLAGS.contains(&flag) {
                i += 1;
                continue;
            }
            let raw = args.get(i + 1).ok_or_else(|| OptionsError {
                flag: flag.to_string(),
                message: "missing value".to_string(),
            })?;
            match flag {
                "--addr" => options.addr = raw.clone(),
                "--port" => options.port = parse_value(flag, raw)?,
                "--threads" => options.threads = parse_value::<usize>(flag, raw)?.max(1),
                "--width" => options.pipeline.width_mult = parse_value(flag, raw)?,
                "--seed" => options.pipeline.seed = parse_value(flag, raw)?,
                "--images" => options.pipeline.evaluation_images = parse_value(flag, raw)?,
                "--cal" => {
                    options.pipeline.calibration_images = parse_value::<usize>(flag, raw)?.max(1);
                }
                "--classes" => options.pipeline.classes = parse_value(flag, raw)?,
                "--operand-width" => {
                    options.pipeline.operand_width = parse_value::<OperandWidth>(flag, raw)?;
                }
                "--cache-cap" => options.cache_cap = Some(parse_value::<usize>(flag, raw)?.max(1)),
                "--auth-token" => options.auth_token = Some(raw.clone()),
                "--max-frame-bytes" => {
                    options.max_frame_bytes = parse_value::<usize>(flag, raw)?.max(1);
                }
                "--max-pending" => options.max_pending = parse_value(flag, raw)?,
                "--max-client-conns" => {
                    options.max_client_conns = Some(parse_value::<usize>(flag, raw)?.max(1));
                }
                "--log-level" => options.log_level = parse_value(flag, raw)?,
                "--trace-dir" => options.trace_dir = Some(PathBuf::from(raw)),
                "--trace-every" => options.trace_every = parse_value::<u64>(flag, raw)?.max(1),
                "--trace-buffer" => {
                    options.trace_buffer = Some(parse_value::<usize>(flag, raw)?.max(1));
                }
                _ => unreachable!("flag list and match arms agree"),
            }
            i += 2;
        }
        Ok(options)
    }

    /// The serving configuration equivalent to these options.
    #[must_use]
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            addr: format!("{}:{}", self.addr, self.port),
            threads: self.threads,
            poll_interval: Duration::from_millis(200),
            pipeline: self.pipeline,
            cache_cap: self.cache_cap,
            auth_token: self.auth_token.clone(),
            max_frame_bytes: self.max_frame_bytes,
            max_pending_connections: self.max_pending,
            max_connections_per_client: self.max_client_conns,
            metrics: None,
            trace_dir: self.trace_dir.clone(),
            trace_every: self.trace_every,
            trace_buffer: self.trace_buffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_serving_and_pipeline_flags_and_ignores_the_rest() {
        let options = ServeOptions::from_slice(&args(&[
            "dbpim-served",
            "--addr",
            "0.0.0.0",
            "--port",
            "0",
            "--threads",
            "2",
            "--width",
            "0.25",
            "--seed",
            "7",
            "--images",
            "0",
            "--cal",
            "1",
            "--classes",
            "10",
            "--operand-width",
            "int4",
            "--bogus",
            "x",
        ]))
        .unwrap();
        assert_eq!(options.addr, "0.0.0.0");
        assert_eq!(options.port, 0);
        assert_eq!(options.threads, 2);
        assert!((options.pipeline.width_mult - 0.25).abs() < 1e-6);
        assert_eq!(options.pipeline.seed, 7);
        assert_eq!(options.pipeline.evaluation_images, 0);
        assert_eq!(options.pipeline.calibration_images, 1);
        assert_eq!(options.pipeline.classes, 10);
        assert_eq!(options.pipeline.operand_width, OperandWidth::Int4);
        assert_eq!(options.serve_config().addr, "0.0.0.0:0");
        assert_eq!(options.serve_config().threads, 2);
    }

    #[test]
    fn malformed_values_are_rejected_not_swallowed() {
        let err = ServeOptions::from_slice(&args(&["--port", "notaport"])).unwrap_err();
        assert_eq!(err.flag, "--port");
        assert!(err.message.contains("notaport"), "{err}");

        let err = ServeOptions::from_slice(&args(&["--port", "65536"])).unwrap_err();
        assert_eq!(err.flag, "--port");

        let err = ServeOptions::from_slice(&args(&["--threads"])).unwrap_err();
        assert_eq!(err.flag, "--threads");
        assert!(err.to_string().contains("missing"), "{err}");

        let err = ServeOptions::from_slice(&args(&["--operand-width", "10"])).unwrap_err();
        assert_eq!(err.flag, "--operand-width");
    }

    #[test]
    fn cache_cap_parses_strictly_and_clamps_zero() {
        let options = ServeOptions::from_slice(&args(&["--cache-cap", "3"])).unwrap();
        assert_eq!(options.cache_cap, Some(3));
        assert_eq!(options.serve_config().cache_cap, Some(3));
        // A zero cap would cache nothing and silently degrade every request
        // to a cold build; clamp it like `--threads 0`.
        let options = ServeOptions::from_slice(&args(&["--cache-cap", "0"])).unwrap();
        assert_eq!(options.cache_cap, Some(1));
        let err = ServeOptions::from_slice(&args(&["--cache-cap", "lots"])).unwrap_err();
        assert_eq!(err.flag, "--cache-cap");
        assert_eq!(ServeOptions::default().cache_cap, None, "unbounded by default");
    }

    #[test]
    fn hardening_flags_parse_strictly() {
        let options = ServeOptions::from_slice(&args(&[
            "--auth-token",
            "fleet-secret",
            "--max-frame-bytes",
            "4096",
            "--max-pending",
            "8",
            "--max-client-conns",
            "2",
        ]))
        .unwrap();
        assert_eq!(options.auth_token.as_deref(), Some("fleet-secret"));
        assert_eq!(options.max_frame_bytes, 4096);
        assert_eq!(options.max_pending, 8);
        assert_eq!(options.max_client_conns, Some(2));
        let config = options.serve_config();
        assert_eq!(config.auth_token.as_deref(), Some("fleet-secret"));
        assert_eq!(config.max_frame_bytes, 4096);
        assert_eq!(config.max_pending_connections, 8);
        assert_eq!(config.max_connections_per_client, Some(2));

        // Defaults: open daemon, 1 MiB frames, 64 pending, no per-client cap.
        let defaults = ServeOptions::default();
        assert_eq!(defaults.auth_token, None);
        assert_eq!(defaults.max_frame_bytes, ServeConfig::DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(defaults.max_pending, ServeConfig::DEFAULT_MAX_PENDING);
        assert_eq!(defaults.max_client_conns, None);

        let err = ServeOptions::from_slice(&args(&["--max-frame-bytes", "big"])).unwrap_err();
        assert_eq!(err.flag, "--max-frame-bytes");
        let err = ServeOptions::from_slice(&args(&["--auth-token"])).unwrap_err();
        assert_eq!(err.flag, "--auth-token");
        assert!(err.to_string().contains("missing"), "{err}");
        // Zero would make every frame oversized / cap everyone out.
        let options =
            ServeOptions::from_slice(&args(&["--max-frame-bytes", "0", "--max-client-conns", "0"]))
                .unwrap();
        assert_eq!(options.max_frame_bytes, 1);
        assert_eq!(options.max_client_conns, Some(1));
    }

    #[test]
    fn trace_buffer_parses_strictly_and_clamps_zero() {
        let options = ServeOptions::from_slice(&args(&["--trace-buffer", "4096"])).unwrap();
        assert_eq!(options.trace_buffer, Some(4096));
        assert_eq!(options.serve_config().trace_buffer, Some(4096));
        // A zero-span buffer would drop everything it exists to keep.
        let options = ServeOptions::from_slice(&args(&["--trace-buffer", "0"])).unwrap();
        assert_eq!(options.trace_buffer, Some(1));
        let err = ServeOptions::from_slice(&args(&["--trace-buffer", "lots"])).unwrap_err();
        assert_eq!(err.flag, "--trace-buffer");
        assert_eq!(ServeOptions::default().trace_buffer, None, "off by default");
    }

    #[test]
    fn defaults_match_the_paper_pipeline() {
        let options = ServeOptions::from_slice(&args(&[])).unwrap();
        assert_eq!(options, ServeOptions::default());
        assert_eq!(options.pipeline, PipelineConfig::paper());
        assert_eq!(options.serve_config().addr, "127.0.0.1:7531");
        // Zero threads is clamped: a daemon with no workers would hang.
        let options = ServeOptions::from_slice(&args(&["--threads", "0"])).unwrap();
        assert_eq!(options.threads, 1);
    }
}
