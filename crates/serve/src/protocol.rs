//! The `dbpim-serve` wire protocol.
//!
//! Newline-delimited JSON over a plain TCP stream: every message is one JSON
//! value on one line, terminated by `\n`. Requests and responses use the
//! externally-tagged enum encoding the vendored serde derive produces — a
//! unit variant is its name as a JSON string (`"Ping"`), a data-carrying
//! variant is a single-entry object (`{"RunModel":{...}}`).
//!
//! A connection carries any number of requests, answered in order. Most
//! requests produce exactly one response line; [`Request::Sweep`] streams:
//! one [`Response::SweepStarted`], then one [`Response::SweepPoint`] per
//! (model, width, geometry) entry *as each completes*, then one
//! [`Response::SweepFinished`]. Malformed input never drops the connection —
//! the server answers with a structured [`Response::Error`] and keeps
//! reading (mirroring the strict-parse behaviour of the experiment binaries'
//! option parsing: bad input is reported, not silently swallowed).

use std::fmt;
use std::io::{BufRead, Write};
use std::time::Duration;

use db_pim::{DseEntry, DseSpec, LatencyHistogram, SessionCacheStats, SweepEntry, SweepSpec};
use dbpim_arch::ArchConfig;
use dbpim_csd::OperandWidth;
use dbpim_nn::ModelKind;
use dbpim_sim::SparsityConfig;
use serde::{Deserialize, Serialize};

/// Version of the wire protocol; bumped on incompatible changes. The server
/// reports it in [`Response::Pong`] so clients can refuse to talk to a
/// daemon they do not understand.
///
/// v2 added the design-space-exploration stream ([`Request::Explore`],
/// [`Response::ExploreStarted`] / [`Response::ExplorePoint`] /
/// [`Response::ExploreFinished`]).
///
/// v3 added request deadlines (`deadline_ms` on [`Request::RunModel`] /
/// [`Request::Sweep`] / [`Request::Explore`], answered with
/// [`ErrorKind::DeadlineExceeded`] when exceeded), the fleet-orchestration
/// shard tag on `Explore` ([`ShardAnnotation`]) and the
/// [`Request::ShardStatus`] progress probe the `dbpim-fleet` driver and
/// `dbpim-cli shard-status` use to watch a sharded sweep.
///
/// v4 production-hardens the daemon: the shared-secret handshake
/// ([`Request::Auth`] / [`Response::AuthOk`], rejected with
/// [`ErrorKind::Unauthorized`]), admission control ([`ErrorKind::Overloaded`]
/// when the accept queue or a per-client cap is exceeded), bounded request
/// framing ([`ErrorKind::FrameTooLarge`] for frames above the daemon's
/// `--max-frame-bytes`), and the full observability snapshot
/// ([`Request::Stats`]) with per-request-type latency histograms, queue
/// depths and rejection counters.
///
/// v5 adds distributed tracing: an optional [`TraceContext`] on
/// [`Request::RunModel`] / [`Request::Sweep`] / [`Request::Explore`]
/// (omitted from the wire when absent, so context-free requests stay
/// byte-identical to v4), the [`Request::TraceSnapshot`] /
/// [`Request::MetricsSnapshot`] observability pulls answered with
/// [`Response::TraceSpans`] / [`Response::Metrics`], and a server
/// wall-clock timestamp on [`Response::Pong`] from which clients estimate
/// the clock offset to the daemon (the fleet driver uses it to align
/// remote spans onto its own timeline).
pub const PROTOCOL_VERSION: u32 = 5;

/// The distributed-tracing context a fleet driver (or any tracing client)
/// attaches to work requests, so the daemon's `serve.request` span records
/// *whose* work it executes: the remote span becomes a child of the
/// driver's `fleet.point` span in the merged trace.
///
/// Serialized omit-when-absent on the carrying requests: a `None` context
/// contributes no bytes, keeping context-free requests byte-identical to
/// protocol v4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The fleet run id (`FleetConfig::fleet_id`), shared by every span of
    /// one distributed run.
    pub fleet: String,
    /// Canonical identity of the work unit (a DSE point key such as
    /// `alexnet/int8/none/4m...`), identical on both sides of the wire.
    pub point: String,
    /// Span id of the caller's enclosing span (its process-unique
    /// `SpanRecord::id`); 0 when the caller traces without a live span.
    pub parent_span: u64,
}

/// One client request, one JSON line on the wire.
///
/// `Serialize` is hand-written (not derived) for one reason: the optional
/// `trace` field on the work-carrying variants must be *omitted* when
/// absent — the vendored derive would emit `"trace":null`, changing the
/// bytes of every v4-era request. Every other field reproduces the derive
/// encoding exactly (declaration order, externally tagged variants); the
/// round-trip tests below pin that equivalence.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Present the daemon's shared secret. On a daemon started with
    /// `--auth-token`, every request except `Ping` and `Auth` is answered
    /// with [`ErrorKind::Unauthorized`] until the connection authenticates;
    /// a *wrong* token additionally closes the connection. On an open
    /// daemon `Auth` is accepted (and answered with [`Response::AuthOk`])
    /// regardless of token, so clients can authenticate unconditionally.
    Auth {
        /// The shared secret.
        token: String,
    },
    /// The zoo models the daemon can serve.
    ListModels,
    /// Run the co-design flow for one model and return the result entry.
    RunModel {
        /// The zoo model to run.
        model: ModelKind,
        /// Restrict to one sparsity configuration; `None` runs all four
        /// Fig. 7 configurations (exactly what `Pipeline::run_model` does).
        sparsity: Option<SparsityConfig>,
        /// Weight operand width; `None` uses the daemon's configured width.
        width: Option<OperandWidth>,
        /// Geometry override; `None` uses the daemon's configured geometry.
        arch: Option<ArchConfig>,
        /// Evaluate accuracy fidelity (honoured only when the daemon was
        /// started with evaluation images and the width is INT8).
        fidelity: bool,
        /// Give up after this many milliseconds: an expired request is
        /// answered with [`ErrorKind::DeadlineExceeded`] instead of running
        /// to completion. `None` (and omitted on the wire) means no
        /// deadline.
        deadline_ms: Option<u64>,
        /// Distributed-tracing context; omitted from the wire when `None`.
        trace: Option<TraceContext>,
    },
    /// Run a full sweep; results stream incrementally.
    Sweep {
        /// The point set (models × sparsity × archs × widths).
        spec: SweepSpec,
        /// Evaluate accuracy fidelity per model where defined.
        fidelity: bool,
        /// Streaming deadline in milliseconds: the stream ends with a
        /// [`ErrorKind::DeadlineExceeded`] error once it expires (already
        /// streamed entries stand). `None` means no deadline.
        deadline_ms: Option<u64>,
        /// Distributed-tracing context; omitted from the wire when `None`.
        trace: Option<TraceContext>,
    },
    /// Run a design-space exploration; grid entries stream incrementally
    /// from the daemon's warm artifact cache.
    Explore {
        /// The exploration point set (geometry grid × models × sparsity ×
        /// widths). Oversized or infeasible grids are answered with a
        /// structured [`Response::Error`] before any point executes.
        /// (Boxed: the grid axes dwarf every other request variant.)
        spec: Box<DseSpec>,
        /// Streaming deadline in milliseconds (see [`Request::Sweep`]).
        deadline_ms: Option<u64>,
        /// Fleet-orchestration tag: when present, the daemon records the
        /// stream's progress under this shard so [`Request::ShardStatus`]
        /// can report it.
        shard: Option<ShardAnnotation>,
        /// Distributed-tracing context; omitted from the wire when `None`.
        trace: Option<TraceContext>,
    },
    /// Snapshot the daemon's request counters and warm-cache statistics.
    CacheStats,
    /// Snapshot the daemon's full observability surface: everything
    /// [`Request::CacheStats`] reports plus queue depths, rejection
    /// counters and per-request-type latency histograms. Both requests are
    /// answered with [`Response::Stats`]; `CacheStats` is kept for v3
    /// clients.
    Stats,
    /// Report the progress of every shard-tagged exploration this daemon
    /// has served (see [`ShardAnnotation`]); the fleet CLI polls this to
    /// watch a sharded sweep.
    ShardStatus,
    /// Drain the daemon's installed trace collector over the wire
    /// (answered with [`Response::TraceSpans`]): the spans recorded since
    /// the previous drain, the drop count and the clock anchor a merger
    /// needs. A daemon without a collector answers an empty snapshot.
    TraceSnapshot,
    /// Snapshot the daemon's full metrics registry — every counter, gauge
    /// and histogram by name — answered with [`Response::Metrics`]. Unlike
    /// [`Request::Stats`] this is the raw registry, the surface the
    /// Prometheus renderer consumes.
    MetricsSnapshot,
    /// Stop accepting connections and exit the daemon.
    Shutdown,
}

impl Request {
    /// The distributed-tracing context this request carries, if any.
    #[must_use]
    pub fn trace_context(&self) -> Option<&TraceContext> {
        match self {
            Request::RunModel { trace, .. }
            | Request::Sweep { trace, .. }
            | Request::Explore { trace, .. } => trace.as_ref(),
            _ => None,
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        // Mirrors the derive's externally-tagged encoding field-for-field
        // (declaration order), except that a `None` trace context is
        // omitted instead of serialized as `null` — see the type docs.
        let variant = |name: &str, fields: Vec<(String, Value)>| {
            Value::Map(vec![(name.to_string(), Value::Map(fields))])
        };
        let push_trace = |fields: &mut Vec<(String, Value)>, trace: &Option<TraceContext>| {
            if let Some(context) = trace {
                fields.push(("trace".to_string(), context.to_value()));
            }
        };
        match self {
            Request::Ping => Value::Str("Ping".to_string()),
            Request::Auth { token } => {
                variant("Auth", vec![("token".to_string(), token.to_value())])
            }
            Request::ListModels => Value::Str("ListModels".to_string()),
            Request::RunModel { model, sparsity, width, arch, fidelity, deadline_ms, trace } => {
                let mut fields = vec![
                    ("model".to_string(), model.to_value()),
                    ("sparsity".to_string(), sparsity.to_value()),
                    ("width".to_string(), width.to_value()),
                    ("arch".to_string(), arch.to_value()),
                    ("fidelity".to_string(), fidelity.to_value()),
                    ("deadline_ms".to_string(), deadline_ms.to_value()),
                ];
                push_trace(&mut fields, trace);
                variant("RunModel", fields)
            }
            Request::Sweep { spec, fidelity, deadline_ms, trace } => {
                let mut fields = vec![
                    ("spec".to_string(), spec.to_value()),
                    ("fidelity".to_string(), fidelity.to_value()),
                    ("deadline_ms".to_string(), deadline_ms.to_value()),
                ];
                push_trace(&mut fields, trace);
                variant("Sweep", fields)
            }
            Request::Explore { spec, deadline_ms, shard, trace } => {
                let mut fields = vec![
                    ("spec".to_string(), spec.to_value()),
                    ("deadline_ms".to_string(), deadline_ms.to_value()),
                    ("shard".to_string(), shard.to_value()),
                ];
                push_trace(&mut fields, trace);
                variant("Explore", fields)
            }
            Request::CacheStats => Value::Str("CacheStats".to_string()),
            Request::Stats => Value::Str("Stats".to_string()),
            Request::ShardStatus => Value::Str("ShardStatus".to_string()),
            Request::TraceSnapshot => Value::Str("TraceSnapshot".to_string()),
            Request::MetricsSnapshot => Value::Str("MetricsSnapshot".to_string()),
            Request::Shutdown => Value::Str("Shutdown".to_string()),
        }
    }
}

/// The fleet-orchestration tag a sharded exploration request carries so a
/// daemon can attribute streamed work to one shard of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAnnotation {
    /// Identifier of the fleet run (all shards of one `dbpim-fleet`
    /// invocation share it).
    pub fleet: String,
    /// The shard this work belongs to (`0..of`).
    pub shard: usize,
    /// Total shards of the fleet run.
    pub of: usize,
    /// Points the shard contains in total (the per-request grid may be a
    /// single point; completion accumulates across requests).
    pub points: usize,
}

/// Lifecycle of a shard as observed by one daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardState {
    /// Points are still being streamed (or were, when the fleet moved on).
    Running,
    /// Every point of the shard this daemon saw completed successfully.
    Finished,
    /// The most recent tagged request for the shard failed.
    Failed,
}

/// Progress of one shard on one daemon ([`Request::ShardStatus`]).
///
/// A daemon only sees the points dispatched *to it*, so under straggler
/// reassignment `completed_points` across daemons can sum to more than
/// `total_points` — the fleet driver's merge dedups; this is a monitoring
/// surface, not the source of truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// The fleet run the shard belongs to.
    pub fleet: String,
    /// The shard index (`0..of`).
    pub shard: usize,
    /// Total shards of the fleet run.
    pub of: usize,
    /// Points the shard contains in total.
    pub total_points: usize,
    /// Points this daemon has completed for the shard.
    pub completed_points: usize,
    /// Lifecycle state as last observed.
    pub state: ShardState,
    /// Unix-epoch milliseconds of the last progress update.
    pub updated_at_ms: u64,
}

/// What went wrong with a request, coarsely classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a known request shape.
    BadRequest,
    /// The request was well-formed but the pipeline rejected or failed it.
    Pipeline,
    /// The request carried a `deadline_ms` and exceeded it before (or
    /// while) producing its results.
    DeadlineExceeded,
    /// The daemon requires authentication ([`Request::Auth`]) and the
    /// connection has not presented the correct token.
    Unauthorized,
    /// Admission control rejected the connection or request: the accept
    /// queue is at capacity or the client is over its per-client
    /// connection cap. Back off and retry.
    Overloaded,
    /// The request line exceeded the daemon's maximum frame size; the
    /// connection is closed after this answer.
    FrameTooLarge,
}

/// A structured error answer; malformed or failing requests receive this
/// instead of a dropped connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Coarse classification.
    pub kind: ErrorKind,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ErrorResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ErrorKind::BadRequest => "bad request",
            ErrorKind::Pipeline => "pipeline error",
            ErrorKind::DeadlineExceeded => "deadline exceeded",
            ErrorKind::Unauthorized => "unauthorized",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::FrameTooLarge => "frame too large",
        };
        write!(f, "{kind}: {}", self.message)
    }
}

/// Latency distribution of one request type ([`ServerStats::latency`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestLatency {
    /// The request variant name (`"Ping"`, `"RunModel"`, …).
    pub request: String,
    /// Handling-time distribution (request parsed → response written).
    pub histogram: LatencyHistogram,
}

/// Daemon-side request counters, admission gauges, latency histograms and
/// cache statistics ([`Request::Stats`] / [`Request::CacheStats`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests processed (including ones answered with an error).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub errors: u64,
    /// Connections accepted since start-up.
    pub connections: u64,
    /// Time since the daemon started.
    pub uptime: Duration,
    /// Warm-cache counters aggregated across every per-width session.
    pub cache: SessionCacheStats,
    /// Connections currently being served by a worker.
    pub active_connections: u64,
    /// Accepted connections waiting for a free worker.
    pub queued_connections: u64,
    /// Connections rejected by admission control
    /// ([`ErrorKind::Overloaded`]).
    pub rejected_overloaded: u64,
    /// Requests rejected for missing or wrong credentials
    /// ([`ErrorKind::Unauthorized`]).
    pub rejected_unauthorized: u64,
    /// Frames rejected for exceeding the size limit
    /// ([`ErrorKind::FrameTooLarge`]).
    pub rejected_frames: u64,
    /// Per-request-type handling-latency histograms; request types the
    /// daemon has not served yet are omitted.
    pub latency: Vec<RequestLatency>,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's wire-protocol version.
        version: u32,
        /// The server's wall clock when it handled the ping, as unix time
        /// in microseconds. A client that timestamps the request/response
        /// pair estimates its clock offset to the daemon from this
        /// (NTP-style: `server − (send + receive)/2`); the fleet's merged
        /// trace uses that offset to align remote spans.
        server_time_micros: Option<u64>,
    },
    /// Answer to a successful [`Request::Auth`].
    AuthOk,
    /// Answer to [`Request::ListModels`].
    Models {
        /// The servable zoo models, in canonical figure order.
        models: Vec<ModelKind>,
    },
    /// Answer to [`Request::RunModel`].
    RunResult {
        /// The computed (model, width, geometry) entry.
        entry: SweepEntry,
    },
    /// First line of a sweep stream: how many entries will follow.
    SweepStarted {
        /// Number of (model, width, geometry) entries the sweep produces.
        entries: usize,
    },
    /// One completed sweep entry (streamed as soon as it is computed).
    SweepPoint {
        /// Position of this entry in the sweep's deterministic order.
        index: usize,
        /// The computed entry.
        entry: SweepEntry,
    },
    /// Last line of a sweep stream: the report-level counters, mirroring
    /// `SweepReport`'s fields so the client can reassemble one.
    SweepFinished {
        /// Distinct (model, width) artifact sets the sweep drew from.
        prepared_models: usize,
        /// Simulation runs the sweep covers.
        simulated_runs: usize,
        /// Server-side wall-clock duration of the sweep.
        wall_time: Duration,
    },
    /// First line of an exploration stream: how many grid points will
    /// follow.
    ExploreStarted {
        /// Number of (model, width, geometry) points the spec enumerates.
        total_points: usize,
    },
    /// One completed exploration point (streamed as soon as it is
    /// computed, in the spec's canonical point order).
    ExplorePoint {
        /// Position of this point in the spec's canonical order.
        index: usize,
        /// The computed entry (timestamped server-side).
        entry: DseEntry,
    },
    /// Last line of an exploration stream.
    ExploreFinished {
        /// Points the stream covered.
        total_points: usize,
        /// Server-side wall-clock duration of the exploration.
        wall_time: Duration,
    },
    /// Answer to [`Request::Stats`] and [`Request::CacheStats`].
    Stats {
        /// The counters snapshot.
        stats: ServerStats,
    },
    /// Answer to [`Request::ShardStatus`]: every shard-tagged exploration
    /// this daemon has served, most recently updated first.
    ShardStatuses {
        /// The progress snapshot.
        shards: Vec<ShardStatus>,
    },
    /// Answer to [`Request::TraceSnapshot`]: the daemon's drained span
    /// collector (empty when no collector is installed).
    TraceSpans {
        /// The drained spans plus the clock anchor and drop accounting.
        snapshot: dbpim_trace::CollectorSnapshot,
    },
    /// Answer to [`Request::MetricsSnapshot`]: the daemon's full metrics
    /// registry.
    Metrics {
        /// Every counter, gauge and histogram by name.
        metrics: dbpim_trace::MetricsSnapshot,
    },
    /// Answer to [`Request::Shutdown`]; the daemon exits after sending it.
    ShuttingDown,
    /// A structured failure answer (malformed request, pipeline failure).
    Error {
        /// The error payload.
        error: ErrorResponse,
    },
}

/// A framing-layer failure while reading a message.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// A line arrived but did not parse as the expected message type.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Serializes `message` as one JSON line and flushes it.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_message<T: Serialize>(writer: &mut impl Write, message: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(message)
        .map_err(|e| std::io::Error::other(format!("serialize message: {e}")))?;
    writer.write_all(json.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads one JSON line and parses it as `T`. Returns `Ok(None)` on a clean
/// end of stream.
///
/// # Errors
///
/// Returns [`WireError::Io`] on stream failures and [`WireError::Malformed`]
/// when the line is not valid JSON for `T` (including a truncated final line
/// with no newline).
pub fn read_message<T: Deserialize>(reader: &mut impl BufRead) -> Result<Option<T>, WireError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    match serde_json::from_str(line.trim_end_matches(['\r', '\n'])) {
        Ok(message) => Ok(Some(message)),
        Err(e) => Err(WireError::Malformed(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(message: &T) {
        let json = serde_json::to_string(message).expect("serializes");
        assert!(!json.contains('\n'), "one line on the wire: {json}");
        let back: T = serde_json::from_str(&json).expect("parses");
        assert_eq!(&back, message, "wire round-trip changed the message");
    }

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        round_trip(&Request::Ping);
        round_trip(&Request::Auth { token: "fleet-secret-42".to_string() });
        round_trip(&Request::ListModels);
        round_trip(&Request::CacheStats);
        round_trip(&Request::Stats);
        round_trip(&Request::Shutdown);
        round_trip(&Request::ShardStatus);
        round_trip(&Request::TraceSnapshot);
        round_trip(&Request::MetricsSnapshot);
        round_trip(&Request::RunModel {
            model: ModelKind::AlexNet,
            sparsity: Some(SparsityConfig::HybridSparsity),
            width: Some(OperandWidth::Int4),
            arch: Some(ArchConfig::paper()),
            fidelity: true,
            deadline_ms: Some(2_500),
            trace: None,
        });
        round_trip(&Request::RunModel {
            model: ModelKind::EfficientNetB0,
            sparsity: None,
            width: None,
            arch: None,
            fidelity: false,
            deadline_ms: None,
            trace: Some(TraceContext {
                fleet: "fleet-20260808".to_string(),
                point: "efficientnet-b0/int8".to_string(),
                parent_span: 42,
            }),
        });
        round_trip(&Request::Sweep {
            spec: SweepSpec::zoo().with_widths(vec![OperandWidth::Int4, OperandWidth::Int16]),
            fidelity: true,
            deadline_ms: Some(60_000),
            trace: None,
        });
        round_trip(&Request::Explore {
            spec: Box::new(
                DseSpec::new(
                    dbpim_sim::ArchGrid::around(ArchConfig::paper())
                        .with_macros(vec![2, 4, 8])
                        .with_frequencies(vec![250.0, 500.0]),
                    vec![ModelKind::AlexNet, ModelKind::MobileNetV2],
                )
                .with_widths(vec![OperandWidth::Int4])
                .with_fidelity(),
            ),
            deadline_ms: None,
            shard: Some(ShardAnnotation {
                fleet: "fleet-20260731".to_string(),
                shard: 1,
                of: 4,
                points: 12,
            }),
            trace: Some(TraceContext {
                fleet: "fleet-20260731".to_string(),
                point: "alexnet/int4/4m".to_string(),
                parent_span: 0,
            }),
        });
    }

    #[test]
    fn context_free_requests_stay_byte_identical_to_v4() {
        // The hand-written Serialize must reproduce the v4 derive output
        // exactly when no trace context rides along — the exact byte
        // strings a v4 driver put on the wire.
        let run = Request::RunModel {
            model: ModelKind::AlexNet,
            sparsity: None,
            width: None,
            arch: None,
            fidelity: false,
            deadline_ms: None,
            trace: None,
        };
        assert_eq!(
            serde_json::to_string(&run).unwrap(),
            "{\"RunModel\":{\"model\":\"AlexNet\",\"sparsity\":null,\"width\":null,\
             \"arch\":null,\"fidelity\":false,\"deadline_ms\":null}}"
        );
        let sweep = Request::Sweep {
            spec: SweepSpec::new(vec![ModelKind::AlexNet]),
            fidelity: false,
            deadline_ms: None,
            trace: None,
        };
        let sweep_json = serde_json::to_string(&sweep).unwrap();
        assert!(!sweep_json.contains("trace"), "{sweep_json}");
        assert!(sweep_json.ends_with("\"fidelity\":false,\"deadline_ms\":null}}"), "{sweep_json}");
        let explore = Request::Explore {
            spec: Box::new(DseSpec::new(
                dbpim_sim::ArchGrid::around(ArchConfig::paper()),
                vec![ModelKind::AlexNet],
            )),
            deadline_ms: Some(5),
            shard: None,
            trace: None,
        };
        let explore_json = serde_json::to_string(&explore).unwrap();
        assert!(!explore_json.contains("trace"), "{explore_json}");
        assert!(explore_json.ends_with("\"deadline_ms\":5,\"shard\":null}}"), "{explore_json}");

        // With a context, `trace` is appended as the last field and round
        // trips; without one, parsing v4 bytes yields `trace: None` (see
        // `missing_optional_fields_default_to_none`).
        let traced = Request::Explore {
            spec: match &explore {
                Request::Explore { spec, .. } => spec.clone(),
                _ => unreachable!(),
            },
            deadline_ms: Some(5),
            shard: None,
            trace: Some(TraceContext {
                fleet: "fleet-x".to_string(),
                point: "alexnet/int8".to_string(),
                parent_span: 9,
            }),
        };
        let traced_json = serde_json::to_string(&traced).unwrap();
        assert!(
            traced_json.ends_with(
                "\"trace\":{\"fleet\":\"fleet-x\",\"point\":\"alexnet/int8\",\
                 \"parent_span\":9}}}"
            ),
            "{traced_json}"
        );
    }

    #[test]
    fn responses_round_trip_through_the_wire_encoding() {
        round_trip(&Response::Pong {
            version: PROTOCOL_VERSION,
            server_time_micros: Some(1_750_000_000_000_000),
        });
        round_trip(&Response::Pong { version: PROTOCOL_VERSION, server_time_micros: None });
        round_trip(&Response::TraceSpans {
            snapshot: dbpim_trace::CollectorSnapshot {
                epoch_unix_micros: 1_750_000_000_000_000,
                pid: 4242,
                dropped: 3,
                spans: vec![dbpim_trace::TraceSpan {
                    id: 17,
                    name: "serve.request".to_string(),
                    thread: 2,
                    depth: 0,
                    start_micros: 1_000,
                    duration_micros: 250,
                    args: vec![("kind".to_string(), "Explore".to_string())],
                }],
            },
        });
        round_trip(&Response::Metrics {
            metrics: {
                let registry = dbpim_trace::MetricsRegistry::new();
                registry.add("serve.requests", 9);
                registry.set_gauge("serve.active-connections", 1);
                registry.observe_micros("serve.latency.Ping", 120);
                registry.snapshot()
            },
        });
        round_trip(&Response::Models { models: ModelKind::all().to_vec() });
        round_trip(&Response::SweepStarted { entries: 20 });
        round_trip(&Response::SweepFinished {
            prepared_models: 5,
            simulated_runs: 20,
            wall_time: Duration::from_millis(1234),
        });
        round_trip(&Response::ExploreStarted { total_points: 48 });
        round_trip(&Response::ExploreFinished {
            total_points: 48,
            wall_time: Duration::from_secs(7),
        });
        round_trip(&Response::ShuttingDown);
        round_trip(&Response::Error {
            error: ErrorResponse {
                kind: ErrorKind::BadRequest,
                message: "expected `,` or `}` at byte 7".to_string(),
            },
        });
        round_trip(&Response::Error {
            error: ErrorResponse {
                kind: ErrorKind::DeadlineExceeded,
                message: "sweep exceeded its 100 ms deadline after 3 entries".to_string(),
            },
        });
        round_trip(&Response::ShardStatuses {
            shards: vec![ShardStatus {
                fleet: "fleet-20260731".to_string(),
                shard: 0,
                of: 2,
                total_points: 24,
                completed_points: 7,
                state: ShardState::Running,
                updated_at_ms: 1_750_000_000_000,
            }],
        });
        round_trip(&Response::AuthOk);
        round_trip(&Response::Error {
            error: ErrorResponse {
                kind: ErrorKind::Unauthorized,
                message: "this daemon requires an auth token".to_string(),
            },
        });
        round_trip(&Response::Error {
            error: ErrorResponse {
                kind: ErrorKind::Overloaded,
                message: "accept queue full (64 pending)".to_string(),
            },
        });
        round_trip(&Response::Error {
            error: ErrorResponse {
                kind: ErrorKind::FrameTooLarge,
                message: "frame exceeds 1048576 bytes".to_string(),
            },
        });
        let mut ping_latency = LatencyHistogram::new();
        ping_latency.record(Duration::from_micros(180));
        round_trip(&Response::Stats {
            stats: ServerStats {
                requests: 42,
                errors: 2,
                connections: 7,
                uptime: Duration::from_secs(3600),
                cache: SessionCacheStats {
                    artifact_hits: 40,
                    artifact_misses: 2,
                    program_hits: 38,
                    program_misses: 4,
                    resident_artifacts: 2,
                    artifact_evictions: 1,
                },
                active_connections: 3,
                queued_connections: 1,
                rejected_overloaded: 5,
                rejected_unauthorized: 2,
                rejected_frames: 1,
                latency: vec![RequestLatency {
                    request: "Ping".to_string(),
                    histogram: ping_latency,
                }],
            },
        });
    }

    #[test]
    fn unit_variants_use_the_compact_string_encoding() {
        assert_eq!(serde_json::to_string(&Request::Ping).unwrap(), "\"Ping\"");
        assert_eq!(serde_json::to_string(&Request::Stats).unwrap(), "\"Stats\"");
        assert_eq!(serde_json::to_string(&Request::TraceSnapshot).unwrap(), "\"TraceSnapshot\"");
        assert_eq!(
            serde_json::to_string(&Request::MetricsSnapshot).unwrap(),
            "\"MetricsSnapshot\""
        );
        assert_eq!(serde_json::to_string(&Request::Shutdown).unwrap(), "\"Shutdown\"");
        assert_eq!(serde_json::to_string(&Response::AuthOk).unwrap(), "\"AuthOk\"");
        assert_eq!(serde_json::to_string(&Response::ShuttingDown).unwrap(), "\"ShuttingDown\"");
    }

    #[test]
    fn missing_optional_fields_default_to_none() {
        // A v1/v2 client's RunModel (no deadline field) still parses.
        let request: Request =
            serde_json::from_str("{\"RunModel\":{\"model\":\"AlexNet\",\"fidelity\":false}}")
                .expect("optional fields may be omitted");
        assert_eq!(
            request,
            Request::RunModel {
                model: ModelKind::AlexNet,
                sparsity: None,
                width: None,
                arch: None,
                fidelity: false,
                deadline_ms: None,
                trace: None,
            }
        );
        // A v2 client's Explore (no deadline, no shard tag) still parses.
        let spec = DseSpec::new(
            dbpim_sim::ArchGrid::around(ArchConfig::paper()),
            vec![ModelKind::AlexNet],
        );
        let v2 = format!("{{\"Explore\":{{\"spec\":{}}}}}", serde_json::to_string(&spec).unwrap());
        let request: Request = serde_json::from_str(&v2).expect("v2 Explore still parses");
        assert_eq!(
            request,
            Request::Explore { spec: Box::new(spec), deadline_ms: None, shard: None, trace: None }
        );
        // A v4 Pong (no server timestamp) still parses.
        let pong: Response =
            serde_json::from_str("{\"Pong\":{\"version\":4}}").expect("v4 Pong still parses");
        assert_eq!(pong, Response::Pong { version: 4, server_time_micros: None });
    }

    #[test]
    fn framing_reads_lines_and_reports_eof() {
        let mut buffer = Vec::new();
        write_message(&mut buffer, &Request::Ping).unwrap();
        write_message(&mut buffer, &Request::ListModels).unwrap();
        let mut reader = std::io::BufReader::new(buffer.as_slice());
        assert_eq!(read_message::<Request>(&mut reader).unwrap(), Some(Request::Ping));
        assert_eq!(read_message::<Request>(&mut reader).unwrap(), Some(Request::ListModels));
        assert_eq!(read_message::<Request>(&mut reader).unwrap(), None);
    }

    #[test]
    fn framing_rejects_garbage_without_panicking() {
        let mut reader = std::io::BufReader::new("this is not json\n".as_bytes());
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
        // A truncated line (no trailing newline) still parses if complete…
        let mut reader = std::io::BufReader::new("\"Ping\"".as_bytes());
        assert_eq!(read_message::<Request>(&mut reader).unwrap(), Some(Request::Ping));
        // …and reports malformed if cut mid-value.
        let mut reader = std::io::BufReader::new("{\"RunModel\":{\"mo".as_bytes());
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }
}
