//! The sweep-serving daemon.
//!
//! A [`Server`] owns one [`BatchRunner`] — and through it one warm
//! [`db_pim::SimSession`] artifact cache per operand width — and serves the
//! [`protocol`](crate::protocol) over TCP. Connections are dispatched to a
//! fixed worker pool; every worker answers requests against the *same*
//! shared session caches, so N clients asking for the same (model, width)
//! trigger exactly one artifact preparation (the session layer's
//! single-flight guarantee) and every later request is served warm.
//!
//! Sweeps stream: each (model, width, geometry) entry is written to the
//! client as soon as it is computed, so a long sweep delivers its first
//! results while the rest are still simulating.
//!
//! The daemon is production-hardened along three axes:
//!
//! * **Admission control** — the acceptor rejects (with a structured
//!   [`ErrorKind::Overloaded`] answer) rather than queues once every worker
//!   is busy and the pending backlog reaches
//!   [`ServeConfig::max_pending_connections`], or when one client IP
//!   exceeds [`ServeConfig::max_connections_per_client`]. Load shedding at
//!   the door keeps tail latency bounded instead of letting the queue grow
//!   without bound.
//! * **Auth** — with [`ServeConfig::auth_token`] set, connections must
//!   present the shared secret ([`Request::Auth`]) before anything but
//!   `Ping`; wrong tokens are answered [`ErrorKind::Unauthorized`] and
//!   disconnected.
//! * **Bounded framing** — request lines are read through a byte-level
//!   frame reader that enforces [`ServeConfig::max_frame_bytes`]
//!   ([`ErrorKind::FrameTooLarge`] + close instead of unbounded
//!   accumulation) and keeps partial frames deterministically attached to
//!   the frame they belong to across read timeouts.
//!
//! Every request type's handling latency is recorded into a
//! log₂ [`LatencyHistogram`] and exposed — together with queue depths and
//! rejection counters — through [`Request::Stats`].

use std::collections::HashMap;
use std::io::Read;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use db_pim::{BatchRunner, PipelineConfig, PipelineError};
use dbpim_nn::ModelKind;
use dbpim_sim::SparsityConfig;
use dbpim_trace::{log_debug, log_info, log_warn, ChromeTrace, MetricsRegistry, TraceCollector};

use crate::protocol::{
    write_message, ErrorKind, ErrorResponse, Request, RequestLatency, Response, ServerStats,
    ShardAnnotation, ShardState, ShardStatus, PROTOCOL_VERSION,
};

/// Upper bound on distinct shards the progress registry remembers; beyond
/// it the stalest entry is dropped — the registry is a monitoring surface,
/// not the fleet's source of truth, so bounded forgetting beats unbounded
/// growth in a long-lived daemon.
const MAX_TRACKED_SHARDS: usize = 256;

/// Request variant names, in the order the latency registry indexes them
/// (see [`request_type_index`]).
const REQUEST_TYPES: [&str; 12] = [
    "Ping",
    "Auth",
    "ListModels",
    "RunModel",
    "Sweep",
    "Explore",
    "CacheStats",
    "Stats",
    "ShardStatus",
    "TraceSnapshot",
    "MetricsSnapshot",
    "Shutdown",
];

/// Registry names of the daemon's counters and gauges. The `Stats`
/// response is assembled *from* a [`MetricsRegistry`] snapshot under these
/// names, so the wire numbers and the registry can never disagree.
const M_REQUESTS: &str = "serve.requests";
const M_ERRORS: &str = "serve.errors";
const M_CONNECTIONS: &str = "serve.connections";
const M_REJECTED_OVERLOADED: &str = "serve.rejected_overloaded";
const M_REJECTED_UNAUTHORIZED: &str = "serve.rejected_unauthorized";
const M_REJECTED_FRAMES: &str = "serve.rejected_frames";
const G_ACTIVE: &str = "serve.active_connections";
const G_QUEUED: &str = "serve.queued_connections";

/// The registry histogram name of one request variant's handling latency.
fn latency_metric(request_type: &str) -> String {
    format!("serve.latency.{request_type}")
}

/// The latency-registry slot of one request variant.
fn request_type_index(request: &Request) -> usize {
    match request {
        Request::Ping => 0,
        Request::Auth { .. } => 1,
        Request::ListModels => 2,
        Request::RunModel { .. } => 3,
        Request::Sweep { .. } => 4,
        Request::Explore { .. } => 5,
        Request::CacheStats => 6,
        Request::Stats => 7,
        Request::ShardStatus => 8,
        Request::TraceSnapshot => 9,
        Request::MetricsSnapshot => 10,
        Request::Shutdown => 11,
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// Every critical section guarded this way leaves its state consistent at
/// all exit points (counters bumped, entries pushed — no multi-step
/// invariants), so a handler that panicked while holding the lock must not
/// cascade that panic into every later request via [`PoisonError`].
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A server-side request deadline, armed from a request's `deadline_ms`.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    expires: Option<Instant>,
}

impl Deadline {
    fn new(deadline_ms: Option<u64>) -> Self {
        Self {
            expires: deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms.min(u64::from(u32::MAX)))),
        }
    }

    fn expired(&self) -> bool {
        self.expires.is_some_and(|at| Instant::now() >= at)
    }

    fn error(context: &str) -> Response {
        error_response(ErrorKind::DeadlineExceeded, format!("{context} exceeded its deadline"))
    }
}

/// Builds a structured [`Response::Error`].
fn error_response(kind: ErrorKind, message: String) -> Response {
    Response::Error { error: ErrorResponse { kind, message } }
}

/// Configuration of a serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (e.g. `"127.0.0.1:7531"`; port `0` picks a free one).
    pub addr: String,
    /// Worker threads answering requests (each handles one connection at a
    /// time).
    pub threads: usize,
    /// How often an idle connection wakes up to check for daemon shutdown.
    /// This is *not* an idle-disconnect limit — a quiet client stays
    /// connected indefinitely.
    pub poll_interval: Duration,
    /// The pipeline configuration every session is derived from.
    pub pipeline: PipelineConfig,
    /// LRU cap on resident prepared models per per-width session cache
    /// (`None` = unbounded, the historical behaviour). Evictions are
    /// counted in the `CacheStats` response.
    pub cache_cap: Option<usize>,
    /// Shared secret clients must present via [`Request::Auth`] before any
    /// request other than `Ping`; `None` serves everyone (the historical
    /// behaviour).
    pub auth_token: Option<String>,
    /// Maximum request-line size in bytes; longer frames are answered with
    /// [`ErrorKind::FrameTooLarge`] and the connection is closed.
    pub max_frame_bytes: usize,
    /// Admission-control backlog bound: once every worker is busy, at most
    /// this many further connections are queued — beyond it new
    /// connections are rejected with [`ErrorKind::Overloaded`].
    pub max_pending_connections: usize,
    /// Per-client cap on simultaneously open connections (keyed by peer
    /// IP); connections beyond it are rejected with
    /// [`ErrorKind::Overloaded`]. `None` means no per-client cap.
    pub max_connections_per_client: Option<usize>,
    /// The metrics registry the daemon's observability counters live in.
    /// `None` creates a private registry; injecting one lets an embedding
    /// process (or a test) read the same numbers the `Stats` response
    /// reports.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// When set, the daemon installs a process-global trace collector and
    /// dumps a Chrome trace-event JSON file into this directory every
    /// [`Self::trace_every`] requests.
    pub trace_dir: Option<PathBuf>,
    /// How many requests each `trace_dir` dump covers.
    pub trace_every: u64,
    /// When set (and `trace_dir` is not), the daemon installs a
    /// process-global trace collector bounded to this many spans *without*
    /// periodic file dumping — the buffer is held for remote collection
    /// via [`Request::TraceSnapshot`], which drains it over the wire.
    pub trace_buffer: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7531".to_string(),
            threads: 4,
            poll_interval: Duration::from_millis(200),
            pipeline: PipelineConfig::paper(),
            cache_cap: None,
            auth_token: None,
            max_frame_bytes: ServeConfig::DEFAULT_MAX_FRAME_BYTES,
            max_pending_connections: ServeConfig::DEFAULT_MAX_PENDING,
            max_connections_per_client: None,
            metrics: None,
            trace_dir: None,
            trace_every: ServeConfig::DEFAULT_TRACE_EVERY,
            trace_buffer: None,
        }
    }
}

impl ServeConfig {
    /// Default [`Self::max_frame_bytes`]: 1 MiB comfortably fits the
    /// largest legitimate request (a dense exploration grid) with two
    /// orders of magnitude to spare.
    pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;
    /// Default [`Self::max_pending_connections`].
    pub const DEFAULT_MAX_PENDING: usize = 64;
    /// Default [`Self::trace_every`].
    pub const DEFAULT_TRACE_EVERY: u64 = 64;
}

/// A serving failure.
#[derive(Debug)]
pub enum ServeError {
    /// Socket set-up or accept failure.
    Io(std::io::Error),
    /// The pipeline configuration was rejected.
    Pipeline(PipelineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

/// The per-request trace dump configured by [`ServeConfig::trace_dir`].
struct TraceDump {
    dir: PathBuf,
    every: u64,
    collector: Arc<TraceCollector>,
}

/// State shared by the acceptor and every worker.
struct Shared {
    runner: BatchRunner,
    local_addr: SocketAddr,
    poll_interval: Duration,
    threads: usize,
    auth_token: Option<String>,
    max_frame_bytes: usize,
    max_pending: usize,
    max_per_client: Option<usize>,
    shutdown: AtomicBool,
    /// Counters, gauges and per-request-type latency histograms. The
    /// `Stats` wire response is a projection of this registry.
    metrics: Arc<MetricsRegistry>,
    /// Periodic Chrome-trace dumping, when configured.
    trace: Option<TraceDump>,
    started: Instant,
    /// Open-connection counts per peer IP (maintained only when
    /// `max_per_client` is set).
    per_client: Mutex<HashMap<IpAddr, usize>>,
    /// Progress of shard-tagged explorations, keyed by (fleet, shard).
    shards: Mutex<Vec<ShardStatus>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let snapshot = self.metrics.snapshot();
        let gauge = |name: &str| u64::try_from(snapshot.gauge(name)).unwrap_or(0);
        let latency = REQUEST_TYPES
            .iter()
            .filter_map(|name| {
                snapshot.histogram(&latency_metric(name)).map(|histogram| RequestLatency {
                    request: (*name).to_string(),
                    histogram: histogram.clone(),
                })
            })
            .collect();
        ServerStats {
            requests: snapshot.counter(M_REQUESTS),
            errors: snapshot.counter(M_ERRORS),
            connections: snapshot.counter(M_CONNECTIONS),
            uptime: self.started.elapsed(),
            cache: self.runner.cache_stats(),
            active_connections: gauge(G_ACTIVE),
            queued_connections: gauge(G_QUEUED),
            rejected_overloaded: snapshot.counter(M_REJECTED_OVERLOADED),
            rejected_unauthorized: snapshot.counter(M_REJECTED_UNAUTHORIZED),
            rejected_frames: snapshot.counter(M_REJECTED_FRAMES),
            latency,
        }
    }

    /// Records one request's handling time into its per-type histogram.
    fn record_latency(&self, type_index: usize, elapsed: Duration) {
        self.metrics.observe(&latency_metric(REQUEST_TYPES[type_index]), elapsed);
    }

    /// Counts one served request and, when periodic trace dumping is
    /// configured, writes a Chrome trace file every N-th request.
    fn count_request(&self) {
        let served = self.metrics.incr(M_REQUESTS);
        let Some(dump) = &self.trace else { return };
        if !served.is_multiple_of(dump.every.max(1)) {
            return;
        }
        let spans = dump.collector.snapshot();
        dump.collector.clear();
        if spans.is_empty() {
            return;
        }
        let path = dump.dir.join(format!("trace-{served}.json"));
        match std::fs::write(&path, ChromeTrace::render(&spans)) {
            Ok(()) => log_info!(
                "serve",
                "dumped {} spans covering {} requests to {}",
                spans.len(),
                dump.every,
                path.display()
            ),
            Err(e) => log_warn!("serve", "trace dump to {} failed: {e}", path.display()),
        }
    }

    /// Admission: `true` when the backlog still has room — every worker
    /// busy *and* a full pending queue means reject, not wait.
    fn queue_admits(&self) -> bool {
        let active = usize::try_from(self.metrics.gauge(G_ACTIVE)).unwrap_or(0);
        let queued = usize::try_from(self.metrics.gauge(G_QUEUED)).unwrap_or(0);
        active < self.threads || queued < self.max_pending
    }

    /// Admission: registers one connection from `ip` against the
    /// per-client cap; `false` means the client is over its cap and
    /// nothing was registered.
    fn try_admit_client(&self, ip: Option<IpAddr>) -> bool {
        let (Some(cap), Some(ip)) = (self.max_per_client, ip) else {
            return true;
        };
        let mut per_client = lock_unpoisoned(&self.per_client);
        let count = per_client.entry(ip).or_insert(0);
        if *count >= cap {
            return false;
        }
        *count += 1;
        true
    }

    /// Releases one [`Self::try_admit_client`] registration.
    fn release_client(&self, ip: Option<IpAddr>) {
        let (Some(_), Some(ip)) = (self.max_per_client, ip) else {
            return;
        };
        let mut per_client = lock_unpoisoned(&self.per_client);
        if let Some(count) = per_client.get_mut(&ip) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                per_client.remove(&ip);
            }
        }
    }

    /// Records shard progress: `completed_delta` freshly finished points
    /// and a lifecycle observation. A non-failed shard auto-promotes to
    /// `Finished` once its completed count reaches its total.
    fn shard_touch(&self, tag: &ShardAnnotation, completed_delta: usize, state: ShardState) {
        let now = db_pim::dse::unix_time_ms();
        let mut shards = lock_unpoisoned(&self.shards);
        let entry = match shards.iter_mut().find(|s| s.fleet == tag.fleet && s.shard == tag.shard) {
            Some(entry) => entry,
            None => {
                if shards.len() >= MAX_TRACKED_SHARDS {
                    if let Some(stalest) = shards
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.updated_at_ms)
                        .map(|(i, _)| i)
                    {
                        shards.remove(stalest);
                    }
                }
                shards.push(ShardStatus {
                    fleet: tag.fleet.clone(),
                    shard: tag.shard,
                    of: tag.of,
                    total_points: tag.points,
                    completed_points: 0,
                    state: ShardState::Running,
                    updated_at_ms: now,
                });
                shards.last_mut().expect("just pushed")
            }
        };
        entry.of = tag.of;
        entry.total_points = entry.total_points.max(tag.points);
        entry.completed_points += completed_delta;
        entry.state = match state {
            ShardState::Failed => ShardState::Failed,
            _ if entry.completed_points >= entry.total_points => ShardState::Finished,
            other => other,
        };
        entry.updated_at_ms = now;
        log_debug!(
            "serve",
            "shard {}/{} of fleet {}: {}/{} points",
            entry.shard,
            entry.of,
            entry.fleet,
            entry.completed_points,
            entry.total_points
        );
    }

    /// The registry snapshot, most recently updated first (stable for
    /// equal timestamps).
    fn shard_statuses(&self) -> Vec<ShardStatus> {
        let mut shards = lock_unpoisoned(&self.shards).clone();
        shards.sort_by_key(|s| std::cmp::Reverse(s.updated_at_ms));
        shards
    }

    /// Flags shutdown and wakes the blocked acceptor with a dummy
    /// connection.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A bound (not yet running) sweep-serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and builds the warm-cache session state.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Pipeline`] for an unusable pipeline
    /// configuration and [`ServeError::Io`] when the socket cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Self, ServeError> {
        let runner = BatchRunner::new(config.pipeline)?.with_cache_cap(config.cache_cap);
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::other(format!("unresolvable address {}", config.addr))
            })?)?;
        let local_addr = listener.local_addr()?;
        let trace = match config.trace_dir {
            Some(dir) => {
                std::fs::create_dir_all(&dir)?;
                let collector = Arc::new(TraceCollector::new());
                dbpim_trace::install(Arc::clone(&collector));
                Some(TraceDump { dir, every: config.trace_every.max(1), collector })
            }
            None => {
                if let Some(capacity) = config.trace_buffer {
                    // Buffer-only mode: spans accumulate in the bounded ring
                    // until a TraceSnapshot request drains them over the
                    // wire; no file ever hits disk.
                    dbpim_trace::install(Arc::new(TraceCollector::with_capacity(capacity)));
                }
                None
            }
        };
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                runner,
                local_addr,
                poll_interval: config.poll_interval,
                threads: config.threads.max(1),
                auth_token: config.auth_token,
                max_frame_bytes: config.max_frame_bytes.max(1),
                max_pending: config.max_pending_connections,
                max_per_client: config.max_connections_per_client,
                shutdown: AtomicBool::new(false),
                metrics: config.metrics.unwrap_or_default(),
                trace,
                started: Instant::now(),
                per_client: Mutex::new(HashMap::new()),
                shards: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The address the daemon is listening on (useful with port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves connections until a [`Request::Shutdown`] arrives, then joins
    /// the worker pool and returns.
    ///
    /// # Errors
    ///
    /// Propagates acceptor I/O failures (individual connection failures are
    /// answered on the connection and never abort the daemon).
    pub fn run(self) -> std::io::Result<()> {
        let (sender, receiver) = mpsc::channel::<(TcpStream, Option<IpAddr>)>();
        let receiver = Arc::new(Mutex::new(receiver));
        let threads = self.shared.threads;
        let mut workers = Vec::with_capacity(threads);
        for worker in 0..threads {
            let receiver = Arc::clone(&receiver);
            let shared = Arc::clone(&self.shared);
            workers.push(
                std::thread::Builder::new().name(format!("dbpim-serve-worker-{worker}")).spawn(
                    move || loop {
                        let next = {
                            let guard = lock_unpoisoned(&receiver);
                            guard.recv()
                        };
                        match next {
                            Ok((stream, ip)) => {
                                shared.metrics.adjust_gauge(G_QUEUED, -1);
                                shared.metrics.adjust_gauge(G_ACTIVE, 1);
                                // A panicking handler must not shrink the
                                // worker pool: catch, account, move on.
                                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    handle_connection(stream, &shared);
                                }));
                                shared.metrics.adjust_gauge(G_ACTIVE, -1);
                                shared.release_client(ip);
                            }
                            Err(_) => break, // acceptor hung up: drain done
                        }
                    },
                )?,
            );
        }

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or any later one) lands here
            }
            match stream {
                Ok(stream) => {
                    let conn = self.shared.metrics.incr(M_CONNECTIONS);
                    let ip = stream.peer_addr().ok().map(|addr| addr.ip());
                    log_debug!(
                        "serve",
                        "connection {conn} from {}",
                        ip.map_or("<unknown>".to_string(), |ip| ip.to_string())
                    );
                    if !self.shared.try_admit_client(ip) {
                        reject_overloaded(
                            stream,
                            &self.shared,
                            "per-client connection cap reached".to_string(),
                        );
                        continue;
                    }
                    if !self.shared.queue_admits() {
                        self.shared.release_client(ip);
                        reject_overloaded(
                            stream,
                            &self.shared,
                            format!("accept queue full ({} pending)", self.shared.max_pending),
                        );
                        continue;
                    }
                    self.shared.metrics.adjust_gauge(G_QUEUED, 1);
                    if sender.send((stream, ip)).is_err() {
                        break;
                    }
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE under fd
                    // exhaustion): keep serving, but back off instead of
                    // spinning hot on an error that fails instantly.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            }
        }

        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(dump) = &self.shared.trace {
            // Final dump: a short-lived daemon whose request count never
            // reached a dump boundary still leaves one trace behind.
            dbpim_trace::uninstall();
            let spans = dump.collector.snapshot();
            if !spans.is_empty() {
                let path = dump.dir.join("trace-final.json");
                if let Err(e) = std::fs::write(&path, ChromeTrace::render(&spans)) {
                    log_warn!("serve", "final trace dump to {} failed: {e}", path.display());
                }
            }
        }
        log_info!("serve", "daemon on {} shut down", self.shared.local_addr);
        Ok(())
    }

    /// Binds and runs the daemon on a background thread, returning a handle
    /// with the bound address — the in-process form used by tests and the
    /// `serve_bench` load generator.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::bind`] failures (the spawn itself is infallible).
    pub fn spawn(config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let server = Self::bind(config)?;
        let addr = server.local_addr();
        let shared = Arc::clone(&server.shared);
        let thread = std::thread::Builder::new()
            .name("dbpim-serve-acceptor".to_string())
            .spawn(move || server.run())
            .map_err(ServeError::Io)?;
        Ok(ServerHandle { addr, shared, thread })
    }
}

/// Answers a connection admission control turned away, without ever letting
/// the rejected peer block the acceptor: the write gets a short timeout and
/// the connection is dropped either way.
fn reject_overloaded(stream: TcpStream, shared: &Shared, why: String) {
    shared.metrics.incr(M_REJECTED_OVERLOADED);
    log_warn!("serve", "rejected connection: {why}");
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    let _ = write_message(&mut stream, &error_response(ErrorKind::Overloaded, why));
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without needing a client connection.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits for the daemon to exit (send [`Request::Shutdown`] first, or
    /// call [`Self::request_shutdown`]).
    ///
    /// # Errors
    ///
    /// Propagates the acceptor's exit status.
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// What [`FrameReader::next_frame`] produced.
enum FrameOutcome {
    /// One complete line (newline stripped, valid UTF-8).
    Frame(String),
    /// A complete line arrived but was not valid UTF-8 — answerable as a
    /// structured bad request; the connection survives.
    Invalid,
    /// The current frame exceeded the size limit; the connection must
    /// close after the structured answer.
    TooLarge,
    /// The read timed out before a complete frame arrived; any partial
    /// bytes stay buffered with *this* frame. Check for shutdown and poll
    /// again.
    Timeout,
    /// Clean end of stream. Partial trailing bytes (a frame the peer never
    /// terminated) are discarded deterministically — they belong to no
    /// request.
    Eof,
    /// Hard stream failure; close without answering.
    Disconnect,
}

/// Byte-level newline framing with an explicit size bound.
///
/// Unlike `BufRead::read_line`, this reader (a) never accumulates more than
/// `limit` bytes per frame — a giant or never-terminated line is reported
/// as [`FrameOutcome::TooLarge`] instead of growing without bound — and
/// (b) owns its buffer across read timeouts, so bytes of a half-received
/// frame can never be misattributed to a *later* request: a frame is either
/// completed (and consumed exactly up to its newline) or discarded with the
/// connection.
struct FrameReader {
    stream: TcpStream,
    chunk: [u8; 4096],
    /// Bytes received but not yet consumed into frames.
    pending: Vec<u8>,
    /// How far `pending` has been scanned for a newline (avoids rescanning
    /// under byte-at-a-time arrival).
    scanned: usize,
    limit: usize,
}

impl FrameReader {
    fn new(stream: TcpStream, limit: usize) -> Self {
        Self { stream, chunk: [0u8; 4096], pending: Vec::new(), scanned: 0, limit }
    }

    fn next_frame(&mut self) -> FrameOutcome {
        loop {
            // Complete frame already buffered?
            if let Some(offset) =
                self.pending[self.scanned..].iter().position(|&byte| byte == b'\n')
            {
                let end = self.scanned + offset;
                let rest = self.pending.split_off(end + 1);
                let mut frame = std::mem::replace(&mut self.pending, rest);
                frame.pop(); // strip the newline
                self.scanned = 0;
                if frame.len() > self.limit {
                    return FrameOutcome::TooLarge;
                }
                return match String::from_utf8(frame) {
                    Ok(text) => FrameOutcome::Frame(text),
                    Err(_) => FrameOutcome::Invalid,
                };
            }
            self.scanned = self.pending.len();
            // Even an unterminated line must not buffer past the limit.
            if self.pending.len() > self.limit {
                return FrameOutcome::TooLarge;
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return FrameOutcome::Eof,
                Ok(n) => self.pending.extend_from_slice(&self.chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return FrameOutcome::Timeout;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FrameOutcome::Disconnect,
            }
        }
    }
}

/// Serves one connection until the peer disconnects, violates a hard limit
/// (frame size, wrong auth token) or the daemon shuts down. Malformed lines
/// are answered with [`Response::Error`]; the connection stays open.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A finite read timeout turns a blocked read into a periodic shutdown
    // check, so a quiet connection cannot pin a worker past daemon exit.
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut frames = FrameReader::new(stream, shared.max_frame_bytes);
    // An open daemon treats every connection as authenticated.
    let mut authed = shared.auth_token.is_none();
    loop {
        let text = match frames.next_frame() {
            FrameOutcome::Frame(text) => text,
            FrameOutcome::Timeout => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            FrameOutcome::Invalid => {
                shared.count_request();
                shared.metrics.incr(M_ERRORS);
                let response = error_response(
                    ErrorKind::BadRequest,
                    "request line is not valid UTF-8".to_string(),
                );
                if respond(&mut writer, &response) {
                    break;
                }
                continue;
            }
            FrameOutcome::TooLarge => {
                shared.count_request();
                shared.metrics.incr(M_ERRORS);
                shared.metrics.incr(M_REJECTED_FRAMES);
                let response = error_response(
                    ErrorKind::FrameTooLarge,
                    format!("frame exceeds {} bytes; closing connection", shared.max_frame_bytes),
                );
                let _ = respond(&mut writer, &response);
                break;
            }
            FrameOutcome::Eof | FrameOutcome::Disconnect => break,
        };
        let text = text.trim_end_matches('\r').trim();
        if text.is_empty() {
            continue;
        }
        // A shutdown daemon answers nothing further — even on connections
        // that kept the pipe busy. Dropping the connection (rather than
        // draining queued requests) is what lets a fleet's failure
        // detector notice a dying worker promptly.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.count_request();
        let disconnect = match serde_json::from_str::<Request>(text) {
            Ok(request) => {
                let type_index = request_type_index(&request);
                // A request carrying a propagated trace context opens its
                // span as a child of the driver's fleet.point span, so the
                // merged fleet trace can correlate remote execution with
                // the dispatch that caused it.
                let _span = match request.trace_context() {
                    Some(context) => dbpim_trace::span!(
                        "serve.request",
                        kind = REQUEST_TYPES[type_index],
                        fleet = context.fleet,
                        point = context.point,
                        parent_span = context.parent_span,
                    ),
                    None => dbpim_trace::span!("serve.request", kind = REQUEST_TYPES[type_index]),
                };
                let started = Instant::now();
                let disconnect = dispatch(request, &mut authed, &mut writer, shared);
                shared.record_latency(type_index, started.elapsed());
                log_debug!(
                    "serve",
                    "{} handled in {:?}",
                    REQUEST_TYPES[type_index],
                    started.elapsed()
                );
                disconnect
            }
            Err(e) => {
                shared.metrics.incr(M_ERRORS);
                respond(
                    &mut writer,
                    &error_response(ErrorKind::BadRequest, format!("unparseable request: {e}")),
                )
            }
        };
        if disconnect {
            break;
        }
    }
}

/// Writes one response; returns `true` when the connection should close
/// (write failure — the peer is gone).
fn respond(writer: &mut TcpStream, response: &Response) -> bool {
    write_message(writer, response).is_err()
}

/// Applies the connection's auth state machine, then hands authorized
/// requests to [`handle_request`]; returns `true` when the connection
/// should close afterwards.
///
/// Unauthenticated connections may `Ping` (liveness probing predates
/// credentials) and `Auth`; everything else is answered
/// [`ErrorKind::Unauthorized`] but keeps the connection open so the client
/// can still authenticate. A *wrong* token closes the connection — a peer
/// guessing secrets gets no second try on the same socket.
fn dispatch(request: Request, authed: &mut bool, writer: &mut TcpStream, shared: &Shared) -> bool {
    match request {
        Request::Auth { token } => match &shared.auth_token {
            Some(expected) if &token == expected => {
                *authed = true;
                respond(writer, &Response::AuthOk)
            }
            Some(_) => {
                shared.metrics.incr(M_ERRORS);
                shared.metrics.incr(M_REJECTED_UNAUTHORIZED);
                log_warn!("serve", "rejected connection: invalid auth token");
                let _ = respond(
                    writer,
                    &error_response(
                        ErrorKind::Unauthorized,
                        "invalid auth token; closing connection".to_string(),
                    ),
                );
                true
            }
            // An open daemon accepts any credentials, so clients can
            // authenticate unconditionally.
            None => respond(writer, &Response::AuthOk),
        },
        Request::Ping => respond(writer, &pong()),
        _ if !*authed => {
            shared.metrics.incr(M_ERRORS);
            shared.metrics.incr(M_REJECTED_UNAUTHORIZED);
            respond(
                writer,
                &error_response(
                    ErrorKind::Unauthorized,
                    "this daemon requires authentication; send Auth first".to_string(),
                ),
            )
        }
        request => handle_request(request, writer, shared),
    }
}

/// Builds the `Pong` answer, timestamped so clients can estimate their
/// clock offset against this daemon (NTP-style, from the request's
/// send/receive midpoint).
fn pong() -> Response {
    Response::Pong {
        version: PROTOCOL_VERSION,
        server_time_micros: Some(dbpim_trace::unix_micros_now()),
    }
}

/// Handles one parsed, authorized request; returns `true` when the
/// connection should close afterwards.
fn handle_request(request: Request, writer: &mut TcpStream, shared: &Shared) -> bool {
    match request {
        Request::Ping => respond(writer, &pong()),
        // `dispatch` resolves credentials; reaching here means the
        // connection is already authorized, so re-auth is a cheap yes.
        Request::Auth { .. } => respond(writer, &Response::AuthOk),
        Request::ListModels => {
            respond(writer, &Response::Models { models: ModelKind::all().to_vec() })
        }
        Request::CacheStats | Request::Stats => {
            respond(writer, &Response::Stats { stats: shared.stats() })
        }
        Request::ShardStatus => {
            respond(writer, &Response::ShardStatuses { shards: shared.shard_statuses() })
        }
        Request::TraceSnapshot => {
            // Drain whatever collector is installed (trace_dir, trace_buffer
            // or an embedding process's own); a daemon without one answers
            // an empty snapshot that still identifies the process.
            let snapshot = match dbpim_trace::collector() {
                Some(collector) => collector.drain(),
                None => dbpim_trace::CollectorSnapshot {
                    epoch_unix_micros: dbpim_trace::unix_micros_now(),
                    pid: u64::from(std::process::id()),
                    ..Default::default()
                },
            };
            respond(writer, &Response::TraceSpans { snapshot })
        }
        Request::MetricsSnapshot => {
            respond(writer, &Response::Metrics { metrics: shared.metrics.snapshot() })
        }
        Request::Shutdown => {
            let _ = respond(writer, &Response::ShuttingDown);
            shared.request_shutdown();
            true
        }
        Request::RunModel { model, sparsity, width, arch, fidelity, deadline_ms, trace: _ } => {
            let deadline = Deadline::new(deadline_ms);
            if deadline.expired() {
                shared.metrics.incr(M_ERRORS);
                return respond(writer, &Deadline::error("RunModel"));
            }
            let width = width.unwrap_or(shared.runner.session().config().operand_width);
            let sparsity = match sparsity {
                Some(one) => vec![one],
                None => SparsityConfig::all().to_vec(),
            };
            match shared.runner.run_point(model, width, arch, &sparsity, fidelity) {
                // A result the client gave up on is withheld: the deadline
                // is a promise about when the answer stops being useful.
                Ok(_) if deadline.expired() => {
                    shared.metrics.incr(M_ERRORS);
                    respond(writer, &Deadline::error("RunModel"))
                }
                Ok(entry) => respond(writer, &Response::RunResult { entry }),
                Err(e) => {
                    shared.metrics.incr(M_ERRORS);
                    respond(writer, &error_response(ErrorKind::Pipeline, e.to_string()))
                }
            }
        }
        Request::Sweep { spec, fidelity, deadline_ms, trace: _ } => {
            handle_sweep(&spec, fidelity, Deadline::new(deadline_ms), writer, shared)
        }
        Request::Explore { spec, deadline_ms, shard, trace: _ } => {
            handle_explore(&spec, Deadline::new(deadline_ms), shard.as_ref(), writer, shared)
        }
    }
}

/// Streams one design-space exploration: `ExploreStarted`, one
/// `ExplorePoint` per grid point as it completes (canonical spec order,
/// warm-cache artifacts reused across geometries), then `ExploreFinished`.
/// An oversized or infeasible grid is answered with a structured pipeline
/// error before any point executes; a failing point or an expired deadline
/// ends the stream (but not the connection) the same way. A shard-tagged
/// request additionally reports its progress into the daemon's
/// `ShardStatus` registry.
fn handle_explore(
    spec: &db_pim::DseSpec,
    deadline: Deadline,
    shard: Option<&ShardAnnotation>,
    writer: &mut TcpStream,
    shared: &Shared,
) -> bool {
    let shard_fail = |state: ShardState| {
        if let Some(tag) = shard {
            shared.shard_touch(tag, 0, state);
        }
    };
    if deadline.expired() {
        shared.metrics.incr(M_ERRORS);
        shard_fail(ShardState::Failed);
        return respond(writer, &Deadline::error("Explore"));
    }
    let session_width = shared.runner.session().config().operand_width;
    let session_pruning = shared.runner.session().config().pruning;
    let points = match spec.points(session_width, session_pruning) {
        Ok(points) => points,
        Err(e) => {
            shared.metrics.incr(M_ERRORS);
            shard_fail(ShardState::Failed);
            return respond(writer, &error_response(ErrorKind::Pipeline, e.to_string()));
        }
    };
    if let Some(tag) = shard {
        shared.shard_touch(tag, 0, ShardState::Running);
    }
    let sparsity = spec.unique_sparsity();
    let total_points = points.len();
    if respond(writer, &Response::ExploreStarted { total_points }) {
        return true;
    }

    let start = Instant::now();
    for (index, point) in points.into_iter().enumerate() {
        if deadline.expired() {
            shared.metrics.incr(M_ERRORS);
            shard_fail(ShardState::Failed);
            return respond(writer, &Deadline::error("Explore"));
        }
        let computed = shared.runner.run_point_pruned(
            point.kind,
            point.width,
            point.pruning,
            Some(point.arch),
            &sparsity,
            spec.fidelity,
        );
        match computed {
            // A point the client gave up on mid-compute is withheld, same
            // policy as RunModel: the deadline promises when answers stop
            // being useful, and the fleet has already requeued the point
            // elsewhere by now.
            Ok(_) if deadline.expired() => {
                shared.metrics.incr(M_ERRORS);
                shard_fail(ShardState::Failed);
                return respond(writer, &Deadline::error("Explore"));
            }
            Ok(entry) => {
                let entry = db_pim::DseEntry::from_sweep(entry);
                if respond(writer, &Response::ExplorePoint { index, entry }) {
                    return true;
                }
                if let Some(tag) = shard {
                    shared.shard_touch(tag, 1, ShardState::Running);
                }
            }
            Err(e) => {
                shared.metrics.incr(M_ERRORS);
                shard_fail(ShardState::Failed);
                return respond(
                    writer,
                    &error_response(
                        ErrorKind::Pipeline,
                        format!("exploration point {index} failed: {e}"),
                    ),
                );
            }
        }
    }

    respond(writer, &Response::ExploreFinished { total_points, wall_time: start.elapsed() })
}

/// Streams one sweep: `SweepStarted`, one `SweepPoint` per entry as it
/// completes, then `SweepFinished`. A failing point is answered with a
/// pipeline error and ends the stream (but not the connection); an expired
/// deadline ends it with a `DeadlineExceeded` error the same way.
fn handle_sweep(
    spec: &db_pim::SweepSpec,
    fidelity: bool,
    deadline: Deadline,
    writer: &mut TcpStream,
    shared: &Shared,
) -> bool {
    if deadline.expired() {
        shared.metrics.incr(M_ERRORS);
        return respond(writer, &Deadline::error("Sweep"));
    }
    let session_config = *shared.runner.session().config();
    let models = spec.unique_models();
    let sparsity = spec.unique_sparsity();
    let archs = spec.effective_archs(session_config.arch);
    let widths = spec.effective_widths(session_config.operand_width);
    let prunings = spec.effective_pruning(session_config.pruning);

    let entries = models.len() * widths.len() * prunings.len() * archs.len();
    if respond(writer, &Response::SweepStarted { entries }) {
        return true;
    }

    let start = Instant::now();
    let mut index = 0usize;
    // Deterministic (model, width, pruning, arch) order — identical to the
    // entry order `BatchRunner::run_with_fidelity` assembles.
    for &model in &models {
        for &width in &widths {
            for &pruning in &prunings {
                for &arch in &archs {
                    if deadline.expired() {
                        shared.metrics.incr(M_ERRORS);
                        return respond(writer, &Deadline::error("Sweep"));
                    }
                    let computed = shared.runner.run_point_pruned(
                        model,
                        width,
                        pruning,
                        Some(arch),
                        &sparsity,
                        fidelity,
                    );
                    match computed {
                        // Same withhold policy as RunModel for a point that
                        // overran the deadline while computing.
                        Ok(_) if deadline.expired() => {
                            shared.metrics.incr(M_ERRORS);
                            return respond(writer, &Deadline::error("Sweep"));
                        }
                        Ok(entry) => {
                            if respond(writer, &Response::SweepPoint { index, entry }) {
                                return true;
                            }
                        }
                        Err(e) => {
                            shared.metrics.incr(M_ERRORS);
                            return respond(
                                writer,
                                &error_response(
                                    ErrorKind::Pipeline,
                                    format!("sweep point {index} failed: {e}"),
                                ),
                            );
                        }
                    }
                    index += 1;
                }
            }
        }
    }

    respond(
        writer,
        &Response::SweepFinished {
            prepared_models: models.len() * widths.len() * prunings.len(),
            simulated_runs: entries * sparsity.len(),
            wall_time: start.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the poison cascade: one panicking holder used to
    /// turn every later `.lock().expect(…)` into a panic of its own.
    /// `lock_unpoisoned` hands back the (consistent) state instead.
    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let shared = Arc::new(Mutex::new(vec![1, 2, 3]));
        let poisoner = Arc::clone(&shared);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock is clean");
            panic!("poison the lock while holding it");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread panicked");
        assert!(shared.is_poisoned(), "the lock is poisoned");
        let mut guard = lock_unpoisoned(&shared);
        assert_eq!(*guard, vec![1, 2, 3], "guarded state is intact");
        guard.push(4);
        drop(guard);
        assert_eq!(*lock_unpoisoned(&shared), vec![1, 2, 3, 4]);
    }

    #[test]
    fn request_type_table_matches_the_index_function() {
        assert_eq!(REQUEST_TYPES[request_type_index(&Request::Ping)], "Ping");
        assert_eq!(
            REQUEST_TYPES[request_type_index(&Request::Auth { token: String::new() })],
            "Auth"
        );
        assert_eq!(REQUEST_TYPES[request_type_index(&Request::CacheStats)], "CacheStats");
        assert_eq!(REQUEST_TYPES[request_type_index(&Request::Stats)], "Stats");
        assert_eq!(REQUEST_TYPES[request_type_index(&Request::TraceSnapshot)], "TraceSnapshot");
        assert_eq!(REQUEST_TYPES[request_type_index(&Request::MetricsSnapshot)], "MetricsSnapshot");
        assert_eq!(REQUEST_TYPES[request_type_index(&Request::Shutdown)], "Shutdown");
    }
}
